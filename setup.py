"""Setup shim for environments without PEP 517 build isolation support.

All project metadata lives in ``pyproject.toml``; the explicit package
arguments below let legacy ``python setup.py``-style installs resolve the
``src`` layout without a PEP 517 frontend.
"""
from setuptools import find_packages, setup

setup(
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
