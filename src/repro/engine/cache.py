"""Schema-level precomputation cache for the batched engine.

The per-query cost of the paper's algorithms is dominated by work that
only depends on the *schema graph*, not on the terminal set: the
chordality classification (Theorem 1 recognition), the conversion to the
indexed backend, BFS distance rows, and the Lemma 1 elimination orderings.
:class:`SchemaContext` bundles those precomputations for one schema and
computes each lazily exactly once; :class:`SchemaCache` is a small LRU of
contexts keyed by a structural fingerprint of the schema graph, so
repeated :func:`repro.engine.batch.batch_interpret` calls on the same
schema (even through different ``BipartiteGraph`` instances with equal
structure) reuse everything.

Cache keys
----------
``schema_fingerprint`` is ``(|V|, |A|, vertex reprs, edge reprs, side
labels)``.  It is *structural*: two equal graphs share a context, and
mutating a graph between calls changes its fingerprint, which simply makes
the engine rebuild (stale contexts age out of the LRU).  Each context
snapshots a private copy of its graph at build time, so a cached entry
stays valid even when the originally supplied graph object is mutated
later.  The cache is in-memory only and never persisted.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.classification import ChordalityReport, classify_bipartite_graph
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph, Vertex
from repro.graphs.indexed import GraphIndex, IndexedGraph, from_indexed, to_indexed


class LRUCache:
    """A minimal least-recently-used mapping (no locking; single-threaded use)."""

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable):
        """Return the cached value or ``None``, refreshing recency."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value) -> None:
        """Insert ``value``, evicting the least recently used entry if full."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data


def schema_fingerprint(graph: Graph) -> Tuple:
    """Return a structural cache key for a schema graph.

    Equal graphs (same vertices by ``repr``, same edges, same bipartition)
    map to the same key within one process.
    """
    vertex_reprs = frozenset(repr(v) for v in graph.vertices())
    edge_reprs = frozenset(
        frozenset((repr(u), repr(v))) for u, v in graph.edges()
    )
    sides: Optional[FrozenSet] = None
    if isinstance(graph, BipartiteGraph):
        sides = frozenset((repr(v), graph.side_of(v)) for v in graph.vertices())
    # the structures themselves are the key (hashable, collision-free);
    # collapsing them through hash() would let two distinct schemas
    # silently share a cached context
    return (
        graph.number_of_vertices(),
        graph.number_of_edges(),
        vertex_reprs,
        edge_reprs,
        sides,
    )


def schema_digest(graph: Graph) -> str:
    """Return a stable hex digest of a schema graph's structure.

    The digest hashes the same structural facts as :func:`schema_fingerprint`
    (vertex reprs, edge reprs, bipartition labels) but canonically ordered
    and serialised, so it is stable across processes and interpreter runs --
    which the in-process fingerprint tuples (built on ``frozenset``) are
    not.  The persistent layer (:class:`repro.runtime.diskcache.DiskCache`)
    and the parallel executor's worker transport key everything on it:
    mutating a graph changes its digest, which safely invalidates every
    derived artifact.
    """
    hasher = hashlib.sha256()
    for vertex_repr in sorted(repr(v) for v in graph.vertices()):
        hasher.update(b"v")
        hasher.update(vertex_repr.encode("utf-8", "backslashreplace"))
    for edge_repr in sorted(
        "|".join(sorted((repr(u), repr(v)))) for u, v in graph.edges()
    ):
        hasher.update(b"e")
        hasher.update(edge_repr.encode("utf-8", "backslashreplace"))
    if isinstance(graph, BipartiteGraph):
        for side_repr in sorted(f"{graph.side_of(v)}:{v!r}" for v in graph.vertices()):
            hasher.update(b"s")
            hasher.update(side_repr.encode("utf-8", "backslashreplace"))
    return hasher.hexdigest()


@dataclass(frozen=True)
class SidePlan:
    """Cached Algorithm 1 precomputation for one connected component.

    ``component`` holds the ids of the component, ``applicable`` the
    Lemma 1 precondition verdict (``V_side``-chordal and conformal), and
    ``ordering`` the encoded Lemma 1 elimination ordering (``None`` when no
    running-intersection ordering exists).
    """

    component: FrozenSet[int]
    applicable: bool
    ordering: Optional[Tuple[int, ...]]


class SchemaContext:
    """All schema-level precomputations the engine reuses across queries."""

    def __init__(self, graph: BipartiteGraph, report: Optional[ChordalityReport] = None) -> None:
        # defensive copy: the context outlives the call that built it (LRU),
        # so it must not alias a graph the caller may mutate afterwards --
        # otherwise a later structurally-equal lookup would get answers
        # computed on the mutated aliased object
        self.graph = graph.copy()
        indexed, index = to_indexed(self.graph)
        self.indexed: IndexedGraph = indexed
        self.index: GraphIndex = index
        self._report = report
        self._bfs_rows = LRUCache(maxsize=4096)
        self._side_plans: Dict[Tuple[int, int], SidePlan] = {}
        self._components: Optional[List[FrozenSet[int]]] = None

    # ------------------------------------------------------------------
    # shard transport (parallel workers)
    # ------------------------------------------------------------------
    def shard_state(self) -> Tuple[IndexedGraph, GraphIndex, ChordalityReport]:
        """Return the compact, picklable planner state of this context.

        The triple ``(indexed, index, report)`` is everything a pool worker
        needs to rebuild an equivalent context without re-deriving the
        expensive parts: the CSR/bitset backend ships via
        :class:`~repro.graphs.indexed.IndexedGraph`'s compact pickle, and
        the classification report (the dominant cold cost) travels as-is.
        Accessing this property forces the classification if it has not
        run yet.  Per-query caches (BFS rows, side plans) are deliberately
        not shipped -- each worker re-amortises them across its own shard.
        """
        return (self.indexed, self.index, self.report)

    @classmethod
    def from_shard_state(
        cls,
        indexed: IndexedGraph,
        index: GraphIndex,
        report: Optional[ChordalityReport] = None,
    ) -> "SchemaContext":
        """Rebuild a context from :meth:`shard_state` without re-deriving it.

        The hashable-vertex graph is reconstructed from the indexed pair
        (lossless by :func:`~repro.graphs.indexed.from_indexed`); the
        indexed backend and the classification are adopted as-is.
        """
        context = cls.__new__(cls)
        context.graph = from_indexed(indexed, index)
        context.indexed = indexed
        context.index = index
        context._report = report
        context._bfs_rows = LRUCache(maxsize=4096)
        context._side_plans = {}
        context._components = None
        return context

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def report(self) -> ChordalityReport:
        """The (lazily computed, cached) chordality classification."""
        if self._report is None:
            self._report = classify_bipartite_graph(self.graph)
        return self._report

    def seed_report(self, report: ChordalityReport) -> None:
        """Adopt a classification computed elsewhere (e.g. by a finder)."""
        if self._report is None:
            self._report = report

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def bfs_row(self, source: Vertex) -> Dict[Vertex, int]:
        """Return cached BFS distances ``{vertex: distance}`` from ``source``.

        Rows are computed on the indexed backend and decoded once; the KMB
        metric closure and feasibility checks share them across queries.
        """
        row = self._bfs_rows.get(source)
        if row is None:
            source_id = self.index.ids[source]
            levels = self.indexed.bfs_levels(source_id)
            labels = self.index.labels
            row = {labels[i]: d for i, d in enumerate(levels) if d >= 0}
            self._bfs_rows.put(source, row)
        return row

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------
    def component_ids(self, vertex_id: int) -> FrozenSet[int]:
        """Return the id set of the connected component containing ``vertex_id``."""
        for component in self._all_components():
            if vertex_id in component:
                return component
        raise KeyError(vertex_id)  # pragma: no cover - ids are always valid

    def _all_components(self) -> List[FrozenSet[int]]:
        if self._components is None:
            seen = [False] * self.indexed.n
            components: List[FrozenSet[int]] = []
            for start in range(self.indexed.n):
                if seen[start]:
                    continue
                members = self.indexed.component_of(start)
                for member in members:
                    seen[member] = True
                components.append(frozenset(members))
            self._components = components
        return self._components

    # ------------------------------------------------------------------
    # Algorithm 1 plans
    # ------------------------------------------------------------------
    def side_plan(self, side: int, vertex_id: int) -> SidePlan:
        """Return the cached Algorithm 1 plan for the component of ``vertex_id``.

        Computes (once per component and side) the structural precondition
        and the Lemma 1 ordering on the induced component subgraph.
        """
        from repro.chordality.side_chordal import is_side_chordal_and_conformal
        from repro.steiner.algorithm1 import lemma1_ordering

        component = self.component_ids(vertex_id)
        key = (side, min(component))
        plan = self._side_plans.get(key)
        if plan is None:
            labels = self.index.decode(sorted(component))
            subgraph = self.graph.subgraph(labels)
            applicable = is_side_chordal_and_conformal(subgraph, side, method="alpha")
            ordering_labels = lemma1_ordering(subgraph, side)
            ordering = (
                tuple(self.index.encode(ordering_labels))
                if ordering_labels is not None
                else None
            )
            plan = SidePlan(component=component, applicable=applicable, ordering=ordering)
            self._side_plans[key] = plan
        return plan


class SchemaCache:
    """LRU of :class:`SchemaContext` objects keyed by schema fingerprint."""

    def __init__(self, maxsize: int = 16) -> None:
        self._contexts = LRUCache(maxsize=maxsize)

    def lookup(
        self,
        graph: BipartiteGraph,
        report: Optional[ChordalityReport] = None,
        report_factory=None,
    ) -> Tuple[SchemaContext, bool]:
        """Return ``(context, cache_hit)`` for ``graph``, building on first use.

        The boolean feeds result provenance: ``True`` means the context was
        served from the LRU, ``False`` that it was (re)built for this call.
        ``report_factory`` is a zero-argument callable consulted only on a
        miss (and only when ``report`` is not given) -- it lets callers
        with an *expensive* report source (e.g. a disk read) avoid paying
        it on the hit path.
        """
        key = schema_fingerprint(graph)
        context = self._contexts.get(key)
        hit = context is not None
        if context is None:
            if report is None and report_factory is not None:
                report = report_factory()
            context = SchemaContext(graph, report=report)
            self._contexts.put(key, context)
        elif report is not None:
            context.seed_report(report)
        return context, hit

    def get_or_build(
        self, graph: BipartiteGraph, report: Optional[ChordalityReport] = None
    ) -> SchemaContext:
        """Return the cached context for ``graph``, building it on first use."""
        return self.lookup(graph, report=report)[0]

    def adopt(self, context: SchemaContext) -> None:
        """Insert a prebuilt context under its own graph's fingerprint.

        Used by pool workers to seed their cache with a context rebuilt
        from transported shard state
        (:meth:`SchemaContext.from_shard_state`), so the first query pays
        no classification or re-indexing.
        """
        self._contexts.put(schema_fingerprint(context.graph), context)

    def count_external_hit(self) -> None:
        """Record a context served from a caller-side memo above this cache.

        The :class:`~repro.api.service.ConnectionService` memoises the
        context of an immutable bound schema and skips the fingerprint
        lookup entirely; counting those serves here keeps
        :meth:`stats` consistent with the ``cache_hit`` provenance flag.
        """
        self._contexts.hits += 1

    def stats(self) -> dict:
        """Return observability counters for the underlying LRU."""
        return {
            "hits": self._contexts.hits,
            "misses": self._contexts.misses,
            "size": len(self._contexts),
            "maxsize": self._contexts.maxsize,
        }

    def __len__(self) -> int:
        return len(self._contexts)
