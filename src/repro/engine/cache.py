"""Schema-level precomputation cache for the batched engine.

The per-query cost of the paper's algorithms is dominated by work that
only depends on the *schema graph*, not on the terminal set: the
chordality classification (Theorem 1 recognition), the conversion to the
indexed backend, BFS distance rows, and the Lemma 1 elimination orderings.
:class:`SchemaContext` bundles those precomputations for one schema and
computes each lazily exactly once; :class:`SchemaCache` is a small LRU of
contexts keyed by a structural fingerprint of the schema graph, so
repeated :func:`repro.engine.batch.batch_interpret` calls on the same
schema (even through different ``BipartiteGraph`` instances with equal
structure) reuse everything.

Cache keys
----------
``schema_fingerprint`` is ``(|V|, |A|, vertex tokens, edge tokens, side
labels)``, where a vertex token pairs the vertex's *type* with its
``repr``.  It is *structural*: two equal graphs share a context, and
mutating a graph between calls changes its fingerprint, which simply makes
the engine rebuild (stale contexts age out of the LRU).  Each context
snapshots a private copy of its graph at build time, so a cached entry
stays valid even when the originally supplied graph object is mutated
later.  The cache is in-memory only and never persisted.

Because ``repr`` is not injective, a graph whose distinct vertices
collide on their tokens (e.g. two instances of a class with a constant
``__repr__``) cannot be keyed structurally at all: such *ambiguous*
schemas fall back to identity keys that never match anything else, so
they are always rebuilt rather than ever sharing a context (or a disk
entry) with a different schema that merely prints the same.
"""

from __future__ import annotations

import hashlib
import itertools
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.classification import ChordalityReport, classify_bipartite_graph
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph, Vertex
from repro.graphs.indexed import GraphIndex, IndexedGraph, from_indexed, to_indexed
from repro.kernels.bfs import levels_to_dict
from repro.kernels.oracle import DistanceOracle, OracleStats


class LRUCache:
    """A minimal least-recently-used mapping (no locking; single-threaded use)."""

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable):
        """Return the cached value or ``None``, refreshing recency."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value) -> None:
        """Insert ``value``, evicting the least recently used entry if full."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def pop_oldest(self):
        """Evict and return the least-recently-used value (or ``None`` if empty).

        The memory-budget enforcement of :class:`SchemaCache` uses this to
        shed contexts by *bytes* rather than by count.
        """
        if not self._data:
            return None
        _, value = self._data.popitem(last=False)
        self.evictions += 1
        return value

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def values(self) -> List:
        """Return the cached values, coldest first (no recency effect)."""
        return list(self._data.values())


def vertex_token(vertex: Vertex) -> Tuple[str, str]:
    """Return the ``(type, repr)`` token structural keys identify a vertex by.

    Pairing the repr with the vertex's fully qualified type separates
    values of different types that happen to print identically; it cannot
    separate two instances of the *same* type with identical reprs, which
    is what :func:`vertex_tokens` detects.
    """
    cls = type(vertex)
    return (f"{cls.__module__}.{cls.__qualname__}", repr(vertex))


def tokens_for(vertices) -> Optional[Dict[Vertex, Tuple[str, str]]]:
    """Return ``{vertex: token}`` for an iterable, or ``None`` on collisions.

    ``None`` means the vertices cannot be told apart structurally (two
    distinct vertex objects share a ``(type, repr)`` token), so no
    repr-based key -- fingerprint, digest, block key -- is trustworthy
    for them; callers must fall back to identity keying or skip caching.
    Duplicate *objects* in the iterable are fine (deduplicated by
    identity/equality); only distinct objects colliding on a token count.
    """
    tokens: Dict[Vertex, Tuple[str, str]] = {}
    seen = set()
    for vertex in vertices:
        if vertex in tokens:
            continue
        token = vertex_token(vertex)
        if token in seen:
            return None
        seen.add(token)
        tokens[vertex] = token
    return tokens


def vertex_tokens(graph: Graph) -> Optional[Dict[Vertex, Tuple[str, str]]]:
    """Return ``{vertex: token}`` for a graph's vertex set (see :func:`tokens_for`)."""
    return tokens_for(graph.vertices())


#: Monotonic source of never-repeating identity keys for ambiguous schemas
#: (see :func:`schema_fingerprint`); never reset, so no two lookups of
#: ambiguous graphs can ever collide within a process.
_AMBIGUOUS_KEYS = itertools.count()

#: First element of every ambiguous fingerprint tuple.
_AMBIGUOUS_FINGERPRINT_TAG = "ambiguous-schema"


def fingerprint_is_ambiguous(key: Tuple) -> bool:
    """Return ``True`` when ``key`` is a never-repeating identity fingerprint.

    Such keys can never be looked up again, so caching anything under one
    only evicts useful entries -- :class:`SchemaCache` skips insertion.
    """
    return bool(key) and key[0] == _AMBIGUOUS_FINGERPRINT_TAG

#: Prefix marking the never-repeating digests of ambiguous schemas.
AMBIGUOUS_DIGEST_PREFIX = "ambiguous-"


def digest_is_ambiguous(digest: str) -> bool:
    """Return ``True`` when ``digest`` addresses an ambiguous schema.

    Such digests are unique per call (see :func:`schema_digest`):
    correct to key in-memory transports on, useless to persist under.
    """
    return digest.startswith(AMBIGUOUS_DIGEST_PREFIX)


def schema_fingerprint(graph: Graph) -> Tuple:
    """Return a structural cache key for a schema graph.

    Equal graphs (same vertices by ``(type, repr)`` token, same edges,
    same bipartition) map to the same key within one process.  A graph
    whose distinct vertices *collide* on their tokens is ambiguous -- no
    repr-based key can distinguish it from a structurally different
    schema that prints the same -- so it gets a fresh identity key on
    every call: such schemas never share a cached context with anything
    (including themselves), trading cache hits for correctness.
    """
    tokens = vertex_tokens(graph)
    if tokens is None:
        return (_AMBIGUOUS_FINGERPRINT_TAG, next(_AMBIGUOUS_KEYS))
    edge_tokens = frozenset(
        frozenset((tokens[u], tokens[v])) for u, v in graph.edges()
    )
    sides: Optional[FrozenSet] = None
    if isinstance(graph, BipartiteGraph):
        sides = frozenset((tokens[v], graph.side_of(v)) for v in graph.vertices())
    # the structures themselves are the key (hashable); collapsing them
    # through hash() would let two distinct schemas silently share a
    # cached context
    return (
        graph.number_of_vertices(),
        graph.number_of_edges(),
        frozenset(tokens.values()),
        edge_tokens,
        sides,
    )


def schema_digest(graph: Graph) -> str:
    """Return a stable hex digest of a schema graph's structure.

    The digest hashes the same structural facts as :func:`schema_fingerprint`
    (vertex tokens, edge tokens, bipartition labels) but canonically ordered
    and serialised, so it is stable across processes and interpreter runs --
    which the in-process fingerprint tuples (built on ``frozenset``) are
    not.  The persistent layer (:class:`repro.runtime.diskcache.DiskCache`)
    and the parallel executor's worker transport key everything on it:
    mutating a graph changes its digest, which safely invalidates every
    derived artifact.

    An *ambiguous* graph (distinct vertices sharing a ``(type, repr)``
    token, see :func:`vertex_tokens`) has no trustworthy structural
    address; it gets a process-unique random digest per call, marked by
    :data:`AMBIGUOUS_DIGEST_PREFIX`, so nothing keyed on it can ever be
    served to a different schema that merely prints the same.  Callers
    that *store* by digest check :func:`digest_is_ambiguous` first and
    skip persistence entirely (a never-replayable entry would be pure
    write-only garbage in an append-only store).
    """
    tokens = vertex_tokens(graph)
    if tokens is None:
        return f"{AMBIGUOUS_DIGEST_PREFIX}{uuid.uuid4().hex}"

    def encoded(token: Tuple[str, str]) -> bytes:
        # length-prefix every component: a repr can contain ANY bytes
        # (including whatever separator or section marker we might pick),
        # so only self-delimiting blobs make the hashed stream injective
        # -- without this, a crafted __repr__ could forge vertex/edge
        # boundaries and collide two structurally different schemas
        parts = []
        for component in token:
            blob = component.encode("utf-8", "backslashreplace")
            parts.append(len(blob).to_bytes(8, "big"))
            parts.append(blob)
        return b"".join(parts)

    hasher = hashlib.sha256()
    hasher.update(graph.number_of_vertices().to_bytes(8, "big"))
    hasher.update(graph.number_of_edges().to_bytes(8, "big"))
    for vertex_blob in sorted(encoded(token) for token in tokens.values()):
        hasher.update(b"v")
        hasher.update(vertex_blob)
    for edge_blob in sorted(
        b"".join(sorted((encoded(tokens[u]), encoded(tokens[v]))))
        for u, v in graph.edges()
    ):
        hasher.update(b"e")
        hasher.update(edge_blob)
    if isinstance(graph, BipartiteGraph):
        for side_blob in sorted(
            str(graph.side_of(v)).encode("ascii") + encoded(tokens[v])
            for v in graph.vertices()
        ):
            hasher.update(b"s")
            hasher.update(side_blob)
    return hasher.hexdigest()


@dataclass(frozen=True)
class SidePlan:
    """Cached Algorithm 1 precomputation for one connected component.

    ``component`` holds the ids of the component, ``applicable`` the
    Lemma 1 precondition verdict (``V_side``-chordal and conformal), and
    ``ordering`` the encoded Lemma 1 elimination ordering (``None`` when no
    running-intersection ordering exists).
    """

    component: FrozenSet[int]
    applicable: bool
    ordering: Optional[Tuple[int, ...]]


def _new_block_classifier():
    """Return a fresh blockwise classifier (function-level import by layering).

    ``repro.dynamic.blocks`` imports this module for its LRU and token
    helpers, so the reverse import must stay out of module scope.
    """
    from repro.dynamic.blocks import BlockClassifier

    return BlockClassifier()


class SchemaContext:
    """All schema-level precomputations the engine reuses across queries."""

    def __init__(
        self,
        graph: BipartiteGraph,
        report: Optional[ChordalityReport] = None,
        oracle_stats: Optional[OracleStats] = None,
        kernel_backend=None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        # defensive copy: the context outlives the call that built it (LRU),
        # so it must not alias a graph the caller may mutate afterwards --
        # otherwise a later structurally-equal lookup would get answers
        # computed on the mutated aliased object
        self.graph = graph.copy()
        indexed, index = to_indexed(self.graph)
        self.indexed: IndexedGraph = indexed
        self.index: GraphIndex = index
        self._report = report
        self._bfs_rows = LRUCache(maxsize=4096)
        self._side_plans: Dict[Tuple[int, int], SidePlan] = {}
        self._components: Optional[List[FrozenSet[int]]] = None
        # blockwise incremental classifier, shared (by reference) along
        # every apply_delta chain rooted here, so surviving blocks never
        # pay Theorem 1 recognition again; does no work until a delta is
        # actually applied
        self._blocks = _new_block_classifier()
        # the cross-query distance oracle is lazy (first BFS builds it);
        # the counters are shared with the owning SchemaCache when there
        # is one, so they survive eviction and apply_delta re-derivation
        self._oracle: Optional[DistanceOracle] = None
        self._oracle_stats = oracle_stats
        # compute-lane selection + byte budget for the lazy oracle; both
        # propagate along apply_delta chains and through SchemaCache.adopt
        self._kernel_backend = kernel_backend
        self._memory_budget = memory_budget_bytes

    # ------------------------------------------------------------------
    # shard transport (parallel workers)
    # ------------------------------------------------------------------
    def shard_state(self) -> Tuple[IndexedGraph, GraphIndex, ChordalityReport]:
        """Return the compact, picklable planner state of this context.

        The triple ``(indexed, index, report)`` is everything a pool worker
        needs to rebuild an equivalent context without re-deriving the
        expensive parts: the CSR/bitset backend ships via
        :class:`~repro.graphs.indexed.IndexedGraph`'s compact pickle, and
        the classification report (the dominant cold cost) travels as-is.
        Accessing this property forces the classification if it has not
        run yet.  Per-query caches (BFS rows, side plans) are deliberately
        not shipped -- each worker re-amortises them across its own shard.
        """
        return (self.indexed, self.index, self.report)

    @classmethod
    def from_shard_state(
        cls,
        indexed: IndexedGraph,
        index: GraphIndex,
        report: Optional[ChordalityReport] = None,
    ) -> "SchemaContext":
        """Rebuild a context from :meth:`shard_state` without re-deriving it.

        The hashable-vertex graph is reconstructed from the indexed pair
        (lossless by :func:`~repro.graphs.indexed.from_indexed`); the
        indexed backend and the classification are adopted as-is.
        """
        context = cls.__new__(cls)
        context.graph = from_indexed(indexed, index)
        context.indexed = indexed
        context.index = index
        context._report = report
        context._bfs_rows = LRUCache(maxsize=4096)
        context._side_plans = {}
        context._components = None
        context._blocks = _new_block_classifier()
        context._oracle = None
        context._oracle_stats = None
        context._kernel_backend = None
        context._memory_budget = None
        return context

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def report(self) -> ChordalityReport:
        """The (lazily computed, cached) chordality classification."""
        if self._report is None:
            self._report = classify_bipartite_graph(self.graph)
        return self._report

    def seed_report(self, report: ChordalityReport) -> None:
        """Adopt a classification computed elsewhere (e.g. by a finder)."""
        if self._report is None:
            self._report = report

    # ------------------------------------------------------------------
    # incremental evolution (repro.dynamic)
    # ------------------------------------------------------------------
    def apply_delta(self, delta) -> "SchemaContext":
        """Return a new context for the edited schema without a full rebuild.

        ``delta`` is a :class:`~repro.dynamic.delta.SchemaDelta` (net
        edits relative to this context's snapshot graph).  The returned
        context is observably equivalent to
        ``SchemaContext(edited_graph)`` -- same graph, same indexed
        backend, same classification -- but derived incrementally:

        * the snapshot graph is patched in place of being re-supplied;
        * the CSR/bitset backend is patched from the old arrays plus the
          delta's edge changes (the label index is reused verbatim when
          the vertex set did not change; vertex churn re-derives it);
        * the Theorem 1 classification is maintained blockwise through
          the shared :class:`~repro.dynamic.blocks.BlockClassifier` --
          cut vertices act as local separators, so only blocks the edit
          touched (or merged) are reclassified, and the full recognition
          is only ever paid *inside* a new block;
        * per-query caches (BFS rows, side plans, components) start
          empty: a structural edit can shift distances and components
          globally, and they re-amortise across the next queries.

        The original context is not modified (version-keyed callers such
        as the engine LRU may still be holding it); the block memo is
        shared by reference, which only ever *adds* cached verdicts.
        """
        new_graph = self.graph.copy()
        delta.apply_to(new_graph)
        context = SchemaContext.__new__(SchemaContext)
        context.graph = new_graph
        context._oracle_stats = self._oracle_stats
        context._oracle = None
        context._kernel_backend = self._kernel_backend
        context._memory_budget = self._memory_budget
        if delta.added_vertices or delta.removed_vertices:
            context.indexed, context.index = to_indexed(new_graph)
            # vertex churn re-keys every id: nothing the old oracle holds
            # is addressable any more, so the whole row set is lost
            if self._oracle is not None:
                self._oracle.stats.invalidated += self._oracle.rows_cached()
        else:
            context.index = self.index
            context.indexed = _patch_indexed(self.indexed, self.index, delta)
            if self._oracle is not None:
                # component-granular invalidation: an edge edit lives in
                # one biconnected block, so only rows rooted in that
                # block's connected component can have moved -- every
                # other cached row transfers to the patched context
                ids = self.index.ids
                touched = [
                    ids[vertex]
                    for edge in (*delta.added_edges, *delta.removed_edges)
                    for vertex in edge
                    if vertex in ids
                ]
                context._oracle = self._oracle.inherit(context.indexed, touched)
        context._blocks = self._blocks
        context._report = self._blocks.classify(new_graph)
        context._bfs_rows = LRUCache(maxsize=4096)
        context._side_plans = {}
        context._components = None
        return context

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    @property
    def distance_oracle(self) -> DistanceOracle:
        """The context's cross-query :class:`~repro.kernels.oracle.DistanceOracle`.

        Built on first access; every BFS a solver needs on this schema
        version flows through it, so repeated terminals across a batch
        (or across batches) never pay a second traversal.  The counters
        are shared with the owning :class:`SchemaCache` when the context
        was built by one.
        """
        if self._oracle is None:
            if self._oracle_stats is None:
                self._oracle_stats = OracleStats()
            self._oracle = DistanceOracle(
                self.indexed,
                stats=self._oracle_stats,
                backend=self._kernel_backend,
                memory_budget_bytes=self._memory_budget,
            )
        return self._oracle

    def adopt_oracle_stats(self, stats: OracleStats) -> None:
        """Re-home this context's oracle counters onto a cache's shared stats.

        Called by :meth:`SchemaCache.adopt` so contexts rebuilt elsewhere
        (pool workers, ``apply_delta`` chains started before adoption)
        count into the adopting engine's ``cache_stats()``.
        """
        self._oracle_stats = stats
        if self._oracle is not None:
            self._oracle.stats = stats

    def adopt_kernel_policy(self, kernel_backend, memory_budget_bytes) -> None:
        """Adopt a cache's compute lane and byte budget for the lazy oracle.

        Called by :meth:`SchemaCache.adopt` so contexts rebuilt elsewhere
        (pool workers rebuilding from shard state) produce rows on the
        adopting engine's configured lane.  An oracle that already
        materialised keeps its rows -- they are byte-identical across
        lanes, so only *future* row production switches.
        """
        self._kernel_backend = kernel_backend
        self._memory_budget = memory_budget_bytes
        if self._oracle is not None:
            if kernel_backend is not None and self._oracle.backend is not kernel_backend:
                self._oracle.backend = kernel_backend
                self._oracle.scratch = kernel_backend.scratch(self.indexed)
            self._oracle.memory_budget_bytes = memory_budget_bytes

    def memory_bytes(self) -> int:
        """Return the budget-relevant bytes held by this context.

        Counts the canonical CSR storage plus the oracle's cached rows --
        the two stores that scale with schema size and traffic.  The
        remaining per-query memos (decoded BFS dicts, side plans) are
        bounded by their own LRU capacities.
        """
        total = self.indexed.nbytes()
        if self._oracle is not None:
            total += self._oracle.bytes_held()
        return total

    def bfs_row(self, source: Vertex) -> Dict[Vertex, int]:
        """Return cached BFS distances ``{vertex: distance}`` from ``source``.

        Rows come from the :attr:`distance_oracle` and are decoded to the
        label mapping once; the KMB metric closure and feasibility checks
        share them across queries.
        """
        row = self._bfs_rows.get(source)
        if row is None:
            source_id = self.index.ids[source]
            levels = self.distance_oracle.levels(source_id)
            row = levels_to_dict(levels, self.index.labels)
            self._bfs_rows.put(source, row)
        return row

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------
    def component_ids(self, vertex_id: int) -> FrozenSet[int]:
        """Return the id set of the connected component containing ``vertex_id``."""
        for component in self._all_components():
            if vertex_id in component:
                return component
        raise KeyError(vertex_id)  # pragma: no cover - ids are always valid

    def _all_components(self) -> List[FrozenSet[int]]:
        if self._components is None:
            seen = [False] * self.indexed.n
            components: List[FrozenSet[int]] = []
            for start in range(self.indexed.n):
                if seen[start]:
                    continue
                members = self.indexed.component_of(start)
                for member in members:
                    seen[member] = True
                components.append(frozenset(members))
            self._components = components
        return self._components

    # ------------------------------------------------------------------
    # Algorithm 1 plans
    # ------------------------------------------------------------------
    def side_plan(self, side: int, vertex_id: int) -> SidePlan:
        """Return the cached Algorithm 1 plan for the component of ``vertex_id``.

        Computes (once per component and side) the structural precondition
        and the Lemma 1 ordering on the induced component subgraph.
        """
        from repro.chordality.side_chordal import is_side_chordal_and_conformal
        from repro.steiner.algorithm1 import lemma1_ordering

        component = self.component_ids(vertex_id)
        key = (side, min(component))
        plan = self._side_plans.get(key)
        if plan is None:
            labels = self.index.decode(sorted(component))
            subgraph = self.graph.subgraph(labels)
            applicable = is_side_chordal_and_conformal(subgraph, side, method="alpha")
            ordering_labels = lemma1_ordering(subgraph, side)
            ordering = (
                tuple(self.index.encode(ordering_labels))
                if ordering_labels is not None
                else None
            )
            plan = SidePlan(component=component, applicable=applicable, ordering=ordering)
            self._side_plans[key] = plan
        return plan


def _patch_indexed(indexed: IndexedGraph, index: GraphIndex, delta) -> IndexedGraph:
    """Rebuild the CSR backend from the old arrays plus an edge-only delta.

    Only valid when the delta touches no vertices: ids and labels stay
    put, so the new :class:`IndexedGraph` is assembled from the old CSR
    edge stream minus the removed edges plus the added ones -- an
    O(|V| + |A|) array pass that skips the repr-sorted label ordering and
    dictionary building of a full :func:`to_indexed` conversion.
    """
    ids = index.ids
    removed = {
        frozenset((ids[u], ids[v])) for u, v in delta.removed_edges
    }
    edges: List[Tuple[int, int]] = [
        edge for edge in indexed.edges() if frozenset(edge) not in removed
    ]
    edges.extend((ids[u], ids[v]) for u, v in delta.added_edges)
    return IndexedGraph(indexed.n, edges=edges, sides=indexed.sides)


class SchemaCache:
    """LRU of :class:`SchemaContext` objects keyed by schema fingerprint.

    Parameters
    ----------
    maxsize:
        Entry-count bound of the LRU.
    kernel_backend:
        The :class:`~repro.kernels.backend.KernelBackend` every built or
        adopted context produces BFS rows on (``None`` = process default).
    memory_budget_bytes:
        Optional byte bound over the cached contexts (CSR storage +
        oracle rows, see :meth:`SchemaContext.memory_bytes`): when an
        insert pushes :meth:`memory_bytes` past the budget,
        least-recently-used contexts are evicted until the cache fits
        (the newest context always survives).  The same budget is handed
        to each context's oracle, so a single big-schema oracle also
        degrades by eviction instead of growing unbounded.
    """

    def __init__(
        self,
        maxsize: int = 16,
        kernel_backend=None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        self._contexts = LRUCache(maxsize=maxsize)
        self.rebind_fallbacks = 0
        self.kernel_backend = kernel_backend
        self.memory_budget_bytes = memory_budget_bytes
        # one shared counter object for every context's distance oracle,
        # so cache_stats() reports engine-wide oracle behaviour even
        # across evictions and apply_delta chains
        self.oracle_stats = OracleStats()

    def lookup(
        self,
        graph: BipartiteGraph,
        report: Optional[ChordalityReport] = None,
        report_factory=None,
    ) -> Tuple[SchemaContext, bool]:
        """Return ``(context, cache_hit)`` for ``graph``, building on first use.

        The boolean feeds result provenance: ``True`` means the context was
        served from the LRU, ``False`` that it was (re)built for this call.
        ``report_factory`` is a zero-argument callable consulted only on a
        miss (and only when ``report`` is not given) -- it lets callers
        with an *expensive* report source (e.g. a disk read) avoid paying
        it on the hit path.
        """
        key = schema_fingerprint(graph)
        context = self._contexts.get(key)
        hit = context is not None
        if context is None:
            if report is None and report_factory is not None:
                report = report_factory()
            context = SchemaContext(
                graph,
                report=report,
                oracle_stats=self.oracle_stats,
                kernel_backend=self.kernel_backend,
                memory_budget_bytes=self.memory_budget_bytes,
            )
            if not fingerprint_is_ambiguous(key):
                # an ambiguous key can never be looked up again; caching
                # under it would only evict contexts that can
                self._contexts.put(key, context)
                self.enforce_memory_budget()
        elif report is not None:
            context.seed_report(report)
        return context, hit

    def get_or_build(
        self, graph: BipartiteGraph, report: Optional[ChordalityReport] = None
    ) -> SchemaContext:
        """Return the cached context for ``graph``, building it on first use."""
        return self.lookup(graph, report=report)[0]

    def adopt(self, context: SchemaContext) -> None:
        """Insert a prebuilt context under its own graph's fingerprint.

        Used by pool workers to seed their cache with a context rebuilt
        from transported shard state
        (:meth:`SchemaContext.from_shard_state`), so the first query pays
        no classification or re-indexing.  Contexts of ambiguous graphs
        are not insertable (their fingerprints never repeat) and are
        silently skipped.
        """
        key = schema_fingerprint(context.graph)
        if not fingerprint_is_ambiguous(key):
            context.adopt_oracle_stats(self.oracle_stats)
            context.adopt_kernel_policy(self.kernel_backend, self.memory_budget_bytes)
            self._contexts.put(key, context)
            self.enforce_memory_budget()

    def count_external_hit(self) -> None:
        """Record a context served from a caller-side memo above this cache.

        The :class:`~repro.api.service.ConnectionService` memoises the
        context of an immutable bound schema and skips the fingerprint
        lookup entirely; counting those serves here keeps
        :meth:`stats` consistent with the ``cache_hit`` provenance flag.
        """
        self._contexts.hits += 1

    def count_external_miss(self) -> None:
        """Record a context (re)built above this cache without a lookup.

        The service's incremental rebind path derives a patched context
        directly from the previous one (no fingerprint lookup happens);
        counting it as a miss keeps :meth:`stats` consistent with the
        ``cache_hit=False`` provenance those answers carry.
        """
        self._contexts.misses += 1

    def count_rebind_fallback(self) -> None:
        """Record an incremental rebind that fell back to a full rebuild.

        The service's incremental path is an optimisation with a silent
        full-rebuild fallback; answers stay correct either way, so only
        this counter reveals when the fast path has stopped firing (a
        healthy churn workload keeps it at zero).
        """
        self.rebind_fallbacks += 1

    def memory_bytes(self) -> int:
        """Return the budget-relevant bytes of every cached context.

        Shared oracles (``apply_delta`` chains) are counted once; this is
        the number the ``repro_memory_schema_cache_bytes`` gauge exports
        and :meth:`enforce_memory_budget` bounds.
        """
        seen: set = set()
        total = 0
        for context in self._contexts.values():
            total += context.indexed.nbytes()
            oracle = getattr(context, "_oracle", None)
            if oracle is not None and id(oracle) not in seen:
                seen.add(id(oracle))
                total += oracle.bytes_held()
        return total

    def enforce_memory_budget(self) -> None:
        """Evict coldest contexts until :meth:`memory_bytes` fits the budget.

        A no-op without a budget.  The newest context always survives
        (a budget smaller than one schema degrades to rebuild-per-query,
        never to failure).  Called after every insert; long-lived callers
        whose oracles grow *between* inserts (one bound schema, heavy
        query traffic) are bounded by the per-oracle budget instead.
        """
        budget = self.memory_budget_bytes
        if budget is None:
            return
        while len(self._contexts) > 1 and self.memory_bytes() > budget:
            self._contexts.pop_oldest()

    def stats(self) -> dict:
        """Return observability counters for the underlying LRU."""
        return {
            "hits": self._contexts.hits,
            "misses": self._contexts.misses,
            "evictions": self._contexts.evictions,
            "size": len(self._contexts),
            "maxsize": self._contexts.maxsize,
            "rebind_fallbacks": self.rebind_fallbacks,
            "memory_bytes": self.memory_bytes(),
            "memory_budget_bytes": self.memory_budget_bytes,
            "oracle_bytes": self.oracle_bytes(),
            "distance_oracle": self.oracle_stats.as_dict(),
        }

    def oracle_bytes(self) -> int:
        """Total bytes held by the cached contexts' distance-oracle rows.

        The oracle-side slice of :meth:`memory_bytes` (which adds the
        resident CSR bytes on top); shared oracles are counted once.
        Exported as ``repro_memory_held_bytes{component="distance_oracle"}``.
        """
        seen: set = set()
        total = 0
        for context in self._contexts.values():
            oracle = getattr(context, "_oracle", None)
            if oracle is not None and id(oracle) not in seen:
                seen.add(id(oracle))
                total += oracle.bytes_held()
        return total

    def oracle_rows(self) -> int:
        """Total BFS rows held by the cached contexts' distance oracles.

        A *capacity* number, not a traffic counter: it is what a leak
        monitor (:mod:`repro.load.soak`) watches for unbounded growth.
        Contexts whose oracle was never forced stay at zero rows; shared
        oracles (``apply_delta`` chains) are counted once.
        """
        seen: set = set()
        rows = 0
        for context in self._contexts.values():
            oracle = getattr(context, "_oracle", None)
            if oracle is not None and id(oracle) not in seen:
                seen.add(id(oracle))
                rows += oracle.rows_cached()
        return rows

    def __len__(self) -> int:
        return len(self._contexts)
