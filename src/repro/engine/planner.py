"""Query planning: choose a solver from the schema class and query shape.

The planner reproduces the dispatch policy of
:class:`~repro.core.connection.MinimalConnectionFinder` -- same thresholds,
same order of preference -- so that engine answers are directly comparable
to the per-query API (the differential test-suite pins this).  The
difference is that the classification comes from the cached
:class:`~repro.engine.cache.SchemaContext` instead of being recomputed,
and the chosen solvers run on the indexed fast lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.cache import SchemaContext
from repro.engine.registry import InstanceClass


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision for one query.

    ``solver`` names the primary registry entry; ``fallbacks`` lists the
    solvers to try (in order) when the primary raises
    :class:`~repro.exceptions.NotApplicableError` -- that mirrors the
    Algorithm 1 "degenerate component" escape hatch of the per-query API.
    """

    solver: str
    fallbacks: Sequence[str]
    instance_class: InstanceClass
    objective: str
    exact: bool
    reason: str


def plan_query(
    context: SchemaContext,
    terminals: Iterable,
    objective: str = "steiner",
    side: int = 2,
    exact_terminal_limit: int = 8,
    exact_vertex_limit: int = 18,
) -> QueryPlan:
    """Return the :class:`QueryPlan` for one terminal set.

    ``objective`` is ``"steiner"`` (minimise total objects, Definition 8)
    or ``"side"`` (minimise ``V_side`` objects, Definition 9).  The
    thresholds default to the finder's.
    """
    report = context.report
    terminal_list = sorted(set(terminals), key=repr)
    if objective == "steiner":
        if report.steiner_tractable():
            return QueryPlan(
                solver="chordal-elimination",
                fallbacks=(),
                instance_class=InstanceClass.CHORDAL,
                objective=objective,
                exact=True,
                reason="(6,2)-chordal schema: every nonredundant cover is minimum (Lemma 5)",
            )
        if len(terminal_list) <= exact_terminal_limit:
            return QueryPlan(
                solver="dreyfus-wagner",
                fallbacks=(),
                instance_class=InstanceClass.GENERAL,
                objective=objective,
                exact=True,
                reason=f"small terminal set (<= {exact_terminal_limit}): exact DP",
            )
        optional = context.graph.number_of_vertices() - len(terminal_list)
        if optional <= exact_vertex_limit:
            return QueryPlan(
                solver="bruteforce",
                fallbacks=(),
                instance_class=InstanceClass.GENERAL,
                objective=objective,
                exact=True,
                reason=f"few optional vertices (<= {exact_vertex_limit}): exhaustive search",
            )
        return QueryPlan(
            solver="kmb",
            fallbacks=(),
            instance_class=InstanceClass.GENERAL,
            objective=objective,
            exact=False,
            reason="general schema, large query: KMB 2-approximation",
        )
    if objective == "side":
        side_vertices = context.graph.side(side)
        optional_side = len(side_vertices - set(terminal_list))
        small = optional_side <= exact_vertex_limit
        fallback = "pseudo-bruteforce" if small else "kmb"
        if report.pseudo_steiner_tractable(side):
            return QueryPlan(
                solver="algorithm1-indexed",
                fallbacks=(fallback,),
                instance_class=InstanceClass.SIDE_CHORDAL,
                objective=objective,
                exact=True,
                reason=f"V{side}-alpha schema: Algorithm 1 with cached Lemma 1 ordering",
            )
        return QueryPlan(
            solver=fallback,
            fallbacks=(),
            instance_class=InstanceClass.GENERAL,
            objective=objective,
            exact=small,
            reason="no side-chordality guarantee: exact baseline or KMB",
        )
    raise ValueError(f"unknown objective {objective!r}")
