"""Solver registry: instance classes and the solvers registered for them.

The paper attaches a different algorithmic status to each chordality
class; the engine mirrors that table as a registry mapping *instance
classes* to named solver callables:

==================  ====================================================
instance class      default solvers
==================  ====================================================
``chordal``         ``chordal-elimination`` (Lemma 5 fast lane, exact)
``side-chordal``    ``algorithm1-indexed`` (Lemma 1 ordering, exact)
``general``         ``dreyfus-wagner`` / ``bruteforce`` (exact, small),
                    ``kmb`` (2-approximation, any size)
==================  ====================================================

Every solver takes ``(context, terminals)`` (plus ``side`` for the
pseudo-Steiner ones), where ``context`` is a cached
:class:`~repro.engine.cache.SchemaContext`, and returns a
:class:`~repro.steiner.problem.SteinerSolution` whose tree lives on the
*original* hashable-vertex schema graph -- the indexed backend is an
internal fast lane, never visible in results.  Custom solvers can be
registered to experiment with alternative strategies without touching the
planner.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.engine.cache import SchemaContext
from repro.exceptions import DisconnectedTerminalsError, NotApplicableError
from repro.graphs.graph import Vertex
from repro.graphs.indexed import indexed_elimination_cover, iter_bits
from repro.graphs.spanning import spanning_tree
from repro.steiner.exact import steiner_tree_bruteforce, steiner_tree_dreyfus_wagner
from repro.steiner.heuristics import kou_markowsky_berman
from repro.steiner.problem import (
    SteinerInstance,
    SteinerSolution,
    prune_non_terminal_leaves,
)
from repro.steiner.pseudo import pseudo_steiner_bruteforce


class InstanceClass(Enum):
    """The engine's coarse view of the paper's class hierarchy."""

    CHORDAL = "chordal"  # (4,1)- or (6,2)-chordal: Steiner in P (Lemma 5)
    SIDE_CHORDAL = "side-chordal"  # V_i-chordal + conformal: pseudo-Steiner in P
    GENERAL = "general"  # no polynomial guarantee applies


Solver = Callable[..., SteinerSolution]


class SolverRegistry:
    """Named solver callables, with the class table used by the planner."""

    def __init__(self) -> None:
        self._solvers: Dict[str, Solver] = {}
        self._objectives: Dict[str, Sequence[str]] = {}

    def register(
        self, name: str, solver: Solver, objectives: Optional[Sequence[str]] = None
    ) -> None:
        """Register ``solver`` under ``name`` (overwrites silently).

        ``objectives`` declares which objective(s) the solver actually
        optimises (``"steiner"`` and/or ``"side"``); the service façade
        refuses explicit-solver requests whose objective is not declared,
        because the result's ``optimal`` flag would certify the wrong
        quantity.  ``None`` (the default for custom solvers) means
        "undeclared": no compatibility check is enforced, and any prior
        declaration for the name is *kept* -- re-registering a wrapped
        stock solver must not silently disable the objective guard.
        """
        self._solvers[name] = solver
        if objectives is not None:
            self._objectives[name] = tuple(objectives)

    def objectives_of(self, name: str) -> Optional[Sequence[str]]:
        """Return the declared objectives for ``name`` (``None`` = undeclared)."""
        return self._objectives.get(name)

    def get(self, name: str) -> Solver:
        """Return the solver registered under ``name``."""
        try:
            return self._solvers[name]
        except KeyError:
            raise KeyError(f"no solver registered under {name!r}") from None

    def names(self) -> List[str]:
        """Return the registered solver names (sorted)."""
        return sorted(self._solvers)

    def __contains__(self, name: str) -> bool:
        return name in self._solvers


# ----------------------------------------------------------------------
# solver implementations
# ----------------------------------------------------------------------
def solve_chordal_elimination(context: SchemaContext, terminals: Iterable[Vertex]) -> SteinerSolution:
    """Exact Steiner trees on (6,2)-chordal schemas via Lemma 5.

    Lemma 5 guarantees that *every* nonredundant cover is minimum, so the
    solver may start from any cover and eliminate down to nonredundancy:

    1. seed with the union of BFS shortest paths from one terminal to the
       others (one indexed BFS, a connected cover);
    2. greedily drop redundant vertices of the seed (bitset connectivity
       checks inside the small seed set only);
    3. return a spanning tree of the surviving cover.

    The per-query cost is ``O(|V| + |A|)`` plus work proportional to the
    seed size -- independent of the number of vertices eliminated, which is
    what makes the batched path scale where the full elimination scan of
    Algorithm 2 does not.  The objective value always matches Algorithm 2's
    (both are minimum by Lemma 5); tie-breaking may choose a different,
    equally small cover.
    """
    instance = SteinerInstance(context.graph, terminals)
    terminal_ids = sorted(context.index.encode(instance.terminals))
    indexed = context.indexed
    root = terminal_ids[0]
    # the oracle caches the parent row per root across queries: a batch
    # whose terminal sets overlap pays one BFS per distinct root, not one
    # per query (the rows carry bfs_parents' exact tie-break semantics,
    # so the seeded covers -- and the returned trees -- are unchanged)
    parents = context.distance_oracle.parents(root)
    if any(parents[t] < 0 for t in terminal_ids):
        raise DisconnectedTerminalsError(
            "the terminals do not lie in a single connected component"
        )

    # 1. seed cover: union of BFS shortest paths root -> terminal
    seed: Set[int] = set(terminal_ids)
    for terminal in terminal_ids:
        current = terminal
        while current != root:
            current = parents[current]
            seed.add(current)

    # 2. nonredundant elimination inside the seed (ascending id order)
    cover = _eliminate_within(indexed, seed, terminal_ids)

    # 3. spanning tree of the cover, mapped back to the original labels
    labels = context.index.decode_set(cover)
    tree = spanning_tree(context.graph.subgraph(labels))
    tree = prune_non_terminal_leaves(tree, instance.terminals)
    solution = SteinerSolution(
        tree=tree,
        instance=instance,
        method="engine-chordal-elimination",
        optimal=context.report.steiner_tractable(),
    )
    solution.metadata["cover"] = set(labels)
    return solution


def _eliminate_within(indexed, seed: Set[int], terminal_ids: Sequence[int]) -> Set[int]:
    """Drop redundant seed vertices; return the terminals' component (ids).

    One ascending-id pass suffices for nonredundancy: a vertex whose
    removal disconnects the terminals at scan time stays essential as the
    set only shrinks afterwards.
    """
    bits = indexed.bits
    terminal_set = set(terminal_ids)
    root = terminal_ids[0]
    needed = len(terminal_set)
    alive_mask = 0
    for vertex in seed:
        alive_mask |= 1 << vertex
    for vertex in sorted(seed):
        if vertex in terminal_set:
            continue
        candidate_mask = alive_mask & ~(1 << vertex)
        if _mask_terminals_connected(bits, candidate_mask, root, terminal_set, needed):
            alive_mask = candidate_mask
    # terminals' component of the surviving set
    component = _mask_component(bits, alive_mask, root)
    return component


def _mask_terminals_connected(
    bits: List[int], alive_mask: int, root: int, terminal_set: Set[int], needed: int
) -> bool:
    reached = _mask_component_mask(bits, alive_mask, root)
    found = sum(1 for t in terminal_set if reached >> t & 1)
    return found == needed


def _mask_component_mask(bits: List[int], alive_mask: int, root: int) -> int:
    """Return the bitmask of the alive vertices reachable from ``root``."""
    reached = 1 << root
    frontier = reached
    while frontier:
        neighbors = 0
        for vertex in iter_bits(frontier):
            neighbors |= bits[vertex]
        frontier = neighbors & alive_mask & ~reached
        reached |= frontier
    return reached


def _mask_component(bits: List[int], alive_mask: int, root: int) -> Set[int]:
    return set(iter_bits(_mask_component_mask(bits, alive_mask, root)))


def solve_algorithm1_indexed(
    context: SchemaContext, terminals: Iterable[Vertex], side: int = 2
) -> SteinerSolution:
    """Algorithm 1 on the indexed backend with cached Lemma 1 orderings.

    The component restriction, the structural precondition and the Lemma 1
    elimination ordering are all read from the schema context (computed
    once per component); only the Step 2 elimination runs per query, on the
    array fast lane.  Produces the same cover as
    :func:`~repro.steiner.algorithm1.pseudo_steiner_algorithm1` because the
    ordering and the elimination semantics are identical.
    """
    instance = SteinerInstance(context.graph, terminals)
    terminal_ids = sorted(context.index.encode(instance.terminals))
    plan = context.side_plan(side, terminal_ids[0])
    if any(t not in plan.component for t in terminal_ids):
        raise DisconnectedTerminalsError(
            "the terminals do not lie in a single connected component"
        )
    if not plan.applicable:
        raise NotApplicableError(
            f"the component containing the terminals is not V{side}-chordal "
            f"and V{side}-conformal; Algorithm 1 does not apply"
        )
    if plan.ordering is None:
        raise NotApplicableError(
            "no running-intersection ordering exists; the associated "
            "hypergraph is not alpha-acyclic"
        )
    cover_ids = indexed_elimination_cover(
        context.indexed,
        terminal_ids,
        ordering=plan.ordering,
        removal_batches=True,
        restrict=plan.component,
    )
    labels = context.index.decode_set(cover_ids)
    tree = spanning_tree(context.graph.subgraph(labels))
    tree = prune_non_terminal_leaves(tree, instance.terminals)
    solution = SteinerSolution(
        tree=tree,
        instance=instance,
        method="engine-algorithm1",
        side=side,
        optimal=True,
    )
    solution.metadata["cover"] = set(labels)
    solution.metadata["ordering"] = context.index.decode(plan.ordering)
    return solution


def solve_dreyfus_wagner(context: SchemaContext, terminals: Iterable[Vertex]) -> SteinerSolution:
    """Exact Dreyfus-Wagner dynamic program (small terminal sets)."""
    return steiner_tree_dreyfus_wagner(context.graph, terminals)


def solve_bruteforce(context: SchemaContext, terminals: Iterable[Vertex]) -> SteinerSolution:
    """Exhaustive subset enumeration (few optional vertices)."""
    return steiner_tree_bruteforce(context.graph, terminals)


def solve_kmb(
    context: SchemaContext, terminals: Iterable[Vertex], side: Optional[int] = None
) -> SteinerSolution:
    """KMB 2-approximation fed by the context's cached BFS rows."""
    terminal_list = sorted(set(terminals), key=repr)
    # validate membership first so unknown terminals raise the library's
    # ValidationError rather than a bare KeyError from the row cache
    SteinerInstance(context.graph, terminal_list)
    distances = {t: context.bfs_row(t) for t in terminal_list}
    solution = kou_markowsky_berman(context.graph, terminal_list, distances=distances)
    if side is not None:
        solution.side = side
    return solution


def solve_pseudo_bruteforce(
    context: SchemaContext, terminals: Iterable[Vertex], side: int = 2
) -> SteinerSolution:
    """Exhaustive pseudo-Steiner baseline (few optional side vertices)."""
    terminal_list = sorted(set(terminals), key=repr)
    return pseudo_steiner_bruteforce(context.graph, terminal_list, side)


def default_registry() -> SolverRegistry:
    """Return a registry populated with the stock solvers."""
    registry = SolverRegistry()
    registry.register(
        "chordal-elimination", solve_chordal_elimination, objectives=("steiner",)
    )
    registry.register(
        "algorithm1-indexed", solve_algorithm1_indexed, objectives=("side",)
    )
    registry.register("dreyfus-wagner", solve_dreyfus_wagner, objectives=("steiner",))
    registry.register("bruteforce", solve_bruteforce, objectives=("steiner",))
    registry.register("kmb", solve_kmb, objectives=("steiner", "side"))
    registry.register(
        "pseudo-bruteforce", solve_pseudo_bruteforce, objectives=("side",)
    )
    return registry
