"""Batched interpretation engine: registry, planner, schema cache, batch API.

This package is the scaling layer on top of the paper's algorithms.  The
architecture, in one picture::

    batch_interpret(schema, queries)
        |
        v
    SchemaCache (LRU, structural fingerprints)
        |           one SchemaContext per schema:
        v           IndexedGraph + GraphIndex, ChordalityReport,
    SchemaContext   BFS rows, Lemma 1 orderings, component plans
        |
        v
    plan_query  ->  QueryPlan (solver name + fallbacks, finder-compatible)
        |
        v
    SolverRegistry  ->  chordal-elimination / algorithm1-indexed /
                        dreyfus-wagner / bruteforce / kmb / ...

See :mod:`repro.engine.batch` for when batching beats the per-query
:class:`~repro.core.connection.MinimalConnectionFinder` calls, and
``tests/test_differential_engine.py`` for the harness pinning both paths
to each other and to the exhaustive oracles.
"""

from repro.engine.batch import InterpretationEngine, batch_interpret, default_engine
from repro.engine.cache import (
    LRUCache,
    SchemaCache,
    SchemaContext,
    schema_digest,
    schema_fingerprint,
)
from repro.engine.planner import QueryPlan, plan_query
from repro.engine.registry import InstanceClass, SolverRegistry, default_registry

__all__ = [
    "InstanceClass",
    "InterpretationEngine",
    "LRUCache",
    "QueryPlan",
    "SchemaCache",
    "SchemaContext",
    "SolverRegistry",
    "batch_interpret",
    "default_engine",
    "default_registry",
    "plan_query",
    "schema_digest",
    "schema_fingerprint",
]
