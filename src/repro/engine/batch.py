"""The batched interpretation engine (``batch_interpret``).

The paper's motivating scenario is interactive: one user, one query.  At
production scale the same schema serves streams of queries, and the
per-query API wastes almost all of its time recomputing schema-level
facts -- the Theorem 1 classification, BFS rows, Lemma 1 orderings.  The
engine amortises them:

* a :class:`~repro.engine.cache.SchemaCache` keeps one
  :class:`~repro.engine.cache.SchemaContext` per schema (LRU, structural
  fingerprint keys);
* a :class:`~repro.engine.planner.plan_query` call picks a solver from the
  :class:`~repro.engine.registry.SolverRegistry` using the cached class;
* the solver runs on the integer-indexed fast lane and returns a
  :class:`~repro.steiner.problem.SteinerSolution` on the original graph.

``batch_interpret(schema, queries)`` is the one-call entry point.  It
accepts a :class:`~repro.graphs.bipartite.BipartiteGraph`, a
:class:`~repro.semantic.relational.RelationalSchema` or an
:class:`~repro.semantic.er_model.ERSchema`, plus an iterable of terminal
sets, and returns one solution per query with the exact same objective
values as the per-query :class:`~repro.core.connection.MinimalConnectionFinder`
calls.  Batching wins whenever the number of queries outweighs the one-off
classification cost -- in the benchmarks a 500-vertex chordal schema with
100 queries runs two orders of magnitude faster than the per-query loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.classification import ChordalityReport
from repro.engine.cache import SchemaCache, SchemaContext
from repro.engine.planner import QueryPlan, plan_query
from repro.engine.registry import SolverRegistry, default_registry
from repro.exceptions import NotApplicableError, ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph
from repro.steiner.problem import SteinerSolution


class InterpretationEngine:
    """Batched minimal-connection engine over cached schema contexts.

    Parameters
    ----------
    registry:
        Solver registry; defaults to :func:`~repro.engine.registry.default_registry`.
    cache_size:
        Number of schema contexts kept in the LRU.
    exact_terminal_limit / exact_vertex_limit:
        Same dispatch thresholds as :class:`~repro.core.connection.MinimalConnectionFinder`.
    kernel_backend:
        The :class:`~repro.kernels.backend.KernelBackend` lane every
        context's distance oracle produces rows on (``None`` = process
        default; rows are byte-identical across lanes).
    memory_budget_bytes:
        Optional byte budget for the schema cache and its oracles (see
        :class:`~repro.engine.cache.SchemaCache`).

    Examples
    --------
    >>> from repro.graphs import BipartiteGraph
    >>> g = BipartiteGraph(left=["A", "B"], right=[1], edges=[("A", 1), ("B", 1)])
    >>> engine = InterpretationEngine()
    >>> [s.vertex_count() for s in engine.batch_interpret(g, [["A", "B"], ["A"]])]
    [3, 1]
    """

    def __init__(
        self,
        registry: Optional[SolverRegistry] = None,
        cache_size: int = 16,
        exact_terminal_limit: int = 8,
        exact_vertex_limit: int = 18,
        kernel_backend=None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self._cache = SchemaCache(
            maxsize=cache_size,
            kernel_backend=kernel_backend,
            memory_budget_bytes=memory_budget_bytes,
        )
        self._exact_terminal_limit = exact_terminal_limit
        self._exact_vertex_limit = exact_vertex_limit

    # ------------------------------------------------------------------
    # contexts
    # ------------------------------------------------------------------
    def context_for(self, schema) -> SchemaContext:
        """Return the cached :class:`SchemaContext` for ``schema`` (building it once)."""
        return self._cache.get_or_build(self._resolve_schema(schema))

    def context_with_status(self, schema) -> "tuple[SchemaContext, bool]":
        """Return ``(context, cache_hit)`` -- provenance-aware context lookup."""
        return self._cache.lookup(self._resolve_schema(schema))

    @property
    def cache(self) -> SchemaCache:
        """The engine's :class:`~repro.engine.cache.SchemaCache`."""
        return self._cache

    @property
    def exact_terminal_limit(self) -> int:
        """Dispatch threshold: max terminals for the Dreyfus-Wagner fallback."""
        return self._exact_terminal_limit

    @property
    def exact_vertex_limit(self) -> int:
        """Dispatch threshold: max optional vertices for brute-force fallbacks."""
        return self._exact_vertex_limit

    def cache_stats(self) -> dict:
        """Return the schema cache's observability counters."""
        return self._cache.stats()

    def seed_report(self, schema, report: ChordalityReport) -> None:
        """Adopt an externally computed classification for ``schema``."""
        graph = self._resolve_schema(schema)
        self._cache.get_or_build(graph, report=report)

    def adopt_context(self, context: SchemaContext) -> SchemaContext:
        """Adopt a prebuilt :class:`SchemaContext` into this engine's cache.

        The context is registered under its own graph's structural
        fingerprint, so subsequent queries on a structurally equal schema
        hit it directly.  This is how pool workers warm-start from the
        parent's transported shard state (see
        :meth:`SchemaContext.from_shard_state`).
        """
        self._cache.adopt(context)
        return context

    def resolve_schema(self, schema) -> BipartiteGraph:
        """Return the :class:`BipartiteGraph` behind any accepted schema handle."""
        return self._resolve_schema(schema)

    def _resolve_schema(self, schema) -> BipartiteGraph:
        if isinstance(schema, BipartiteGraph):
            return schema
        if isinstance(schema, Graph):
            return BipartiteGraph.from_graph(schema)
        schema_graph = getattr(schema, "schema_graph", None)
        if callable(schema_graph):  # RelationalSchema
            return schema_graph()
        bipartite_graph = getattr(schema, "bipartite_graph", None)
        if callable(bipartite_graph):  # ERSchema
            return bipartite_graph()
        raise ValidationError(
            "schema must be a BipartiteGraph, Graph, RelationalSchema or ERSchema"
        )

    # ------------------------------------------------------------------
    # single query
    # ------------------------------------------------------------------
    def plan(self, schema, terminals, objective: str = "steiner", side: int = 2) -> QueryPlan:
        """Return the :class:`QueryPlan` the engine would use for one query."""
        return plan_query(
            self.context_for(schema),
            terminals,
            objective=objective,
            side=side,
            exact_terminal_limit=self._exact_terminal_limit,
            exact_vertex_limit=self._exact_vertex_limit,
        )

    def interpret(
        self, schema, terminals, objective: str = "steiner", side: int = 2
    ) -> SteinerSolution:
        """Answer a single query through the cached fast path.

        Equivalent (same objective value) to
        ``MinimalConnectionFinder(schema).minimal_connection(terminals)``
        for ``objective="steiner"`` and to ``minimal_side_connection`` for
        ``objective="side"``.
        """
        terminals = list(terminals)  # planning and solving both iterate
        context = self.context_for(schema)
        plan = plan_query(
            context,
            terminals,
            objective=objective,
            side=side,
            exact_terminal_limit=self._exact_terminal_limit,
            exact_vertex_limit=self._exact_vertex_limit,
        )
        return self.execute_plan(context, plan, terminals, side)

    def execute_plan(
        self, context: SchemaContext, plan: QueryPlan, terminals, side: int
    ) -> SteinerSolution:
        """Run a :class:`QueryPlan` (primary solver, then fallbacks) on a context.

        This is the one place in the library where a solver is actually
        invoked; the :class:`~repro.api.service.ConnectionService` façade
        and every legacy entry point funnel through it.
        """
        names = (plan.solver, *plan.fallbacks)
        last_error: Optional[NotApplicableError] = None
        for position, name in enumerate(names):
            solver = self.registry.get(name)
            kwargs: Dict = {}
            if plan.objective == "side":
                kwargs["side"] = side
            try:
                solution = solver(context, terminals, **kwargs)
            except NotApplicableError as error:
                last_error = error
                continue
            solution.metadata.setdefault("plan", plan.reason)
            solution.metadata.setdefault("solver", name)
            if position > 0:
                solution.metadata.setdefault("fallback_from", plan.solver)
            return solution
        raise last_error if last_error is not None else NotApplicableError(
            "no applicable solver"
        )

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------
    def batch_interpret(
        self,
        schema,
        queries: Iterable[Iterable],
        objective: str = "steiner",
        side: int = 2,
    ) -> List[SteinerSolution]:
        """Answer many queries over one schema, amortising precomputation.

        The schema is classified and indexed once (or fetched from the
        LRU), the batch's queries are planned up front and grouped by the
        BFS sources their solvers will need -- one
        :class:`~repro.kernels.oracle.DistanceOracle` fill then serves
        every query sharing a terminal -- and each query pays only its
        solver's inner loop.  Results are returned in query order.
        """
        context = self.context_for(schema)
        queries = [list(query) for query in queries]  # both phases iterate
        plans = self._plan_batch(context, queries, objective, side)
        results: List[SteinerSolution] = []
        for position, query in enumerate(queries):
            plan = plans[position]
            if plan is None:
                # deferred so the error surfaces at this query's position,
                # matching the sequential contract
                plan = plan_query(
                    context,
                    query,
                    objective=objective,
                    side=side,
                    exact_terminal_limit=self._exact_terminal_limit,
                    exact_vertex_limit=self._exact_vertex_limit,
                )
            results.append(self.execute_plan(context, plan, query, side))
        return results

    def _plan_batch(
        self, context: SchemaContext, queries: List[List], objective: str, side: int
    ) -> List[Optional[QueryPlan]]:
        """Pre-plan a batch and prefill the distance oracle it will hit.

        Strictly best-effort: a query whose planning fails gets ``None``
        (re-planned -- and re-raised -- in sequence position by the
        caller), and the grouped prefill skips anything it cannot encode.
        Grouping means deduplication: the chordal-elimination solver
        reads one parent row per *distinct* root terminal and the KMB
        closure one distance row per *distinct* terminal, so overlapping
        terminal sets across the batch collapse to single BFS fills.
        """
        plans: List[Optional[QueryPlan]] = []
        parent_roots = set()
        level_sources = set()
        for query in queries:
            try:
                plan = plan_query(
                    context,
                    query,
                    objective=objective,
                    side=side,
                    exact_terminal_limit=self._exact_terminal_limit,
                    exact_vertex_limit=self._exact_vertex_limit,
                )
            except Exception:
                plans.append(None)
                continue
            plans.append(plan)
            try:
                ids = context.index.encode(set(query))
            except Exception:
                continue
            if not ids:
                continue
            # prefill for the *primary* solver only: a fallback rarely
            # runs, and paying k dense BFS rows for it up front would
            # waste traversals (and LRU slots) on the common path
            if plan.solver == "chordal-elimination":
                parent_roots.add(min(ids))
            elif plan.solver == "kmb":
                level_sources.update(ids)
        oracle = context.distance_oracle
        # cap the prefill at the oracle's capacity: filling more rows
        # than the LRU holds would evict them before their query runs,
        # paying every BFS twice (roots first -- parent rows are the
        # common chordal-schema case)
        budget = oracle.maxsize
        roots = sorted(parent_roots)[:budget]
        oracle.ensure(roots, parents=True)
        oracle.ensure(sorted(level_sources)[: max(0, budget - len(roots))])
        return plans


def default_engine() -> InterpretationEngine:
    """Return the process-wide default engine.

    This is the engine behind :func:`repro.api.service.default_service`
    (one shared schema cache): contexts warmed through either entry point
    are visible to the other.
    """
    from repro.api.service import default_service  # circular at module load

    return default_service().engine


def batch_interpret(
    schema,
    queries: Iterable[Iterable],
    objective: str = "steiner",
    side: int = 2,
    as_results: bool = False,
) -> List:
    """Module-level convenience wrapper around the default service.

    Routes through the process-wide
    :class:`~repro.api.service.ConnectionService` so every answer carries
    provenance.  By default the bare
    :class:`~repro.steiner.problem.SteinerSolution` objects are returned
    (back-compat); pass ``as_results=True`` for the full
    :class:`~repro.api.result.ConnectionResult` objects.
    """
    from repro.api.service import default_service  # circular at module load

    results = default_service().batch(
        queries, schema=schema, objective=objective, side=side
    )
    if as_results:
        return results
    return [result.solution for result in results]
