"""Perfect elimination orderings.

A vertex is *simplicial* when its neighbourhood is a clique; an ordering
``v_1, ..., v_n`` of the vertices is a *perfect elimination ordering* (PEO)
when every ``v_i`` is simplicial in the subgraph induced by
``{v_i, ..., v_n}``.  A graph is chordal ((4,1)-chordal in the paper's
terminology) iff it has a PEO -- this classical fact is what both the
maximum-cardinality-search and the lexicographic-BFS chordality tests rely
on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.exceptions import GraphError
from repro.graphs.backend import is_indexed
from repro.graphs.graph import Graph, Vertex
from repro.graphs.indexed import IndexedGraph, iter_bits
from repro.utils.ordering import is_permutation_of


def is_simplicial(graph: Graph, vertex: Vertex) -> bool:
    """Return ``True`` when the neighbourhood of ``vertex`` is a clique."""
    if is_indexed(graph):
        # the cached CSR row spares the fresh neighbour-set allocation
        # (is_clique only iterates its argument)
        if not graph.has_vertex(vertex):
            raise GraphError(f"vertex {vertex!r} is not in the graph")
        return graph.is_clique(graph.row(vertex))
    return graph.is_clique(graph.neighbors(vertex))


def is_perfect_elimination_ordering(graph: Graph, ordering: Sequence[Vertex]) -> bool:
    """Check whether ``ordering`` is a perfect elimination ordering.

    The check runs in ``O(sum of deg^2)`` using the standard "later
    neighbours must be adjacent to the next later neighbour" criterion; on
    the :class:`~repro.graphs.indexed.IndexedGraph` backend the "all later
    neighbours adjacent to the pivot" test collapses to two big-int bitset
    operations per vertex.
    """
    ordering = list(ordering)
    if not is_permutation_of(ordering, graph.vertices()):
        raise ValueError("ordering must list every vertex exactly once")
    if is_indexed(graph):
        return _is_peo_indexed(graph, ordering)
    position: Dict[Vertex, int] = {v: i for i, v in enumerate(ordering)}
    for vertex in ordering:
        later = [u for u in graph.neighbors(vertex) if position[u] > position[vertex]]
        if not later:
            continue
        pivot = min(later, key=lambda u: position[u])
        for other in later:
            if other == pivot:
                continue
            if not graph.has_edge(pivot, other):
                return False
    return True


def _is_peo_indexed(graph: IndexedGraph, ordering: Sequence[int]) -> bool:
    """Bitset PEO verification: later neighbours must lie in the pivot's row."""
    position = [0] * graph.n
    for index, vertex in enumerate(ordering):
        position[vertex] = index
    bits = graph.bits
    later_mask = (1 << graph.n) - 1
    for vertex in ordering:
        later_mask ^= 1 << vertex  # strictly-later vertices only
        later = bits[vertex] & later_mask
        if not later:
            continue
        pivot = min(iter_bits(later), key=lambda u: position[u])
        rest = later & ~(1 << pivot)
        if rest & ~bits[pivot]:
            return False
    return True


def greedy_simplicial_elimination(graph: Graph) -> Optional[List[Vertex]]:
    """Return a PEO built by repeatedly deleting simplicial vertices.

    Chordal graphs always contain a simplicial vertex, and deleting one
    preserves chordality, so the greedy procedure succeeds exactly on
    chordal graphs.  ``None`` is returned when it gets stuck.  This is the
    slowest but most transparent of the three chordality tests and is used
    as the reference implementation in the tests.
    """
    working = graph.copy()
    order: List[Vertex] = []
    while working.number_of_vertices() > 0:
        candidate = None
        for vertex in working.sorted_vertices():
            if is_simplicial(working, vertex):
                candidate = vertex
                break
        if candidate is None:
            return None
        order.append(candidate)
        working.remove_vertex(candidate)
    return order


def elimination_fill_in(graph: Graph, ordering: Sequence[Vertex]) -> Set[frozenset]:
    """Return the fill-in edges produced by eliminating along ``ordering``.

    Eliminating a vertex connects all of its still-uneliminated neighbours
    into a clique; the returned set contains the edges that had to be added
    in the process.  The ordering is a PEO iff the fill-in is empty.
    """
    ordering = list(ordering)
    if not is_permutation_of(ordering, graph.vertices()):
        raise ValueError("ordering must list every vertex exactly once")
    working = graph.copy()
    fill: Set[frozenset] = set()
    for vertex in ordering:
        neighbors = sorted(working.neighbors(vertex), key=repr)
        for i, u in enumerate(neighbors):
            for v in neighbors[i + 1:]:
                if not working.has_edge(u, v):
                    working.add_edge(u, v)
                    fill.add(frozenset((u, v)))
        working.remove_vertex(vertex)
    return fill
