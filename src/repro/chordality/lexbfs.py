"""Lexicographic breadth-first search (Lex-BFS).

Rose, Tarjan and Lueker's Lex-BFS is the second classical linear-time
ordering whose reverse is a perfect elimination ordering exactly on chordal
graphs.  Having both MCS and Lex-BFS gives the library two genuinely
independent chordality tests that the property-based tests compare against
each other and against the brute-force simplicial-elimination reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graphs.graph import Graph, Vertex


def lexicographic_bfs(graph: Graph, start: Optional[Vertex] = None) -> List[Vertex]:
    """Return the Lex-BFS visit order of the vertices.

    The implementation keeps, for every unvisited vertex, its label as a
    list of visit positions of its already-visited neighbours (larger is
    lexicographically greater); this is the straightforward
    ``O(n^2)``-ish version, which is ample for the instance sizes used in
    the experiments.
    """
    vertices = graph.sorted_vertices()
    if not vertices:
        return []
    if start is not None and start not in graph:
        raise ValueError(f"start vertex {start!r} is not in the graph")
    labels: Dict[Vertex, List[int]] = {v: [] for v in vertices}
    visited: Dict[Vertex, bool] = {v: False for v in vertices}
    order: List[Vertex] = []
    for step in range(len(vertices)):
        if step == 0 and start is not None:
            chosen = start
        else:
            chosen = max(
                (v for v in vertices if not visited[v]),
                key=lambda v: (labels[v], _repr_key(v)),
            )
        visited[chosen] = True
        order.append(chosen)
        rank = len(vertices) - step  # later visits append smaller numbers
        for neighbor in graph.neighbors(chosen):
            if not visited[neighbor]:
                labels[neighbor].append(rank)
    return order


def lexbfs_elimination_ordering(
    graph: Graph, start: Optional[Vertex] = None
) -> List[Vertex]:
    """Return the reversed Lex-BFS order (a PEO iff the graph is chordal)."""
    return list(reversed(lexicographic_bfs(graph, start=start)))


def _repr_key(vertex: Vertex) -> Tuple[int, ...]:
    text = repr(vertex)
    return tuple(-ord(ch) for ch in text)
