"""Lexicographic breadth-first search (Lex-BFS).

Rose, Tarjan and Lueker's Lex-BFS is the second classical linear-time
ordering whose reverse is a perfect elimination ordering exactly on chordal
graphs.  Having both MCS and Lex-BFS gives the library two genuinely
independent chordality tests that the property-based tests compare against
each other and against the brute-force simplicial-elimination reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graphs.backend import is_indexed
from repro.graphs.graph import Graph, Vertex
from repro.graphs.indexed import IndexedGraph


def lexicographic_bfs(graph: Graph, start: Optional[Vertex] = None) -> List[Vertex]:
    """Return the Lex-BFS visit order of the vertices.

    The hashable-vertex implementation keeps, for every unvisited vertex,
    its label as a list of visit positions of its already-visited
    neighbours (larger is lexicographically greater); this is the
    straightforward ``O(n^2)``-ish version, which is ample for figure-sized
    instances.  The :class:`~repro.graphs.indexed.IndexedGraph` backend
    uses partition refinement instead (ascending-id tie-breaks): still
    ``O(n^2)`` membership tests in the worst case, but each test is an
    O(1) set lookup with no per-vertex label allocations, which keeps
    schema-sized graphs cheap.  As with MCS, tie-breaks may differ from
    the hashable lane on prefix-repr label pairs; only order-insensitive
    facts are comparable across backends.
    """
    vertices = graph.sorted_vertices()
    if not vertices:
        return []
    if start is not None and start not in graph:
        raise ValueError(f"start vertex {start!r} is not in the graph")
    if is_indexed(graph):
        return _lexbfs_indexed(graph, start)
    labels: Dict[Vertex, List[int]] = {v: [] for v in vertices}
    visited: Dict[Vertex, bool] = {v: False for v in vertices}
    order: List[Vertex] = []
    for step in range(len(vertices)):
        if step == 0 and start is not None:
            chosen = start
        else:
            chosen = max(
                (v for v in vertices if not visited[v]),
                key=lambda v: (labels[v], _repr_key(v)),
            )
        visited[chosen] = True
        order.append(chosen)
        rank = len(vertices) - step  # later visits append smaller numbers
        for neighbor in graph.neighbors(chosen):
            if not visited[neighbor]:
                labels[neighbor].append(rank)
    return order


def lexbfs_elimination_ordering(
    graph: Graph, start: Optional[Vertex] = None
) -> List[Vertex]:
    """Return the reversed Lex-BFS order (a PEO iff the graph is chordal)."""
    return list(reversed(lexicographic_bfs(graph, start=start)))


def _repr_key(vertex: Vertex) -> Tuple[int, ...]:
    text = repr(vertex)
    return tuple(-ord(ch) for ch in text)


def _lexbfs_indexed(graph: IndexedGraph, start: Optional[int]) -> List[int]:
    """Partition-refinement Lex-BFS over CSR rows (the indexed fast lane).

    Classes are kept as id-ordered lists; the visited vertex splits every
    class into (neighbours, non-neighbours), neighbours first, which is the
    classical refinement realisation of the lexicographic rule.  The next
    vertex is always the smallest id of the first non-empty class.
    """
    n = graph.n
    if n == 0:
        return []
    if start is not None:
        first = [start] + [v for v in range(n) if v != start]
    else:
        first = list(range(n))
    classes: List[List[int]] = [first]
    order: List[int] = []
    while classes:
        head = classes[0]
        chosen = head.pop(0)
        order.append(chosen)
        if not head:
            classes.pop(0)
        # note from the hot-loop audit: the set here is deliberate -- a
        # bitset membership test (`bits[chosen] >> v & 1`) allocates an
        # O(n/64)-word integer per test and measured ~1.7x SLOWER across
        # the O(n^2) refinement tests, while this set is built once per
        # visited vertex from the cached row
        adjacency = set(graph.row(chosen))
        refined: List[List[int]] = []
        for group in classes:
            inside = [v for v in group if v in adjacency]
            if not inside:
                refined.append(group)
                continue
            outside = [v for v in group if v not in adjacency]
            refined.append(inside)
            if outside:
                refined.append(outside)
        classes = refined
    return order
