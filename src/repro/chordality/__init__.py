"""Chordality tests and elimination orderings."""

from repro.chordality.chordal import is_chordal, perfect_elimination_ordering
from repro.chordality.lexbfs import lexbfs_elimination_ordering, lexicographic_bfs
from repro.chordality.mcs import maximum_cardinality_search, mcs_elimination_ordering
from repro.chordality.mn_chordal import (
    is_41_chordal_bipartite,
    is_61_chordal_bipartite,
    is_62_chordal_bipartite,
    is_chordal_bipartite,
    is_mn_chordal,
)
from repro.chordality.peo import (
    elimination_fill_in,
    greedy_simplicial_elimination,
    is_perfect_elimination_ordering,
    is_simplicial,
)
from repro.chordality.side_chordal import (
    distance_two_graph,
    is_side_chordal,
    is_side_chordal_and_conformal,
    is_side_conformal,
)

__all__ = [
    "distance_two_graph",
    "elimination_fill_in",
    "greedy_simplicial_elimination",
    "is_41_chordal_bipartite",
    "is_61_chordal_bipartite",
    "is_62_chordal_bipartite",
    "is_chordal",
    "is_chordal_bipartite",
    "is_mn_chordal",
    "is_perfect_elimination_ordering",
    "is_side_chordal",
    "is_side_chordal_and_conformal",
    "is_side_conformal",
    "is_simplicial",
    "lexbfs_elimination_ordering",
    "lexicographic_bfs",
    "maximum_cardinality_search",
    "mcs_elimination_ordering",
    "perfect_elimination_ordering",
]
