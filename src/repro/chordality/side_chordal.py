"""Side-based chordality: ``V_i``-chordality and ``V_i``-conformality.

Definition 5 of the paper introduces a weaker, asymmetric chordality notion
on a bipartite graph ``G = (V1, V2, A)``.  Under the convention spelled out
in ``DESIGN.md`` (the one forced by the usages in Theorems 2-4):

* ``G`` is **``V_i``-chordal** when every cycle of length >= 8 contains two
  vertices (necessarily of ``V_{3-i}``) whose distance along the cycle is at
  least 4 and that have a common neighbour in ``V_i``;
* ``G`` is **``V_i``-conformal** when every set of ``V_{3-i}``-vertices with
  pairwise distance 2 has a common neighbour in ``V_i``.

Theorem 1(v)/(vi): ``G`` is ``V_i``-chordal and ``V_i``-conformal iff the
hypergraph ``H_i(G)`` (one hyperedge per ``V_i``-vertex) is alpha-acyclic,
i.e. iff its primal graph is chordal and it is conformal.

Each notion gets a definitional implementation working directly on the
bipartite graph and an efficient one routed through the hypergraph; the
test-suite cross-validates them.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Set

from repro.chordality.chordal import is_chordal
from repro.exceptions import BipartitenessError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.cliques import maximal_cliques
from repro.graphs.cycles import cycle_distance, simple_cycles
from repro.graphs.graph import Graph, Vertex
from repro.hypergraphs.conformality import is_conformal
from repro.hypergraphs.conversions import hypergraph_of_side


def _check_side(side: int) -> None:
    if side not in (1, 2):
        raise ValueError(f"side must be 1 or 2, got {side!r}")


def distance_two_graph(graph: BipartiteGraph, side: int) -> Graph:
    """Return the graph on ``V_{3-side}`` joining vertices at distance 2.

    Two vertices of ``V_{3-side}`` are adjacent in the result exactly when
    they share a neighbour in ``V_side`` -- this is the primal graph of
    ``H_side(G)`` computed directly from the bipartite graph.
    """
    _check_side(side)
    targets = graph.side(3 - side)
    result = Graph(vertices=targets)
    for hub in graph.side(side):
        neighbors = sorted(graph.neighbors(hub), key=repr)
        for i, u in enumerate(neighbors):
            for v in neighbors[i + 1:]:
                result.add_edge(u, v)
    return result


# ----------------------------------------------------------------------
# V_i-chordality
# ----------------------------------------------------------------------
def is_side_chordal(
    graph: BipartiteGraph, side: int, method: str = "primal"
) -> bool:
    """Return ``True`` when the bipartite graph is ``V_side``-chordal.

    ``method="primal"`` (default, polynomial) checks chordality of the
    primal graph of ``H_side(G)``; ``method="cycles"`` runs the
    definitional check by enumerating the cycles of length >= 8
    (exponential, meant for small instances and cross-validation).
    """
    _check_side(side)
    if not isinstance(graph, BipartiteGraph):
        raise BipartitenessError("V_i-chordality is defined on bipartite graphs")
    if method == "primal":
        return is_chordal(distance_two_graph(graph, side))
    if method != "cycles":
        raise ValueError(f"unknown method {method!r}")
    for cycle in simple_cycles(graph, min_length=8):
        if not _cycle_has_side_shortcut(graph, cycle, side):
            return False
    return True


def _cycle_has_side_shortcut(graph: BipartiteGraph, cycle, side: int) -> bool:
    """Does some ``V_side`` vertex shortcut two far-apart cycle vertices?"""
    others = [v for v in cycle if graph.side_of(v) != side]
    for u, w in combinations(others, 2):
        if cycle_distance(cycle, u, w) < 4:
            continue
        if graph.neighbors(u) & graph.neighbors(w) & graph.side(side):
            return True
    return False


# ----------------------------------------------------------------------
# V_i-conformality
# ----------------------------------------------------------------------
def is_side_conformal(
    graph: BipartiteGraph, side: int, method: str = "hypergraph"
) -> bool:
    """Return ``True`` when the bipartite graph is ``V_side``-conformal.

    ``method="hypergraph"`` (default) tests conformality of ``H_side(G)``
    with Gilmore's criterion; ``method="cliques"`` enumerates the maximal
    sets of pairwise-distance-2 vertices of ``V_{3-side}`` and checks each
    for a common ``V_side`` neighbour (the definitional reading of
    Definition 5).
    """
    _check_side(side)
    if not isinstance(graph, BipartiteGraph):
        raise BipartitenessError("V_i-conformality is defined on bipartite graphs")
    if method == "hypergraph":
        hypergraph = hypergraph_of_side(graph, side=side)
        if hypergraph.number_of_edges() == 0:
            return True
        return is_conformal(hypergraph, method="gilmore")
    if method != "cliques":
        raise ValueError(f"unknown method {method!r}")
    squared = distance_two_graph(graph, side)
    hubs = graph.side(side)
    for clique in maximal_cliques(squared):
        if len(clique) <= 1:
            continue
        common: Optional[Set[Vertex]] = None
        for vertex in clique:
            neighbors = graph.neighbors(vertex) & hubs
            common = neighbors if common is None else (common & neighbors)
            if not common:
                return False
    return True


def is_side_chordal_and_conformal(
    graph: BipartiteGraph, side: int, method: str = "efficient"
) -> bool:
    """Conjunction of ``V_side``-chordality and ``V_side``-conformality.

    By Theorem 1(v)/(vi) this is equivalent to alpha-acyclicity of
    ``H_side(G)``; with ``method="alpha"`` the test is routed through the
    GYO reduction on that hypergraph, which is the fastest path and is the
    precondition check used by Algorithm 1.
    """
    _check_side(side)
    if method == "alpha":
        from repro.hypergraphs.acyclicity import is_alpha_acyclic

        hypergraph = hypergraph_of_side(graph, side=side)
        if hypergraph.number_of_edges() == 0:
            return True
        return is_alpha_acyclic(hypergraph, method="gyo")
    if method == "efficient":
        return is_side_chordal(graph, side, method="primal") and is_side_conformal(
            graph, side, method="hypergraph"
        )
    if method == "definitional":
        return is_side_chordal(graph, side, method="cycles") and is_side_conformal(
            graph, side, method="cliques"
        )
    raise ValueError(f"unknown method {method!r}")
