"""Maximum cardinality search (MCS) on graphs.

Tarjan and Yannakakis showed that visiting vertices in decreasing order of
"number of already-visited neighbours" produces, when the visit order is
reversed, a perfect elimination ordering whenever the graph is chordal.
MCS is the ordering engine behind :func:`repro.chordality.chordal.is_chordal`
and is the graph analogue of the hyperedge MCS used by Algorithm 1.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional

from repro.graphs.backend import is_indexed
from repro.graphs.graph import Graph, Vertex
from repro.graphs.indexed import IndexedGraph


def maximum_cardinality_search(
    graph: Graph, start: Optional[Vertex] = None
) -> List[Vertex]:
    """Return the MCS visit order of the vertices.

    Ties are broken deterministically by ``repr``.  Disconnected graphs are
    handled by restarting from an unvisited vertex with the usual rule
    (weight comparison), which simply picks an arbitrary vertex of a new
    component when all remaining weights are zero.

    On the :class:`~repro.graphs.indexed.IndexedGraph` backend the search
    runs in ``O(|A| log |V|)`` with a lazy max-heap over integer weights
    (ascending ids break ties) instead of the quadratic scan.  Both lanes
    return valid MCS orders, but the *tie-breaks* can differ when one
    vertex repr is a prefix of another (``_repr_key``'s max-rule prefers
    the longer repr, ascending ids the repr-sorted shorter one), so only
    order-insensitive facts (PEO-ness, chordality verdicts, cover sizes)
    are comparable across backends.
    """
    vertices = graph.sorted_vertices()
    if not vertices:
        return []
    if start is not None and start not in graph:
        raise ValueError(f"start vertex {start!r} is not in the graph")
    if is_indexed(graph):
        return _mcs_indexed(graph, start)
    weights: Dict[Vertex, int] = {v: 0 for v in vertices}
    visited: Dict[Vertex, bool] = {v: False for v in vertices}
    order: List[Vertex] = []
    for step in range(len(vertices)):
        if step == 0 and start is not None:
            chosen = start
        else:
            chosen = max(
                (v for v in vertices if not visited[v]),
                key=lambda v: (weights[v], _repr_key(v)),
            )
        visited[chosen] = True
        order.append(chosen)
        for neighbor in graph.neighbors(chosen):
            if not visited[neighbor]:
                weights[neighbor] += 1
    return order


def mcs_elimination_ordering(graph: Graph, start: Optional[Vertex] = None) -> List[Vertex]:
    """Return the reversed MCS order, which is a PEO iff the graph is chordal."""
    return list(reversed(maximum_cardinality_search(graph, start=start)))


def _repr_key(vertex: Vertex):
    """Tie-break key: lexicographically smaller repr wins inside ``max``."""
    text = repr(vertex)
    return tuple(-ord(ch) for ch in text)


def _mcs_indexed(graph: IndexedGraph, start: Optional[int]) -> List[int]:
    """Heap-based MCS over CSR rows (the indexed fast lane)."""
    n = graph.n
    weights = [0] * n
    visited = [False] * n
    order: List[int] = []
    # lazy heap entries (-weight, id); stale entries are skipped on pop
    heap: List = [(0, v) for v in range(n)]
    rows = graph._rows
    for step in range(n):
        if step == 0 and start is not None:
            chosen = start
        else:
            while True:
                weight, candidate = heappop(heap)
                if not visited[candidate] and -weight == weights[candidate]:
                    chosen = candidate
                    break
        visited[chosen] = True
        order.append(chosen)
        for neighbor in rows[chosen]:
            if not visited[neighbor]:
                weights[neighbor] += 1
                heappush(heap, (-weights[neighbor], neighbor))
    return order
