"""Maximum cardinality search (MCS) on graphs.

Tarjan and Yannakakis showed that visiting vertices in decreasing order of
"number of already-visited neighbours" produces, when the visit order is
reversed, a perfect elimination ordering whenever the graph is chordal.
MCS is the ordering engine behind :func:`repro.chordality.chordal.is_chordal`
and is the graph analogue of the hyperedge MCS used by Algorithm 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graphs.graph import Graph, Vertex


def maximum_cardinality_search(
    graph: Graph, start: Optional[Vertex] = None
) -> List[Vertex]:
    """Return the MCS visit order of the vertices.

    Ties are broken deterministically by ``repr``.  Disconnected graphs are
    handled by restarting from an unvisited vertex with the usual rule
    (weight comparison), which simply picks an arbitrary vertex of a new
    component when all remaining weights are zero.
    """
    vertices = graph.sorted_vertices()
    if not vertices:
        return []
    if start is not None and start not in graph:
        raise ValueError(f"start vertex {start!r} is not in the graph")
    weights: Dict[Vertex, int] = {v: 0 for v in vertices}
    visited: Dict[Vertex, bool] = {v: False for v in vertices}
    order: List[Vertex] = []
    for step in range(len(vertices)):
        if step == 0 and start is not None:
            chosen = start
        else:
            chosen = max(
                (v for v in vertices if not visited[v]),
                key=lambda v: (weights[v], _repr_key(v)),
            )
        visited[chosen] = True
        order.append(chosen)
        for neighbor in graph.neighbors(chosen):
            if not visited[neighbor]:
                weights[neighbor] += 1
    return order


def mcs_elimination_ordering(graph: Graph, start: Optional[Vertex] = None) -> List[Vertex]:
    """Return the reversed MCS order, which is a PEO iff the graph is chordal."""
    return list(reversed(maximum_cardinality_search(graph, start=start)))


def _repr_key(vertex: Vertex):
    """Tie-break key: lexicographically smaller repr wins inside ``max``."""
    text = repr(vertex)
    return tuple(-ord(ch) for ch in text)
