"""Chordal graph recognition.

A graph is *chordal* (the paper's (4,1)-chordal: every cycle with at least
four vertices has a chord) iff it admits a perfect elimination ordering.
Three recognition strategies are provided and cross-validated in the
test-suite:

* ``"mcs"``      -- maximum cardinality search + PEO check (default);
* ``"lexbfs"``   -- lexicographic BFS + PEO check;
* ``"greedy"``   -- repeated deletion of simplicial vertices (reference);
* ``"cycles"``   -- the definitional check by cycle enumeration (only for
  small graphs; exponential).
"""

from __future__ import annotations

from typing import List, Optional

from repro.chordality.lexbfs import lexbfs_elimination_ordering
from repro.chordality.mcs import mcs_elimination_ordering
from repro.chordality.peo import (
    greedy_simplicial_elimination,
    is_perfect_elimination_ordering,
)
from repro.graphs.cycles import find_cycle_with_few_chords
from repro.graphs.backend import is_indexed
from repro.graphs.graph import Graph, Vertex


def is_chordal(graph: Graph, method: str = "mcs") -> bool:
    """Return ``True`` when ``graph`` is chordal ((4,1)-chordal).

    See the module docstring for the available ``method`` values.  Both
    graph backends are accepted; the mutation-based methods ("greedy",
    "cycles") materialise a :class:`Graph` copy of an indexed input, while
    "mcs" and "lexbfs" run on the indexed fast lanes directly.
    """
    if graph.number_of_vertices() == 0:
        return True
    if is_indexed(graph) and method in ("greedy", "cycles"):
        graph = graph.to_graph()
    if method == "mcs":
        ordering = mcs_elimination_ordering(graph)
        return is_perfect_elimination_ordering(graph, ordering)
    if method == "lexbfs":
        ordering = lexbfs_elimination_ordering(graph)
        return is_perfect_elimination_ordering(graph, ordering)
    if method == "greedy":
        return greedy_simplicial_elimination(graph) is not None
    if method == "cycles":
        return find_cycle_with_few_chords(graph, min_length=4, max_chords=0) is None
    raise ValueError(f"unknown chordality method {method!r}")


def perfect_elimination_ordering(
    graph: Graph, method: str = "mcs"
) -> Optional[List[Vertex]]:
    """Return a perfect elimination ordering, or ``None`` for non-chordal graphs."""
    if graph.number_of_vertices() == 0:
        return []
    if is_indexed(graph) and method == "greedy":
        graph = graph.to_graph()
    if method == "mcs":
        ordering = mcs_elimination_ordering(graph)
    elif method == "lexbfs":
        ordering = lexbfs_elimination_ordering(graph)
    elif method == "greedy":
        greedy = greedy_simplicial_elimination(graph)
        return greedy
    else:
        raise ValueError(f"unknown chordality method {method!r}")
    if is_perfect_elimination_ordering(graph, ordering):
        return ordering
    return None
