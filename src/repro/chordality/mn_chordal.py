"""``(m, n)``-chordality of graphs (Definition 4).

A graph is ``(m, n)``-chordal when every cycle with at least ``m`` vertices
has at least ``n`` chords.  The paper only needs even ``m`` on bipartite
graphs and uses three members of the family:

* ``(4, 1)``-chordal   = chordal; for bipartite graphs this means *acyclic*;
* ``(6, 1)``-chordal   = "chordal bipartite" for bipartite graphs;
* ``(6, 2)``-chordal   = every cycle of length >= 6 has at least two chords.

Two flavours of test are provided:

* the **definitional** check :func:`is_mn_chordal`, which enumerates simple
  cycles and counts chords (exponential, used as ground truth on small and
  medium instances);
* **efficient specialised tests** for the three classes above, routed
  through Theorem 1: acyclicity for (4,1), beta-acyclicity of the
  associated hypergraph (nest-point elimination) for (6,1),
  gamma-acyclicity for (6,2).  The test-suite validates the specialised
  tests against the definitional one.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import BipartitenessError
from repro.graphs.bipartite import BipartiteGraph, is_bipartite
from repro.graphs.cycles import find_cycle_with_few_chords, is_forest
from repro.graphs.graph import Graph
from repro.hypergraphs.acyclicity import is_beta_acyclic, is_gamma_acyclic
from repro.hypergraphs.conversions import hypergraph_of_side


def is_mn_chordal(
    graph: Graph, m: int, n: int, max_cycle_length: Optional[int] = None
) -> bool:
    """Definitional ``(m, n)``-chordality by cycle enumeration.

    Parameters
    ----------
    m:
        Minimum cycle length (number of vertices) to which the requirement
        applies; must be at least 4.
    n:
        Minimum number of chords required of such cycles; at least 1.
    max_cycle_length:
        Optional cap on the explored cycle length -- only pass this when a
        structural argument guarantees longer cycles cannot be the only
        violators (the library itself never relies on a cap).

    Notes
    -----
    Cycle enumeration is exponential; this function is meant for ground
    truth on instances with up to a few dozen vertices.
    """
    if m < 4:
        raise ValueError("m must be at least 4")
    if n < 1:
        raise ValueError("n must be at least 1")
    witness = find_cycle_with_few_chords(
        graph, min_length=m, max_chords=n - 1, max_length=max_cycle_length
    )
    return witness is None


def _require_bipartite(graph: Graph) -> BipartiteGraph:
    if isinstance(graph, BipartiteGraph):
        return graph
    if not is_bipartite(graph):
        raise BipartitenessError("this chordality test requires a bipartite graph")
    return BipartiteGraph.from_graph(graph)


def is_41_chordal_bipartite(graph: Graph) -> bool:
    """Efficient (4,1)-chordality test for bipartite graphs.

    A bipartite graph contains no triangles, so a chord of a 4-cycle is
    impossible and (4,1)-chordality is equivalent to acyclicity (the paper
    notes this right after Theorem 1(i)).
    """
    _require_bipartite(graph)
    return is_forest(graph)


def is_61_chordal_bipartite(graph: Graph, method: str = "beta") -> bool:
    """(6,1)-chordality ("chordal bipartite") test.

    ``method="beta"`` routes through Theorem 1(iii): the graph is
    (6,1)-chordal iff its associated hypergraph is beta-acyclic, tested by
    nest-point elimination in polynomial time.  ``method="cycles"`` runs the
    definitional check.
    """
    bipartite = _require_bipartite(graph)
    if method == "cycles":
        return is_mn_chordal(bipartite, 6, 1)
    if method != "beta":
        raise ValueError(f"unknown method {method!r}")
    if bipartite.number_of_edges() == 0:
        return True
    hypergraph = hypergraph_of_side(bipartite, side=2)
    if hypergraph.number_of_edges() == 0:
        return True
    return is_beta_acyclic(hypergraph, method="nest")


def is_62_chordal_bipartite(graph: Graph, method: str = "gamma") -> bool:
    """(6,2)-chordality test.

    ``method="gamma"`` routes through Theorem 1(ii): the graph is
    (6,2)-chordal iff its associated hypergraph is gamma-acyclic.
    ``method="cycles"`` runs the definitional check.
    """
    bipartite = _require_bipartite(graph)
    if method == "cycles":
        return is_mn_chordal(bipartite, 6, 2)
    if method != "gamma":
        raise ValueError(f"unknown method {method!r}")
    if bipartite.number_of_edges() == 0:
        return True
    hypergraph = hypergraph_of_side(bipartite, side=2)
    if hypergraph.number_of_edges() == 0:
        return True
    return is_gamma_acyclic(hypergraph, method="pattern")


def is_chordal_bipartite(graph: Graph, method: str = "beta") -> bool:
    """Alias of :func:`is_61_chordal_bipartite` using the standard name."""
    return is_61_chordal_bipartite(graph, method=method)
