"""Random generators for the graph / schema classes used in the experiments.

Every benchmark harness needs workloads drawn from a specific class
(Berge-, gamma-, beta-, alpha-acyclic schemas; (6,2)-chordal graphs; X3C
reduction instances).  The generators below construct members of each class
*by construction* (not by rejection sampling), so arbitrarily large
instances can be produced; the test-suite nevertheless verifies class
membership on samples, which doubles as an extra cross-check of the
recognition algorithms.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph, Vertex
from repro.hypergraphs.hypergraph import Hypergraph
from repro.semantic.relational import RelationalSchema
from repro.utils.rng import RandomLike, ensure_rng


# ----------------------------------------------------------------------
# hypergraph / schema generators, one per acyclicity degree
# ----------------------------------------------------------------------
def random_berge_acyclic_schema(
    relations: int, max_arity: int = 4, rng: RandomLike = None
) -> RelationalSchema:
    """Random Berge-acyclic schema: relations overlap in at most one attribute.

    The relations are attached in a tree pattern, each sharing exactly one
    attribute with a previously generated relation and otherwise using
    fresh attributes; the incidence graph is then a tree (Berge-acyclic).
    """
    generator = ensure_rng(rng)
    schemes = {}
    counter = 0

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"a{counter}"

    first_arity = generator.randint(2, max_arity)
    schemes["R0"] = [fresh() for _ in range(first_arity)]
    for index in range(1, relations):
        parent = f"R{generator.randrange(index)}"
        shared = generator.choice(sorted(schemes[parent]))
        arity = generator.randint(2, max_arity)
        schemes[f"R{index}"] = [shared] + [fresh() for _ in range(arity - 1)]
    return RelationalSchema(schemes)


def random_beta_acyclic_schema(
    relations: int, attributes: int = 12, max_arity: int = 5, rng: RandomLike = None
) -> RelationalSchema:
    """Random beta-acyclic schema built from attribute intervals.

    Attributes are linearly ordered and every relation scheme is an interval
    of that order; interval hypergraphs are beta-acyclic (every right-most
    attribute of the order is a nest point) but generally not gamma-acyclic,
    which makes them good separators between the two classes.
    """
    generator = ensure_rng(rng)
    names = [f"a{i}" for i in range(attributes)]
    schemes = {}
    for index in range(relations):
        width = generator.randint(2, min(max_arity, attributes))
        start = generator.randrange(attributes - width + 1)
        schemes[f"R{index}"] = names[start: start + width]
    return RelationalSchema(schemes)


def random_gamma_acyclic_schema(
    blocks: int, max_block_relations: int = 3, max_arity: int = 4, rng: RandomLike = None
) -> RelationalSchema:
    """Random gamma-acyclic schema: blocks of nested relations glued in a tree.

    Each block consists of one "base" relation plus copies of it restricted
    to prefixes (nested chains create no gamma pattern); blocks are glued to
    the existing schema through a single shared attribute.  The resulting
    hypergraph is gamma-acyclic, and typically not Berge-acyclic because
    nested relations share several attributes.
    """
    generator = ensure_rng(rng)
    schemes = {}
    counter = 0
    relation_counter = 0

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"a{counter}"

    anchor: Optional[str] = None
    for _block in range(blocks):
        arity = generator.randint(2, max_arity)
        base = [fresh() for _ in range(arity)]
        if anchor is not None:
            base[0] = anchor
        name = f"R{relation_counter}"
        relation_counter += 1
        schemes[name] = list(base)
        for _extra in range(generator.randint(0, max_block_relations - 1)):
            prefix_length = generator.randint(2, arity) if arity >= 2 else arity
            schemes[f"R{relation_counter}"] = base[:prefix_length]
            relation_counter += 1
        anchor = generator.choice(sorted(base))
    return RelationalSchema(schemes)


def random_alpha_acyclic_schema(
    relations: int, max_arity: int = 5, max_shared: int = 3, rng: RandomLike = None
) -> RelationalSchema:
    """Random alpha-acyclic schema built along a random join tree.

    Each new relation picks a parent, inherits a random subset of the
    parent's attributes (possibly several of them -- which is what pushes
    the schema out of the beta/gamma classes) and adds fresh attributes.
    The construction satisfies the running intersection property, hence is
    alpha-acyclic.
    """
    generator = ensure_rng(rng)
    schemes = {}
    counter = 0

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"a{counter}"

    first_arity = generator.randint(2, max_arity)
    schemes["R0"] = [fresh() for _ in range(first_arity)]
    for index in range(1, relations):
        parent_name = f"R{generator.randrange(index)}"
        parent = sorted(schemes[parent_name])
        shared_count = generator.randint(1, min(max_shared, len(parent)))
        shared = generator.sample(parent, shared_count)
        arity = max(shared_count + 1, generator.randint(2, max_arity))
        fresh_count = arity - shared_count
        schemes[f"R{index}"] = shared + [fresh() for _ in range(fresh_count)]
    return RelationalSchema(schemes)


def random_cyclic_schema(
    relations: int, attributes: int = 10, max_arity: int = 4, rng: RandomLike = None
) -> RelationalSchema:
    """Random unrestricted schema (usually cyclic for moderate densities)."""
    generator = ensure_rng(rng)
    names = [f"a{i}" for i in range(attributes)]
    schemes = {}
    for index in range(relations):
        arity = generator.randint(2, min(max_arity, attributes))
        schemes[f"R{index}"] = generator.sample(names, arity)
    return RelationalSchema(schemes)


# ----------------------------------------------------------------------
# bipartite graph generators per chordality class
# ----------------------------------------------------------------------
def random_62_chordal_graph(
    blocks: int,
    max_left: int = 3,
    max_right: int = 3,
    rng: RandomLike = None,
) -> BipartiteGraph:
    """Random (6,2)-chordal bipartite graph: a tree of complete bipartite blocks.

    Complete bipartite graphs are (6,2)-chordal (every long cycle has all
    its chords), and gluing blocks at single cut vertices creates no new
    cycles, so the whole construction stays (6,2)-chordal while being far
    from complete globally.
    """
    generator = ensure_rng(rng)
    graph = BipartiteGraph()
    next_id = 0

    def fresh(side: int) -> Tuple[str, int]:
        nonlocal next_id
        next_id += 1
        vertex = ("l" if side == 1 else "r", next_id)
        graph.add_to_side(vertex, side)
        return vertex

    attach_points: List[Tuple[Tuple[str, int], int]] = []
    for block in range(blocks):
        left_size = generator.randint(1, max_left)
        right_size = generator.randint(1, max_right)
        if block == 0 or not attach_points:
            left = [fresh(1) for _ in range(left_size)]
            right = [fresh(2) for _ in range(right_size)]
        else:
            anchor, anchor_side = attach_points[generator.randrange(len(attach_points))]
            if anchor_side == 1:
                left = [anchor] + [fresh(1) for _ in range(left_size - 1)]
                right = [fresh(2) for _ in range(right_size)]
            else:
                left = [fresh(1) for _ in range(left_size)]
                right = [anchor] + [fresh(2) for _ in range(right_size - 1)]
        for u in left:
            for v in right:
                graph.add_edge(u, v)
        attach_points.extend((v, 1) for v in left)
        attach_points.extend((v, 2) for v in right)
    return graph


def random_alpha_schema_graph(
    relations: int, max_arity: int = 5, max_shared: int = 3, rng: RandomLike = None
) -> BipartiteGraph:
    """Schema graph (attributes on ``V_1``, relations on ``V_2``) of a random alpha-acyclic schema.

    By Theorem 1 this graph is ``V_2``-chordal and ``V_2``-conformal: the
    workload for Algorithm 1.
    """
    schema = random_alpha_acyclic_schema(
        relations, max_arity=max_arity, max_shared=max_shared, rng=rng
    )
    return schema.schema_graph()


def random_beta_schema_graph(
    relations: int, attributes: int = 12, max_arity: int = 5, rng: RandomLike = None
) -> BipartiteGraph:
    """Schema graph of a random beta-acyclic (interval) schema: (6,1)-chordal."""
    schema = random_beta_acyclic_schema(
        relations, attributes=attributes, max_arity=max_arity, rng=rng
    )
    return schema.schema_graph()


def random_gamma_schema_graph(
    blocks: int, max_block_relations: int = 3, max_arity: int = 4, rng: RandomLike = None
) -> BipartiteGraph:
    """Schema graph of a random gamma-acyclic schema: (6,2)-chordal."""
    schema = random_gamma_acyclic_schema(
        blocks, max_block_relations=max_block_relations, max_arity=max_arity, rng=rng
    )
    return schema.schema_graph()


def random_terminals(
    graph: Graph, count: int, rng: RandomLike = None, within_component: bool = True
) -> List[Vertex]:
    """Sample a feasible terminal set of the requested size.

    When ``within_component`` is set (default) the terminals are sampled
    from the largest connected component so that the resulting Steiner
    instance is feasible.
    """
    from repro.graphs.traversal import connected_components

    generator = ensure_rng(rng)
    if within_component:
        components = connected_components(graph)
        pool = sorted(max(components, key=len), key=repr)
    else:
        pool = graph.sorted_vertices()
    count = min(count, len(pool))
    return generator.sample(pool, count)


def random_hypergraph(
    nodes: int, edges: int, max_arity: int = 4, rng: RandomLike = None
) -> Hypergraph:
    """Random unrestricted hypergraph (for property-based cross-validation)."""
    generator = ensure_rng(rng)
    node_names = [f"n{i}" for i in range(nodes)]
    hypergraph = Hypergraph(nodes=node_names)
    for index in range(edges):
        arity = generator.randint(1, min(max_arity, nodes))
        hypergraph.add_edge(generator.sample(node_names, arity), label=f"e{index}")
    return hypergraph
