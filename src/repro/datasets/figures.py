"""Named instances reconstructing the paper's figures.

The source text of the paper does not contain machine-readable figures, so
exact pixel-level reconstruction is impossible; instead every function in
this module returns an instance that provably has the properties the paper
ascribes to the corresponding figure (and, where the surrounding text pins
the structure down -- Fig. 6 and the Section-3 witness set of Fig. 3(c) --
the reconstruction matches the text exactly).  The test module
``tests/test_figures.py`` asserts every such property.

Overview
--------
* Fig. 1  -- entity-relationship scheme (EMPLOYEE / DEPARTMENT / WORKS) and
  its relational translation; the EMPLOYEE-DATE query has the "birth date"
  reading as its minimal connection.
* Fig. 2  -- a bipartite graph whose associated hypergraph is alpha-acyclic
  on one side only (alpha-acyclicity is not self-dual).
* Fig. 3  -- three chordal bipartite graphs: (a) (4,1)-chordal,
  (b) (6,2)-chordal, (c) (6,1)- but not (6,2)-chordal; (c) carries the
  Section-3 witness showing Algorithm 1 does not solve full Steiner.
* Fig. 4  -- the hypergraphs associated with Fig. 3 (Berge-, gamma-,
  beta-acyclic respectively).
* Fig. 5  -- a graph that is ``V_1``- and ``V_2``-alpha but not
  (6,1)-chordal (Corollary 2's containment is proper).
* Fig. 6  -- the X3C reduction instance of Theorem 2.
* Fig. 8  -- nonredundant vs. minimum covers.
* Fig. 10 -- the 6-cycle with one chord used in Lemma 4's proof.
* Fig. 11 -- a (6,1)-chordal graph with no good ordering (Theorem 6),
  together with the four-case decomposition used to verify it exhaustively.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.core.good_ordering import OrderingCase
from repro.graphs.bipartite import BipartiteGraph
from repro.hypergraphs.conversions import hypergraph_of_side
from repro.hypergraphs.hypergraph import Hypergraph
from repro.semantic.er_model import ERSchema
from repro.semantic.relational import RelationalSchema
from repro.steiner.reductions import SteinerReduction, X3CInstance, x3c_to_steiner


# ----------------------------------------------------------------------
# Figure 1: the entity-relationship scheme of the introduction
# ----------------------------------------------------------------------
def figure1_er_schema() -> ERSchema:
    """The EMPLOYEE / DEPARTMENT / WORKS entity-relationship scheme.

    The query {EMPLOYEE, DATE} has two readings: the employee's birth date
    (no auxiliary object) and the date from which the employee works in a
    department (through the WORKS relationship).
    """
    return ERSchema(
        entities={
            "EMPLOYEE": ["E#", "ENAME", "DATE"],
            "DEPARTMENT": ["D#", "DNAME"],
        },
        relationships={"WORKS": ["EMPLOYEE", "DEPARTMENT"]},
        relationship_attributes={"WORKS": ["DATE"]},
    )


def figure1_relational_schema() -> RelationalSchema:
    """The relational translation used by the query-interpretation example."""
    return RelationalSchema(
        {
            "EMPLOYEE": ["E#", "ENAME", "DATE"],
            "DEPARTMENT": ["D#", "DNAME"],
            "WORKS": ["E#", "D#", "DATE"],
        }
    )


def figure1_query() -> List[str]:
    """The query of the introduction: the pair of objects EMPLOYEE and DATE."""
    return ["EMPLOYEE", "DATE"]


# ----------------------------------------------------------------------
# Figure 2: alpha-acyclicity is not self-dual
# ----------------------------------------------------------------------
def figure2_graph() -> BipartiteGraph:
    """A bipartite graph that is ``V_2``-alpha but not ``V_1``-alpha.

    ``H_2(G)`` has edges {a,b}, {b,c}, {a,c} and {a,b,c}: alpha-acyclic
    (its primal graph is a triangle and the big edge covers the clique),
    while its dual ``H_1(G)`` is not conformal, hence not alpha-acyclic --
    the phenomenon Fig. 2 illustrates.
    """
    graph = BipartiteGraph(left=["a", "b", "c"], right=["e1", "e2", "e3", "e4"])
    for label, members in (
        ("e1", ["a", "b"]),
        ("e2", ["b", "c"]),
        ("e3", ["a", "c"]),
        ("e4", ["a", "b", "c"]),
    ):
        for node in members:
            graph.add_edge(node, label)
    return graph


def figure2_hypergraphs() -> Tuple[Hypergraph, Hypergraph]:
    """Return ``(H_1, H_2)`` of the Fig. 2 graph."""
    graph = figure2_graph()
    return hypergraph_of_side(graph, 1), hypergraph_of_side(graph, 2)


# ----------------------------------------------------------------------
# Figure 3: the three chordal bipartite graphs
# ----------------------------------------------------------------------
def _figure3_base() -> BipartiteGraph:
    """The shared skeleton: 6-cycle B-1-C-3-E-2-B with pendants A, F, D."""
    graph = BipartiteGraph(
        left=["A", "B", "C", "D", "E", "F"], right=[1, 2, 3]
    )
    for u, v in (
        ("B", 1),
        ("C", 1),
        ("C", 3),
        ("E", 3),
        ("E", 2),
        ("B", 2),
        ("A", 1),
        ("F", 3),
        ("D", 2),
    ):
        graph.add_edge(u, v)
    return graph


def figure3a_graph() -> BipartiteGraph:
    """A (4,1)-chordal (i.e. acyclic) bipartite graph -- Fig. 3(a)."""
    graph = _figure3_base()
    graph.remove_edge("B", 2)
    return graph


def figure3b_graph() -> BipartiteGraph:
    """A (6,2)-chordal bipartite graph -- Fig. 3(b)."""
    graph = _figure3_base()
    graph.add_edge("C", 2)
    graph.add_edge("B", 3)
    return graph


def figure3c_graph() -> BipartiteGraph:
    """A (6,1)- but not (6,2)-chordal bipartite graph -- Fig. 3(c).

    The 6-cycle B-1-C-3-E-2-B has the single chord C-2.  With terminals
    ``{A, B, E}`` the vertex set ``{A, B, C, E, 1, 3}`` induces a tree with
    the minimum number of ``V_2`` vertices that is *not* a Steiner tree
    (the Section-3 remark after Corollary 4).
    """
    graph = _figure3_base()
    graph.add_edge("C", 2)
    return graph


def figure3c_witness() -> Tuple[BipartiteGraph, FrozenSet, FrozenSet]:
    """Return ``(graph, terminals, pseudo_optimal_cover)`` for the Section-3 remark."""
    return figure3c_graph(), frozenset({"A", "B", "E"}), frozenset({"A", "B", "C", "E", 1, 3})


# ----------------------------------------------------------------------
# Figure 4: the associated hypergraphs
# ----------------------------------------------------------------------
def figure4a_hypergraph() -> Hypergraph:
    """Berge-acyclic hypergraph associated with Fig. 3(a)."""
    return hypergraph_of_side(figure3a_graph(), 2)


def figure4b_hypergraph() -> Hypergraph:
    """gamma-acyclic hypergraph associated with Fig. 3(b)."""
    return hypergraph_of_side(figure3b_graph(), 2)


def figure4c_hypergraph() -> Hypergraph:
    """beta-acyclic hypergraph associated with Fig. 3(c)."""
    return hypergraph_of_side(figure3c_graph(), 2)


# ----------------------------------------------------------------------
# Figure 5: proper containment (Corollary 2)
# ----------------------------------------------------------------------
def figure5_graph() -> BipartiteGraph:
    """A graph that is ``V_1``- and ``V_2``-alpha but not (6,1)-chordal.

    ``H_2(G)`` has edges {a,b,z}, {b,c,z}, {a,c,z}, {a,b,c,z}: both it and
    its dual are alpha-acyclic (the universal node / universal edge cover
    every clique), yet the triple of pairwise-overlapping small edges forms
    a beta cycle, so the graph is not (6,1)-chordal.
    """
    graph = BipartiteGraph(left=["a", "b", "c", "z"], right=["e1", "e2", "e3", "e4"])
    for label, members in (
        ("e1", ["a", "b", "z"]),
        ("e2", ["b", "c", "z"]),
        ("e3", ["a", "c", "z"]),
        ("e4", ["a", "b", "c", "z"]),
    ):
        for node in members:
            graph.add_edge(node, label)
    return graph


# ----------------------------------------------------------------------
# Figure 6: the X3C reduction example
# ----------------------------------------------------------------------
def figure6_x3c_instance() -> X3CInstance:
    """The X3C instance of Fig. 6: X = {x1..x6}, C = {c1, c2, c3}."""
    return X3CInstance(
        elements=["x1", "x2", "x3", "x4", "x5", "x6"],
        triples=[
            {"x1", "x2", "x3"},
            {"x3", "x4", "x5"},
            {"x4", "x5", "x6"},
        ],
    )


def figure6_reduction() -> SteinerReduction:
    """The bipartite Steiner instance obtained from the Fig. 6 X3C instance."""
    return x3c_to_steiner(figure6_x3c_instance())


# ----------------------------------------------------------------------
# Figure 8: nonredundant vs. minimum covers
# ----------------------------------------------------------------------
def figure8_example() -> Tuple[BipartiteGraph, FrozenSet, Dict[str, FrozenSet]]:
    """A graph, a terminal set and named covers illustrating Definition 10.

    Returns ``(graph, terminals, covers)`` where ``covers`` maps
    ``"nonredundant"`` to a nonredundant cover that is not minimum and
    ``"minimum"`` to a minimum cover.
    """
    graph = BipartiteGraph(left=["A", "B", "C", "D", "E"], right=[1, 2, 3, 4])
    for u, v in (
        ("A", 1),
        ("B", 1),
        ("B", 2),
        ("C", 2),
        ("A", 3),
        ("C", 3),
        ("C", 4),
        ("D", 4),
        ("E", 2),
    ):
        graph.add_edge(u, v)
    terminals = frozenset({"A", "C", "D"})
    covers = {
        "minimum": frozenset({"A", 3, "C", 4, "D"}),
        "nonredundant": frozenset({"A", 1, "B", 2, "C", 4, "D"}),
    }
    return graph, terminals, covers


# ----------------------------------------------------------------------
# Figure 10: the 6-cycle with one chord (Lemma 4)
# ----------------------------------------------------------------------
def figure10_graph() -> BipartiteGraph:
    """A 6-cycle with exactly one chord.

    The pair of vertices opposite the chord is connected by a nonredundant
    path of length 2 and by a longer nonredundant path, which is exactly
    how Lemma 4 characterises the failure of (6,2)-chordality.
    """
    graph = BipartiteGraph(left=["u", "v", "w"], right=[1, 2, 3])
    for a, b in (("u", 1), ("v", 1), ("v", 2), ("w", 2), ("w", 3), ("u", 3), ("v", 3)):
        graph.add_edge(a, b)
    return graph


# ----------------------------------------------------------------------
# Figure 11: a (6,1)-chordal graph with no good ordering (Theorem 6)
# ----------------------------------------------------------------------
def figure11_graph() -> BipartiteGraph:
    """The Theorem 6 counterexample graph.

    Twelve vertices: hubs ``A, B`` and ``1, 2`` forming a 4-cycle, four
    "spoke" vertices ``3, 4, 5, 6`` (3, 4 attached to A; 5, 6 attached to
    B), and four pendant-style vertices ``C, D, E, F`` each adjacent to its
    spoke and to the hub (1 or 2) on the other side.  The graph is
    (6,1)-chordal but not (6,2)-chordal, and no ordering of its vertices is
    good (verified exhaustively through the four cases below).
    """
    graph = BipartiteGraph(
        left=["A", "B", "C", "D", "E", "F"], right=[1, 2, 3, 4, 5, 6]
    )
    edges = [
        ("A", 1), ("A", 2), ("A", 3), ("A", 4),
        ("B", 1), ("B", 2), ("B", 5), ("B", 6),
        ("C", 1), ("C", 3),
        ("D", 2), ("D", 4),
        ("E", 1), ("E", 5),
        ("F", 2), ("F", 6),
    ]
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


def figure11_cases() -> List[OrderingCase]:
    """The four-case decomposition of the Theorem 6 proof.

    Every ordering of the vertices places one of the hubs ``A, B, 1, 2``
    first among the four; the corresponding witness terminal set then
    defeats the ordering.
    """
    hubs = frozenset({"A", "B", 1, 2})
    return [
        OrderingCase(pivot="A", hubs=hubs, witness=frozenset({3, "C", 4, "D"})),
        OrderingCase(pivot="B", hubs=hubs, witness=frozenset({5, "E", 6, "F"})),
        OrderingCase(pivot=1, hubs=hubs, witness=frozenset({3, "C", 5, "E"})),
        OrderingCase(pivot=2, hubs=hubs, witness=frozenset({4, "D", 6, "F"})),
    ]


def all_figures() -> Dict[str, object]:
    """Return every figure instance keyed by a short name (for reports)."""
    return {
        "fig1_er": figure1_er_schema(),
        "fig1_relational": figure1_relational_schema(),
        "fig2": figure2_graph(),
        "fig3a": figure3a_graph(),
        "fig3b": figure3b_graph(),
        "fig3c": figure3c_graph(),
        "fig4a": figure4a_hypergraph(),
        "fig4b": figure4b_hypergraph(),
        "fig4c": figure4c_hypergraph(),
        "fig5": figure5_graph(),
        "fig6": figure6_reduction(),
        "fig8": figure8_example(),
        "fig10": figure10_graph(),
        "fig11": figure11_graph(),
    }
