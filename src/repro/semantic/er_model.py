"""Entity-relationship schemas and their graph representations.

Figure 1 of the paper shows an entity-relationship scheme and "the
associated 3-partite graph": attributes, entities and relationships form
three conceptual levels, each level defined only in terms of the one below
it.  The paper's results apply whenever the schema graph is bipartite --
which is automatic when consecutive levels alternate (attributes vs.
entities, entities+attributes vs. relationships), and more generally
whenever the concept graph is 2-colourable.

:class:`ERSchema` models the three levels explicitly and offers:

* :meth:`ERSchema.concept_graph` -- the full k-partite concept graph;
* :meth:`ERSchema.bipartite_graph` -- the same graph with the natural
  2-colouring (aggregations -- entities and relationships -- on ``V_2``,
  aggregated objects -- attributes and entities-as-members -- on ``V_1``),
  raising if the schema violates bipartiteness;
* :meth:`ERSchema.relational_schema` -- the standard translation (one
  relation per entity and per relationship).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set

from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph, is_bipartite, two_coloring
from repro.graphs.graph import Graph
from repro.semantic.relational import RelationalSchema


class ERSchema:
    """An entity-relationship schema with attributes, entities, relationships.

    Parameters
    ----------
    entities:
        Mapping from entity name to its attribute names.
    relationships:
        Mapping from relationship name to the entities it connects; a
        relationship may also have its own attributes via
        ``relationship_attributes``.
    relationship_attributes:
        Optional mapping from relationship name to extra attribute names.

    Examples
    --------
    >>> er = ERSchema(
    ...     entities={"EMPLOYEE": ["NAME", "DATE"]},
    ...     relationships={},
    ... )
    >>> "EMPLOYEE" in er.entity_names()
    True
    """

    def __init__(
        self,
        entities: Mapping[str, Iterable[str]],
        relationships: Mapping[str, Iterable[str]],
        relationship_attributes: Optional[Mapping[str, Iterable[str]]] = None,
    ) -> None:
        self._entities: Dict[str, FrozenSet[str]] = {
            name: frozenset(attributes) for name, attributes in entities.items()
        }
        self._relationships: Dict[str, FrozenSet[str]] = {
            name: frozenset(members) for name, members in relationships.items()
        }
        extra = relationship_attributes or {}
        self._relationship_attributes: Dict[str, FrozenSet[str]] = {
            name: frozenset(extra.get(name, ())) for name in self._relationships
        }
        self._validate()

    def _validate(self) -> None:
        overlap = set(self._entities) & set(self._relationships)
        if overlap:
            raise ValidationError(
                f"names {sorted(overlap)!r} are used both as entities and relationships"
            )
        for name, members in self._relationships.items():
            unknown = [m for m in members if m not in self._entities]
            if unknown:
                raise ValidationError(
                    f"relationship {name!r} references unknown entities {unknown!r}"
                )
            if not members:
                raise ValidationError(f"relationship {name!r} connects no entities")

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def entity_names(self) -> List[str]:
        """Return the entity names in deterministic order."""
        return sorted(self._entities)

    def relationship_names(self) -> List[str]:
        """Return the relationship names in deterministic order."""
        return sorted(self._relationships)

    def attribute_names(self) -> List[str]:
        """Return every attribute name used by entities or relationships."""
        result: Set[str] = set()
        for attributes in self._entities.values():
            result |= attributes
        for attributes in self._relationship_attributes.values():
            result |= attributes
        return sorted(result)

    def entity_attributes(self, entity: str) -> FrozenSet[str]:
        """Return the attributes of one entity."""
        if entity not in self._entities:
            raise ValidationError(f"unknown entity {entity!r}")
        return self._entities[entity]

    def relationship_members(self, relationship: str) -> FrozenSet[str]:
        """Return the entities connected by one relationship."""
        if relationship not in self._relationships:
            raise ValidationError(f"unknown relationship {relationship!r}")
        return self._relationships[relationship]

    def relationship_attrs(self, relationship: str) -> FrozenSet[str]:
        """Return the own attributes of one relationship."""
        if relationship not in self._relationships:
            raise ValidationError(f"unknown relationship {relationship!r}")
        return self._relationship_attributes[relationship]

    def object_names(self) -> List[str]:
        """Return every object name (attribute, entity or relationship)."""
        return sorted(
            set(self.attribute_names())
            | set(self.entity_names())
            | set(self.relationship_names())
        )

    # ------------------------------------------------------------------
    # graph views
    # ------------------------------------------------------------------
    def concept_graph(self) -> Graph:
        """Return the k-partite concept graph of Fig. 1.

        Vertices are attributes, entities and relationships; edges join an
        aggregation to each object it aggregates (entity-attribute,
        relationship-entity, relationship-attribute).
        """
        graph = Graph(vertices=self.object_names())
        for entity, attributes in self._entities.items():
            for attribute in attributes:
                graph.add_edge(entity, attribute)
        for relationship, members in self._relationships.items():
            for entity in members:
                graph.add_edge(relationship, entity)
            for attribute in self._relationship_attributes[relationship]:
                graph.add_edge(relationship, attribute)
        return graph

    def is_bipartite(self) -> bool:
        """Return ``True`` when the concept graph is 2-colourable."""
        return is_bipartite(self.concept_graph())

    def bipartite_graph(self) -> BipartiteGraph:
        """Return the concept graph as a bipartite graph.

        The natural 2-colouring puts entities and relationship attributes
        together with... in general the levels do not induce a canonical
        bipartition, so a 2-colouring of the concept graph is computed (the
        paper's requirement is exactly that the graph "can be recognised to
        be bipartite despite the number of conceptual levels").  The side
        containing the lexicographically smallest attribute is labelled
        ``V_1``.

        Raises
        ------
        BipartitenessError
            If the concept graph contains an odd cycle.
        """
        graph = self.concept_graph()
        left, right = two_coloring(graph)
        attributes = set(self.attribute_names())
        if attributes and min(attributes) in right:
            left, right = right, left
        return BipartiteGraph.from_parts(left, right, graph.edges())

    # ------------------------------------------------------------------
    # translation to the relational model
    # ------------------------------------------------------------------
    def relational_schema(self) -> RelationalSchema:
        """Return the standard relational translation.

        Every entity becomes a relation over its attributes; every
        relationship becomes a relation over the key attributes of the
        entities it connects (here: all their attributes, as the paper's
        abstract setting has no key designation) plus its own attributes.
        """
        schemes: Dict[str, Set[str]] = {}
        for entity, attributes in self._entities.items():
            schemes[entity] = set(attributes)
        for relationship, members in self._relationships.items():
            attributes: Set[str] = set(self._relationship_attributes[relationship])
            for entity in members:
                attributes |= self._entities[entity]
            schemes[relationship] = attributes
        return RelationalSchema(schemes)
