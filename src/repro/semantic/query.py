"""Query interpretation over conceptual schemas (the paper's Section 1 scenario).

A *logically independent* query is a set of object names -- attributes,
entities, relationships or relation names -- with no indication of how they
are connected.  The interpreter:

1. maps the object names onto vertices of the schema graph,
2. finds the minimal connection (Steiner tree) among them, which is "the
   interpretation requiring the fewest auxiliary concepts",
3. optionally enumerates further interpretations in order of increasing
   size (the interactive disambiguation loop of the introduction),
4. for relational schemas, translates the chosen interpretation into a join
   plan over the relations it touches and can execute it against a
   database instance.

Since 1.2.0 every interpretation is backed by a
:class:`~repro.api.result.ConnectionResult`: the
:attr:`Interpretation.result` field carries the optimality guarantee and
the provenance record (solver, instance class, cache hit, wall time) of
the connection that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Union

from repro.api.result import ConnectionResult, Guarantee, Provenance
from repro.api.service import ConnectionService
from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.semantic.er_model import ERSchema
from repro.semantic.instance import Database, Relation
from repro.semantic.joins import answer_query_over_connection
from repro.semantic.relational import RelationalSchema
from repro.steiner.problem import SteinerSolution


@dataclass
class Interpretation:
    """One interpretation of a query: a connection over the schema graph."""

    solution: SteinerSolution
    query_objects: frozenset
    rank: int
    #: The full service answer backing this interpretation (guarantee +
    #: provenance); always set by :class:`QueryInterpreter` since 1.2.0.
    result: Optional[ConnectionResult] = None

    @classmethod
    def from_result(
        cls, result: ConnectionResult, query_objects: frozenset, rank: int
    ) -> "Interpretation":
        """Wrap a :class:`~repro.api.result.ConnectionResult`."""
        return cls(
            solution=result.solution,
            query_objects=query_objects,
            rank=rank,
            result=result,
        )

    @property
    def objects(self) -> Set:
        """All objects (vertices) used by this interpretation."""
        return set(self.solution.tree.vertices())

    @property
    def auxiliary_objects(self) -> Set:
        """The auxiliary objects the user did not mention."""
        return self.objects - set(self.query_objects)

    @property
    def guarantee(self) -> Optional[Guarantee]:
        """The optimality guarantee of the backing result (if available)."""
        return self.result.guarantee if self.result is not None else None

    @property
    def provenance(self) -> Optional[Provenance]:
        """The provenance record of the backing result (if available)."""
        return self.result.provenance if self.result is not None else None

    def describe(self) -> str:
        """Return a one-line human-readable description."""
        auxiliary = ", ".join(sorted(map(str, self.auxiliary_objects))) or "(none)"
        return (
            f"interpretation #{self.rank}: {len(self.objects)} objects, "
            f"auxiliary = {auxiliary}"
        )


class QueryInterpreter:
    """Interpret object-name queries over a schema.

    Parameters
    ----------
    schema:
        Either a :class:`RelationalSchema`, an :class:`ERSchema`, or a
        bare :class:`BipartiteGraph` (when the caller already has the
        schema graph).
    service:
        Advanced: an existing :class:`~repro.api.service.ConnectionService`
        to share (its engine and schema cache are reused).
    """

    def __init__(
        self,
        schema: Union[RelationalSchema, ERSchema, BipartiteGraph],
        service: Optional[ConnectionService] = None,
    ) -> None:
        self._relational: Optional[RelationalSchema] = None
        if isinstance(schema, RelationalSchema):
            self._relational = schema
            self._graph = schema.schema_graph()
        elif isinstance(schema, ERSchema):
            self._graph = schema.bipartite_graph()
            self._relational = schema.relational_schema()
        elif isinstance(schema, BipartiteGraph):
            self._graph = schema
        else:
            raise ValidationError(
                "schema must be a RelationalSchema, an ERSchema or a BipartiteGraph"
            )
        if service is None:
            service = ConnectionService(schema=self._graph)
        self._service = service
        self._finder = None  # back-compat wrapper, built on demand

    # ------------------------------------------------------------------
    # schema access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> BipartiteGraph:
        """The schema graph queries are interpreted on."""
        return self._graph

    @property
    def service(self) -> ConnectionService:
        """The :class:`~repro.api.service.ConnectionService` answering queries."""
        return self._service

    @property
    def finder(self):
        """Back-compat :class:`~repro.core.connection.MinimalConnectionFinder`.

        .. deprecated:: 1.2.0
            Use :attr:`service` instead; the finder is a thin wrapper that
            shares this interpreter's service.
        """
        if self._finder is None:
            from repro.core.connection import MinimalConnectionFinder

            self._finder = MinimalConnectionFinder(self._graph, service=self._service)
        return self._finder

    def known_objects(self) -> Set:
        """Return the set of valid query object names."""
        return self._graph.vertices()

    def _resolve(self, query: Iterable) -> frozenset:
        objects = frozenset(query)
        unknown = [o for o in objects if o not in self._graph]
        if unknown:
            raise ValidationError(
                f"unknown objects in query: {sorted(map(repr, unknown))}"
            )
        if not objects:
            raise ValidationError("the query must mention at least one object")
        return objects

    # ------------------------------------------------------------------
    # interpretation
    # ------------------------------------------------------------------
    def minimal_interpretation(self, query: Iterable) -> Interpretation:
        """Return the minimal-connection interpretation of the query."""
        objects = self._resolve(query)
        result = self._service.connect(objects, schema=self._graph)
        return Interpretation.from_result(result, query_objects=objects, rank=1)

    def interpretations(self, query: Iterable, limit: int = 3) -> List[Interpretation]:
        """Return up to ``limit`` interpretations ordered by increasing size.

        The first entry is a minimal connection; subsequent entries use
        more auxiliary objects and correspond to the alternatives an
        interactive interface would progressively disclose.  For a pull-
        based interface use ``service.enumerate(...)`` directly -- the
        stream is resumable and budget-aware.
        """
        objects = self._resolve(query)
        stream = self._service.enumerate(objects, schema=self._graph, budget=limit)
        return [
            Interpretation.from_result(result, query_objects=objects, rank=result.rank)
            for result in stream
        ]

    def fewest_relations_interpretation(
        self, query: Iterable, relation_side: int = 2
    ) -> Interpretation:
        """Return the interpretation minimising the number of relations used.

        This is the pseudo-Steiner variant (Definition 9): on alpha-acyclic
        schemas it is computed by Algorithm 1 in polynomial time even when
        the full minimal-connection problem is NP-hard (Theorem 2).
        """
        objects = self._resolve(query)
        result = self._service.connect(
            objects, objective="side", side=relation_side, schema=self._graph
        )
        return Interpretation.from_result(result, query_objects=objects, rank=1)

    # ------------------------------------------------------------------
    # execution against a database instance
    # ------------------------------------------------------------------
    def relations_of(self, interpretation: Interpretation, relation_side: int = 2) -> List[str]:
        """Return the relation names used by an interpretation."""
        return sorted(
            (
                v
                for v in interpretation.objects
                if self._graph.side_of(v) == relation_side
            ),
            key=repr,
        )

    def answer(
        self,
        query: Iterable,
        database: Database,
        interpretation: Optional[Interpretation] = None,
        use_semijoins: bool = True,
    ) -> Relation:
        """Answer an attribute query against a database instance.

        The interpretation defaults to the minimal one; the relations it
        uses are joined (with a semijoin reducer when possible) and the
        result is projected onto the attributes mentioned in the query.
        """
        if self._relational is None:
            raise ValidationError(
                "answering queries requires a RelationalSchema (or ERSchema)"
            )
        objects = self._resolve(query)
        chosen = interpretation or self.minimal_interpretation(objects)
        relations = self.relations_of(chosen)
        if not relations:
            # the query objects may all be relation names already
            relations = sorted(
                (o for o in objects if o in set(self._relational.relation_names())),
                key=repr,
            )
        if not relations:
            raise ValidationError("the interpretation uses no relations; nothing to join")
        attributes = [
            o
            for o in sorted(objects, key=repr)
            if o in self._relational.attributes()
        ]
        return answer_query_over_connection(
            self._relational,
            database,
            relations,
            requested_attributes=attributes or None,
            use_semijoins=use_semijoins,
        )
