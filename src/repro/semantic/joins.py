"""Join plans and semijoin programs over minimal connections.

Once a minimal connection (a tree in the schema graph) has been found, the
database side of the paper's motivation takes over: the relations on the
connection are joined, and when the sub-schema is alpha-acyclic the join
can be preceded by a *full semijoin reducer* (Yannakakis / Bernstein-Chiu):
sweep the join tree leaves-to-root and root-to-leaves with semijoins, after
which every remaining tuple participates in the final join.  This module
implements both the plain join plan and the semijoin program, driven by the
join trees of :mod:`repro.hypergraphs.join_tree`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.join_tree import join_tree_parent_map
from repro.semantic.instance import Database, Relation
from repro.semantic.relational import RelationalSchema


@dataclass
class JoinPlan:
    """An executable plan: an ordered list of relations plus optional semijoins.

    Attributes
    ----------
    relations:
        Relation names in join order.
    semijoin_steps:
        Pairs ``(target, source)`` meaning "replace target by
        ``target ⋉ source``", executed before the joins.
    projection:
        Optional attribute list for the final projection.
    """

    relations: List[str]
    semijoin_steps: List[Tuple[str, str]] = field(default_factory=list)
    projection: Optional[List] = None

    def execute(self, database: Database) -> Relation:
        """Run the plan against a database and return the result relation."""
        if not self.relations:
            raise ValidationError("a join plan needs at least one relation")
        working: Dict[str, Relation] = {
            name: database.relation(name).copy() for name in self.relations
        }
        for target, source in self.semijoin_steps:
            working[target] = working[target].semijoin(working[source])
        result = working[self.relations[0]]
        for name in self.relations[1:]:
            result = result.natural_join(working[name])
        if self.projection is not None:
            result = result.project(list(self.projection))
        return result

    def describe(self) -> List[str]:
        """Return a human-readable description of the plan steps."""
        lines = [
            f"semijoin: {target} := {target} ⋉ {source}"
            for target, source in self.semijoin_steps
        ]
        lines.append("join: " + " ⋈ ".join(self.relations))
        if self.projection is not None:
            lines.append("project: " + ", ".join(map(str, self.projection)))
        return lines


def plain_join_plan(
    relations: Sequence[str], projection: Optional[Iterable] = None
) -> JoinPlan:
    """Return a plan that simply joins the given relations in order."""
    return JoinPlan(relations=list(relations), projection=list(projection) if projection else None)


def semijoin_program(
    schema: RelationalSchema,
    relations: Sequence[str],
    projection: Optional[Iterable] = None,
) -> JoinPlan:
    """Return a full-reducer plan for an alpha-acyclic set of relations.

    The sub-hypergraph induced by ``relations`` must be alpha-acyclic (this
    is guaranteed when the whole schema is alpha-acyclic because
    alpha-acyclicity is *not* hereditary in general -- hence the explicit
    check here).  The plan performs an upward (leaves to root) and a
    downward (root to leaves) semijoin sweep over a join tree, then joins
    along the same tree order.

    Raises
    ------
    ValidationError
        If the selected relations do not admit a join tree.
    """
    relation_list = list(relations)
    if not relation_list:
        raise ValidationError("semijoin_program requires at least one relation")
    sub = Hypergraph()
    for name in relation_list:
        sub.add_edge(schema.scheme(name), label=name)
    mapping = join_tree_parent_map(sub)
    if mapping is None:
        raise ValidationError(
            "the selected relations are not alpha-acyclic; no full reducer exists"
        )
    ordering, parents = mapping
    # upward sweep: children reduce their parents, processed leaves-to-root
    upward: List[Tuple[str, str]] = []
    for label in reversed(ordering):
        parent = parents.get(label)
        if parent is not None:
            upward.append((parent, label))
    # downward sweep: parents reduce their children, processed root-to-leaves
    downward: List[Tuple[str, str]] = []
    for label in ordering:
        parent = parents.get(label)
        if parent is not None:
            downward.append((label, parent))
    return JoinPlan(
        relations=list(ordering),
        semijoin_steps=upward + downward,
        projection=list(projection) if projection else None,
    )


def answer_query_over_connection(
    schema: RelationalSchema,
    database: Database,
    connection_relations: Sequence[str],
    requested_attributes: Optional[Iterable] = None,
    use_semijoins: bool = True,
) -> Relation:
    """Evaluate the join over a minimal connection's relations.

    This is the final step of the universal-relation pipeline: the
    relations of the connection are joined (with a semijoin reducer when
    they are alpha-acyclic and ``use_semijoins`` is set) and the result is
    projected onto the attributes the user asked for.
    """
    if use_semijoins:
        try:
            plan = semijoin_program(schema, connection_relations, requested_attributes)
        except ValidationError:
            plan = plain_join_plan(connection_relations, requested_attributes)
    else:
        plan = plain_join_plan(connection_relations, requested_attributes)
    return plan.execute(database)
