"""Semantic data model layer: ER schemas, relational schemas, query interpretation."""

from repro.semantic.er_model import ERSchema
from repro.semantic.instance import Database, Relation
from repro.semantic.joins import (
    JoinPlan,
    answer_query_over_connection,
    plain_join_plan,
    semijoin_program,
)
from repro.semantic.query import Interpretation, QueryInterpreter
from repro.semantic.relational import RelationalSchema, schema_from_hypergraph

__all__ = [
    "Database",
    "ERSchema",
    "Interpretation",
    "JoinPlan",
    "QueryInterpreter",
    "Relation",
    "RelationalSchema",
    "answer_query_over_connection",
    "plain_join_plan",
    "schema_from_hypergraph",
    "semijoin_program",
]
