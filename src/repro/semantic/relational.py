"""Relational schemas and their graph / hypergraph views.

A relational schema is a set of relation schemes, each a named set of
attributes.  The paper studies such schemas through two lenses:

* the **hypergraph** whose nodes are attributes and whose hyperedges are
  the relation schemes (the classical view of Beeri-Fagin-Maier-Yannakakis
  and Fagin, used by Definition 7 and Theorem 1);
* the **bipartite schema graph** with attributes on ``V_1`` and relation
  names on ``V_2`` (the view Sections 1 and 3 use for the minimal
  connection problem).

:class:`RelationalSchema` keeps both views in sync and exposes the
acyclicity / chordality classifications the rest of the library provides.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping

from repro.core.classification import ChordalityReport, classify_bipartite_graph
from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.hypergraphs.acyclicity import acyclicity_degree, satisfies_degree
from repro.hypergraphs.conversions import incidence_graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.semantic.instance import Database, Relation
from repro.utils.rng import RandomLike, ensure_rng

Attribute = Hashable


class RelationalSchema:
    """A relational database schema: named relation schemes over attributes.

    Parameters
    ----------
    schemes:
        Mapping from relation name to an iterable of attributes.

    Examples
    --------
    >>> schema = RelationalSchema({"R": ["a", "b"], "S": ["b", "c"]})
    >>> schema.acyclicity_degree()
    'berge'
    """

    def __init__(self, schemes: Mapping[str, Iterable[Attribute]]) -> None:
        self._schemes: Dict[str, FrozenSet[Attribute]] = {}
        for name, attributes in schemes.items():
            attribute_set = frozenset(attributes)
            if not attribute_set:
                raise ValidationError(f"relation scheme {name!r} has no attributes")
            self._schemes[name] = attribute_set

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------
    def relation_names(self) -> List[str]:
        """Return the relation names in deterministic order."""
        return sorted(self._schemes)

    def attributes(self) -> FrozenSet[Attribute]:
        """Return the set of all attributes mentioned by the schema."""
        result = set()
        for scheme in self._schemes.values():
            result |= scheme
        return frozenset(result)

    def scheme(self, name: str) -> FrozenSet[Attribute]:
        """Return the attribute set of one relation scheme."""
        if name not in self._schemes:
            raise ValidationError(f"unknown relation {name!r}")
        return self._schemes[name]

    def schemes(self) -> Dict[str, FrozenSet[Attribute]]:
        """Return a copy of the full name -> attributes mapping."""
        return dict(self._schemes)

    def relations_containing(self, attribute: Attribute) -> List[str]:
        """Return the names of the relations whose scheme contains ``attribute``."""
        return [name for name in self.relation_names() if attribute in self._schemes[name]]

    def __len__(self) -> int:
        return len(self._schemes)

    # ------------------------------------------------------------------
    # structural views
    # ------------------------------------------------------------------
    def hypergraph(self) -> Hypergraph:
        """Return the schema hypergraph (attributes = nodes, schemes = edges)."""
        hypergraph = Hypergraph(nodes=self.attributes())
        for name in self.relation_names():
            hypergraph.add_edge(self._schemes[name], label=name)
        return hypergraph

    def schema_graph(self) -> BipartiteGraph:
        """Return the bipartite schema graph (attributes on ``V_1``, relations on ``V_2``)."""
        return incidence_graph(self.hypergraph(), node_side=1)

    # ------------------------------------------------------------------
    # classifications
    # ------------------------------------------------------------------
    def acyclicity_degree(self) -> str:
        """Return ``"berge"``, ``"gamma"``, ``"beta"``, ``"alpha"`` or ``"cyclic"``."""
        return acyclicity_degree(self.hypergraph())

    def is_acyclic(self, degree: str = "alpha") -> bool:
        """Return ``True`` when the schema is at least ``degree``-acyclic."""
        return satisfies_degree(self.hypergraph(), degree)

    def chordality_report(self) -> ChordalityReport:
        """Return the chordality classification of the schema graph."""
        return classify_bipartite_graph(self.schema_graph())

    # ------------------------------------------------------------------
    # instances
    # ------------------------------------------------------------------
    def empty_database(self) -> Database:
        """Return a database with one empty relation per scheme."""
        return Database(
            Relation(name, sorted(self._schemes[name], key=repr))
            for name in self.relation_names()
        )

    def random_database(
        self,
        rows_per_relation: int = 8,
        domain_size: int = 6,
        rng: RandomLike = None,
    ) -> Database:
        """Return a database with random small-domain rows (for experiments).

        Values are drawn from ``0 .. domain_size - 1`` per attribute, which
        gives joins a realistic mix of matches and misses.
        """
        generator = ensure_rng(rng)
        database = Database()
        for name in self.relation_names():
            attributes = sorted(self._schemes[name], key=repr)
            relation = Relation(name, attributes)
            for _ in range(rows_per_relation):
                relation.add_row({a: generator.randrange(domain_size) for a in attributes})
            database.add_relation(relation)
        return database


def schema_from_hypergraph(hypergraph: Hypergraph) -> RelationalSchema:
    """Build a :class:`RelationalSchema` from a hypergraph (edge labels = names)."""
    return RelationalSchema(
        {str(label): set(members) for label, members in hypergraph.edge_items()}
    )
