"""A minimal in-memory relational engine.

The paper's motivation is the *universal relation interface*: the user asks
for a set of attributes, the system finds a minimal connection among the
relations mentioning them and evaluates the corresponding join.  To make
that scenario executable end-to-end this module provides the smallest
relational substrate that suffices:

* :class:`Relation` -- a named set of tuples over a fixed attribute list,
  with projection, selection, natural join, semijoin and union;
* :class:`Database` -- a collection of relations keyed by name, able to
  evaluate a join plan produced by :mod:`repro.semantic.joins`.

Tuples are stored as ``dict`` rows (attribute -> value); the engine is
deliberately simple and entirely deterministic.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ValidationError

Attribute = Hashable
Row = Dict[Attribute, object]


class Relation:
    """A named relation instance: an attribute list and a set of rows.

    Rows are dictionaries mapping every attribute of the scheme to a value;
    duplicate rows are collapsed (set semantics).

    Examples
    --------
    >>> r = Relation("emp", ["name", "dept"], [{"name": "ada", "dept": "cs"}])
    >>> len(r)
    1
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute],
        rows: Iterable[Row] = (),
    ) -> None:
        self.name = name
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise ValidationError(f"relation {name!r} has duplicate attributes")
        self._rows: set = set()
        for row in rows:
            self.add_row(row)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add_row(self, row: Row) -> None:
        """Add one row; it must define exactly the relation's attributes."""
        if set(row) != set(self.attributes):
            raise ValidationError(
                f"row attributes {sorted(map(repr, row))} do not match the scheme "
                f"of relation {self.name!r}"
            )
        self._rows.add(tuple(row[a] for a in self.attributes))

    def copy(self, name: Optional[str] = None) -> "Relation":
        """Return a copy (optionally renamed)."""
        clone = Relation(name or self.name, self.attributes)
        clone._rows = set(self._rows)
        return clone

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def rows(self) -> List[Row]:
        """Return the rows as a list of dicts (deterministically ordered)."""
        return [dict(zip(self.attributes, values)) for values in sorted(self._rows, key=repr)]

    def scheme(self) -> FrozenSet[Attribute]:
        """Return the attribute set of this relation."""
        return frozenset(self.attributes)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.scheme() == other.scheme()
            and {frozenset(r.items()) for r in self.rows()}
            == {frozenset(r.items()) for r in other.rows()}
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}, {list(self.attributes)!r}, {len(self)} rows)"

    # ------------------------------------------------------------------
    # relational operators
    # ------------------------------------------------------------------
    def project(self, attributes: Sequence[Attribute], name: Optional[str] = None) -> "Relation":
        """Return the projection onto ``attributes`` (duplicates removed)."""
        missing = [a for a in attributes if a not in self.attributes]
        if missing:
            raise ValidationError(f"cannot project onto unknown attributes {missing!r}")
        result = Relation(name or f"project({self.name})", attributes)
        for row in self.rows():
            result.add_row({a: row[a] for a in attributes})
        return result

    def select(self, predicate: Callable[[Row], bool], name: Optional[str] = None) -> "Relation":
        """Return the rows satisfying ``predicate``."""
        result = Relation(name or f"select({self.name})", self.attributes)
        for row in self.rows():
            if predicate(row):
                result.add_row(row)
        return result

    def natural_join(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """Return the natural join with ``other`` (hash join on shared attributes)."""
        shared = [a for a in self.attributes if a in other.attributes]
        output_attributes = list(self.attributes) + [
            a for a in other.attributes if a not in self.attributes
        ]
        result = Relation(name or f"join({self.name},{other.name})", output_attributes)
        index: Dict[tuple, List[Row]] = {}
        for row in other.rows():
            key = tuple(row[a] for a in shared)
            index.setdefault(key, []).append(row)
        for row in self.rows():
            key = tuple(row[a] for a in shared)
            for match in index.get(key, []):
                combined = dict(row)
                combined.update(match)
                result.add_row(combined)
        return result

    def semijoin(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """Return the semijoin ``self ⋉ other``: rows of ``self`` that join with ``other``."""
        shared = [a for a in self.attributes if a in other.attributes]
        keys = {tuple(row[a] for a in shared) for row in other.rows()}
        result = Relation(name or f"semijoin({self.name},{other.name})", self.attributes)
        for row in self.rows():
            if tuple(row[a] for a in shared) in keys:
                result.add_row(row)
        return result

    def union(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """Return the union (schemes must match)."""
        if self.scheme() != other.scheme():
            raise ValidationError("union requires identical schemes")
        result = Relation(name or f"union({self.name},{other.name})", self.attributes)
        for row in self.rows():
            result.add_row(row)
        for row in other.rows():
            result.add_row({a: row[a] for a in self.attributes})
        return result


class Database:
    """A collection of named relations (one per relation scheme)."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: Dict[str, Relation] = {}
        for relation in relations:
            self.add_relation(relation)

    def add_relation(self, relation: Relation) -> None:
        """Register a relation (its name must be unused)."""
        if relation.name in self._relations:
            raise ValidationError(f"relation name {relation.name!r} is already used")
        self._relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        """Return the relation with the given name."""
        if name not in self._relations:
            raise ValidationError(f"unknown relation {name!r}")
        return self._relations[name]

    def relation_names(self) -> List[str]:
        """Return the relation names in deterministic order."""
        return sorted(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def join_all(self, names: Sequence[str]) -> Relation:
        """Natural-join the named relations left to right."""
        if not names:
            raise ValidationError("join_all requires at least one relation name")
        result = self.relation(names[0]).copy()
        for name in names[1:]:
            result = result.natural_join(self.relation(name))
        return result
