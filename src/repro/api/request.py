"""Typed request objects for the :class:`~repro.api.service.ConnectionService`.

A :class:`ConnectionRequest` captures everything a caller may specify about
one minimal-connection query: the schema handle, the terminal set, the
objective (Definition 8 Steiner vs. Definition 9 pseudo-Steiner), the
solver policy, and per-request limit overrides.  The service validates the
request once and threads it through planning, execution and the returned
:class:`~repro.api.result.ConnectionResult`, so results are always
self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Iterable, Optional, Tuple

from repro.exceptions import ValidationError

#: Accepted ``objective`` values: minimise total objects (Definition 8) or
#: the objects of one bipartition side (Definition 9).
OBJECTIVES = ("steiner", "side")

#: Accepted ``policy`` values.  ``"auto"`` lets the planner pick the
#: strongest applicable solver and reports the resulting guarantee;
#: ``"require-optimal"`` additionally raises
#: :class:`~repro.exceptions.NotApplicableError` when no exact path exists.
POLICIES = ("auto", "require-optimal")


def validate_terminals(graph, terminals) -> None:
    """Raise :class:`ValidationError` for degenerate terminal sets.

    The one definition of "degenerate" every entry point shares --
    :meth:`ConnectionService.connect`, batches (serial and parallel
    worker-side) and :class:`~repro.api.stream.EnumerationStream` alike:
    an *empty* set and *unknown vertices* are caller errors surfaced
    eagerly in the library's taxonomy (without this, an empty set would
    fail deep inside a solver and an unknown vertex would surface as a
    ``GraphError`` from the index encode).  A single terminal is valid
    everywhere: the answer is the trivial one-vertex connection.
    """
    terminals = tuple(terminals)
    if not terminals:
        raise ValidationError("the terminal set must be non-empty")
    unknown = [t for t in terminals if not graph.has_vertex(t)]
    if unknown:
        raise ValidationError(
            f"terminals {sorted(unknown, key=repr)!r} are not vertices "
            "of the schema"
        )


@dataclass(frozen=True, eq=False)
class ConnectionRequest:
    """One minimal-connection query, fully specified.

    Attributes
    ----------
    terminals:
        The objects to connect (deduplicated and deterministically ordered
        at construction time).
    objective:
        ``"steiner"`` (minimise total objects) or ``"side"`` (minimise the
        objects of one side, e.g. relations).
    side:
        The side minimised by ``objective="side"``; ``None`` defers to the
        service's :class:`~repro.api.config.ServiceConfig.default_side`.
    schema:
        Optional schema handle (:class:`~repro.graphs.bipartite.BipartiteGraph`,
        :class:`~repro.semantic.relational.RelationalSchema` or
        :class:`~repro.semantic.er_model.ERSchema`).  ``None`` uses the
        service's bound schema.
    solver:
        Optional explicit solver name from the engine's registry, bypassing
        the planner's choice (fallbacks are disabled).
    policy:
        ``"auto"`` or ``"require-optimal"`` (see :data:`POLICIES`).
    exact_terminal_limit / exact_vertex_limit:
        Per-request overrides of the config's dispatch thresholds.
    """

    terminals: Tuple[Any, ...]
    objective: str = "steiner"
    side: Optional[int] = None
    schema: Any = None
    solver: Optional[str] = None
    policy: str = "auto"
    exact_terminal_limit: Optional[int] = None
    exact_vertex_limit: Optional[int] = None
    #: Free-form caller annotations, copied verbatim into the result's
    #: provenance record (request ids, tenant tags, ...).
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "terminals", tuple(sorted(set(self.terminals), key=repr))
        )
        if self.tags is None:
            object.__setattr__(self, "tags", {})
        elif not isinstance(self.tags, dict):
            raise ValidationError(
                f"tags must be a dict (or None), got {type(self.tags).__name__}"
            )
        if self.objective not in OBJECTIVES:
            raise ValidationError(
                f"objective must be one of {OBJECTIVES}, got {self.objective!r}"
            )
        if self.policy not in POLICIES:
            raise ValidationError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if self.side is not None and self.side not in (1, 2):
            raise ValidationError("side must be 1 or 2")

    def __repr__(self) -> str:
        """Return a compact repr: defaulted fields are omitted, schemas elided.

        The dataclass-generated repr would embed the full repr of the
        attached schema handle (hundreds of vertices); this one keeps log
        lines and doc snippets readable.
        """
        parts = [f"terminals={self.terminals!r}", f"objective={self.objective!r}"]
        if self.side is not None:
            parts.append(f"side={self.side}")
        if self.schema is not None:
            parts.append(f"schema=<{type(self.schema).__name__}>")
        if self.solver is not None:
            parts.append(f"solver={self.solver!r}")
        if self.policy != "auto":
            parts.append(f"policy={self.policy!r}")
        if self.exact_terminal_limit is not None:
            parts.append(f"exact_terminal_limit={self.exact_terminal_limit}")
        if self.exact_vertex_limit is not None:
            parts.append(f"exact_vertex_limit={self.exact_vertex_limit}")
        if self.tags:
            parts.append(f"tags={self.tags!r}")
        return f"ConnectionRequest({', '.join(parts)})"

    @classmethod
    def of(
        cls,
        terminals: Iterable,
        *,
        objective: str = "steiner",
        side: Optional[int] = None,
        schema: Any = None,
        solver: Optional[str] = None,
        policy: str = "auto",
        **overrides,
    ) -> "ConnectionRequest":
        """Build a request from loose arguments (the service's shorthand path).

        Unknown keyword arguments raise :class:`ValidationError` (not a
        raw ``TypeError``) so typos like ``objectve=`` or misplaced
        enumeration knobs (``budget=``) surface through the library's
        error taxonomy.
        """
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ValidationError(
                f"unknown request field(s) {unknown}; valid fields: "
                f"{sorted(valid)}"
            )
        return cls(
            terminals=tuple(terminals),
            objective=objective,
            side=side,
            schema=schema,
            solver=solver,
            policy=policy,
            **overrides,
        )
