"""Span-like request context: one identity shared by logs, metrics and provenance.

A server answering traffic for many tenants needs every answer to be
attributable after the fact: *which* request produced this tree, for
*which* tenant, and where did the wall-clock go.  Before this module the
:class:`~repro.api.result.Provenance` record could not say -- the service
had no notion of "the request currently being served", so server logs
and provenance disagreed on identity.

:class:`RequestContext` is that notion, carried in a
:class:`contextvars.ContextVar` so it flows naturally through
``asyncio`` tasks **and** into worker threads started with
:func:`asyncio.to_thread` (which copies the context).  The
:mod:`repro.server` connection handler opens a :func:`request_scope`
around every RPC; :meth:`ConnectionService._finish
<repro.api.service.ConnectionService>` reads the active context and
stamps its identity -- request id, tenant, and the accumulated
wall-clock *phases* (``context`` / ``plan`` / ``solve``) -- onto the
returned provenance.  When no scope is active (every pre-server call
site), the service pays one function call per phase and the provenance
fields stay ``None``, so golden fixtures and differential suites are
unaffected.

Examples
--------
>>> from repro.graphs import BipartiteGraph
>>> from repro.api import ConnectionService
>>> g = BipartiteGraph(left=["A", "B"], right=[1], edges=[("A", 1), ("B", 1)])
>>> service = ConnectionService(schema=g)
>>> with request_scope(request_id="req-1", tenant="acme"):
...     result = service.connect(["A", "B"])
>>> result.provenance.request_id, result.provenance.tenant
('req-1', 'acme')
>>> sorted(result.provenance.phases) == ['context', 'plan', 'solve']
True
>>> service.connect(["A", "B"]).provenance.request_id is None
True
"""

from __future__ import annotations

import contextvars
import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, Optional

_ACTIVE: "contextvars.ContextVar[Optional[RequestContext]]" = contextvars.ContextVar(
    "repro_request_context", default=None
)

#: Fallback request-id source for scopes opened without an explicit id.
_SEQUENCE = itertools.count(1)


@dataclass
class RequestContext:
    """Identity and wall-clock phase accounting for one in-flight request.

    Attributes
    ----------
    request_id:
        Opaque caller-assigned identifier (the server stamps one per RPC).
    tenant:
        The tenant the request is served for (``None`` outside the
        multi-tenant server).
    phases:
        Accumulated wall-clock seconds per phase name.  Within one scope
        the phases are *cumulative*: a batch's later results report the
        time spent on all queries so far, and the final result carries
        the scope's totals.
    """

    request_id: str
    tenant: Optional[str] = None
    phases: Dict[str, float] = field(default_factory=dict)

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall-clock into the named phase."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    @contextmanager
    def timed_phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the named phase."""
        started = perf_counter()
        try:
            yield
        finally:
            self.add_phase(name, perf_counter() - started)

    def phases_ms(self) -> Dict[str, float]:
        """Return a snapshot of the phases, converted to milliseconds."""
        return {name: seconds * 1000.0 for name, seconds in self.phases.items()}


def current_request() -> Optional[RequestContext]:
    """Return the active :class:`RequestContext`, or ``None`` outside a scope."""
    return _ACTIVE.get()


@contextmanager
def request_scope(
    request_id: Optional[str] = None, tenant: Optional[str] = None
) -> Iterator[RequestContext]:
    """Open a request scope; service calls inside it stamp its identity.

    ``request_id`` defaults to a process-unique ``req-<n>`` when omitted.
    Scopes nest: the innermost wins, and leaving the ``with`` block
    restores whatever was active before (also when the block raises).
    """
    context = RequestContext(
        request_id=request_id if request_id is not None else f"req-{next(_SEQUENCE)}",
        tenant=tenant,
    )
    token = _ACTIVE.set(context)
    try:
        yield context
    finally:
        _ACTIVE.reset(token)


class _NoopPhase:
    """The shared do-nothing context manager used outside request scopes."""

    def __enter__(self) -> None:
        """Nothing to start."""
        return None

    def __exit__(self, *exc_info) -> bool:
        """Nothing to record; never swallows exceptions."""
        return False


_NOOP_PHASE = _NoopPhase()


def phase(name: str):
    """Return a context manager timing a phase of the active request.

    The hot-path helper the service wraps its stages in: with no active
    :class:`RequestContext` it returns a shared no-op (one dict lookup,
    no allocation), so un-scoped callers pay essentially nothing.
    """
    context = _ACTIVE.get()
    if context is None:
        return _NOOP_PHASE
    return context.timed_phase(name)
