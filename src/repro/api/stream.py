"""Streaming enumeration of connections in non-decreasing size.

The paper's interactive scenario (Section 1) does not stop at the minimal
connection: when the cheapest reading is not the intended one, the system
proposes *further* connections in increasing size until the user picks.
:class:`EnumerationStream` makes that loop a first-class API object -- a
lazy, resumable iterator of :class:`~repro.api.result.ConnectionResult`
objects whose costs never decrease, with a budget knob so an interactive
front end can pull a page at a time and come back for more.

Enumeration is exhaustive over auxiliary-vertex subsets and therefore
meant for schema-sized graphs (tens of vertices), not arbitrary inputs;
the ``max_extra`` bound caps the explored auxiliary count.
"""

from __future__ import annotations

from itertools import combinations
from time import perf_counter
from typing import Iterator, List, Optional

from repro.api.request import ConnectionRequest, validate_terminals
from repro.api.result import ConnectionResult, Guarantee, Provenance
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph
from repro.graphs.spanning import spanning_tree
from repro.graphs.traversal import component_containing, vertices_in_same_component
from repro.steiner.problem import SteinerInstance, SteinerSolution


def _connection_solutions(
    graph: Graph, instance: SteinerInstance, max_extra: Optional[int]
) -> Iterator[SteinerSolution]:
    """Yield distinct connection trees over ``instance`` by increasing size.

    For each auxiliary count ``extra`` (ascending) every ``extra``-subset of
    the optional vertices is tested; a subset is reported only when its
    union with the terminals induces a connected subgraph using exactly the
    chosen objects (otherwise the same connection would reappear for every
    superset of its auxiliary vertices).  The first yielded tree is a
    minimum connection by construction.
    """
    terminal_set = frozenset(instance.terminals)
    if not terminal_set:
        # defense in depth: the stream validates before building this
        # generator, but a bare ``next(iter(...))`` on an empty set below
        # would surface as PEP 479's RuntimeError (or, pre-3.7, silently
        # truncate the stream) -- an explicit error keeps the failure in
        # the library's taxonomy even if a future caller skips validation
        raise ValidationError("enumeration requires a non-empty terminal set")
    root = next(iter(terminal_set))
    optional = sorted(graph.vertices() - terminal_set, key=repr)
    bound = len(optional) if max_extra is None else min(max_extra, len(optional))
    seen_vertex_sets = set()
    first = True
    for extra in range(bound + 1):
        for subset in combinations(optional, extra):
            kept = terminal_set | set(subset)
            induced = graph.subgraph(kept)
            if not vertices_in_same_component(induced, terminal_set):
                continue
            component = component_containing(induced, root)
            if frozenset(component) != frozenset(kept):
                continue
            tree = spanning_tree(induced.subgraph(component))
            key = frozenset(tree.vertices())
            if key in seen_vertex_sets:
                continue
            seen_vertex_sets.add(key)
            yield SteinerSolution(
                tree=tree,
                instance=instance,
                method="ranked-enumeration",
                optimal=first,
            )
            first = False


class EnumerationStream:
    """Lazy, resumable stream of connections in non-decreasing size.

    Iterating yields :class:`~repro.api.result.ConnectionResult` objects
    whose ``cost`` values never decrease; the first result is a minimum
    connection (``guarantee=OPTIMAL``), later results are the alternative
    readings an interactive interface would progressively disclose
    (``guarantee=HEURISTIC``: they are valid connections but not minimal).

    The stream is *budgeted* and *resumable*: when ``budget`` connections
    have been yielded, iteration pauses (``StopIteration``) but the
    underlying enumeration state is kept, so :meth:`extend_budget` followed
    by further iteration continues exactly where the stream stopped.
    :meth:`take` pulls one page of results.

    Budget-exhaustion resume semantics (the precise contract):

    * A budget pause and true exhaustion both surface as ``StopIteration``
      -- a ``for`` loop cannot tell them apart.  Inspect :attr:`paused`
      (equivalently ``budget_remaining == 0`` with :attr:`exhausted` still
      ``False``) to distinguish "come back with more budget" from "there
      are no further connections".  At the exact boundary -- the budget
      ran out on the last connection that exists -- :attr:`paused` is a
      false positive (the stream has not yet *attempted* the next
      connection, so it cannot know none remains); the next pull after
      :meth:`extend_budget` settles it by flipping :attr:`exhausted`.
    * :meth:`extend_budget` re-arms a paused stream; the next ``next()``
      yields exactly the connection that would have come next -- no
      repeats, no gaps, and the non-decreasing cost order is preserved
      across the pause.  ``rank`` keeps counting from where it stopped.
    * On an unbounded stream (``budget=None``) :meth:`extend_budget` is a
      no-op, and once :attr:`exhausted` is ``True`` no amount of budget
      yields further results.
    * ``budget=0`` is valid: the stream starts paused and yields nothing
      until extended.
    """

    def __init__(
        self,
        graph: Graph,
        request: ConnectionRequest,
        *,
        instance_class: str,
        cache_hit: bool,
        budget: Optional[int] = None,
        max_extra: Optional[int] = None,
    ) -> None:
        if budget is not None and budget < 0:
            raise ValidationError("budget must be non-negative")
        if max_extra is not None and max_extra < 0:
            raise ValidationError("max_extra must be non-negative")
        # degenerate terminal sets fail here, eagerly and explicitly --
        # never from inside the lazy generator: an empty query must not
        # surface as a silent empty stream or a PEP 479 RuntimeError.
        # (A single terminal is valid: the stream opens with the trivial
        # one-vertex connection, rank 1 OPTIMAL, then the supersets.)
        validate_terminals(graph, request.terminals)
        self._request = request
        self._instance = SteinerInstance(graph, request.terminals)
        self._instance.require_feasible()
        self._generator = _connection_solutions(graph, self._instance, max_extra)
        self._instance_class = instance_class
        self._cache_hit = cache_hit
        self._budget = budget
        self._yielded = 0
        self._exhausted = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def request(self) -> ConnectionRequest:
        """The request this stream enumerates for."""
        return self._request

    @property
    def yielded(self) -> int:
        """How many connections the stream has produced so far."""
        return self._yielded

    @property
    def budget_remaining(self) -> Optional[int]:
        """Connections left before the stream pauses (``None`` = unbounded)."""
        if self._budget is None:
            return None
        return max(0, self._budget - self._yielded)

    @property
    def exhausted(self) -> bool:
        """``True`` once the enumeration itself (not just the budget) ran dry."""
        return self._exhausted

    @property
    def paused(self) -> bool:
        """``True`` when the stream stopped on budget, not (known) exhaustion.

        A paused stream resumes after :meth:`extend_budget`; an exhausted
        one never yields again.  ``StopIteration`` alone cannot tell the
        two apart -- this flag can, with one caveat: when the budget runs
        out on the very last existing connection, the stream has not yet
        attempted the next one, so ``paused`` stays ``True`` until a pull
        after :meth:`extend_budget` discovers the well is dry.
        """
        return (
            not self._exhausted
            and self._budget is not None
            and self._yielded >= self._budget
        )

    def extend_budget(self, extra: int) -> None:
        """Allow ``extra`` more connections, resuming a budget-paused stream."""
        if extra < 0:
            raise ValidationError("extra must be non-negative")
        if self._budget is not None:
            self._budget += extra

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> "EnumerationStream":
        return self

    def __next__(self) -> ConnectionResult:
        if self._exhausted:
            raise StopIteration
        if self._budget is not None and self._yielded >= self._budget:
            raise StopIteration
        start = perf_counter()
        try:
            solution = next(self._generator)
        except StopIteration:
            self._exhausted = True
            raise
        self._yielded += 1
        provenance = Provenance(
            solver="ranked-enumeration",
            instance_class=self._instance_class,
            plan="exhaustive subset enumeration in non-decreasing connection size",
            cache_hit=self._cache_hit,
            wall_time_ms=(perf_counter() - start) * 1000.0,
            tags=dict(self._request.tags),
        )
        return ConnectionResult(
            request=self._request,
            solution=solution,
            guarantee=Guarantee.OPTIMAL if solution.optimal else Guarantee.HEURISTIC,
            provenance=provenance,
            rank=self._yielded,
        )

    def take(self, count: int) -> List[ConnectionResult]:
        """Return up to ``count`` further connections (a page of results)."""
        page: List[ConnectionResult] = []
        for _ in range(count):
            try:
                page.append(next(self))
            except StopIteration:
                break
        return page
