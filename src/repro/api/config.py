"""Service-level configuration for the :class:`~repro.api.service.ConnectionService`.

Before the façade existed, the knobs governing solver dispatch lived as
scattered constructor kwargs (``MinimalConnectionFinder(exact_terminal_limit=...)``,
``InterpretationEngine(cache_size=...)``) and per-call arguments
(``ranked_connections(limit=..., max_extra=...)``).  :class:`ServiceConfig`
collects them in one immutable object so a deployment can define its policy
once and hand it to every service instance.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.exceptions import ValidationError
from repro.metrics import MetricsRegistry


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable policy/limits bundle for a :class:`ConnectionService`.

    Attributes
    ----------
    exact_terminal_limit:
        Terminal-set sizes up to this limit fall back to the Dreyfus-Wagner
        exact solver when no polynomial class applies.
    exact_vertex_limit:
        Instances with at most this many optional vertices may use a
        brute-force solver as a last exact resort.
    cache_size:
        Number of schema contexts kept in the engine's LRU.
    default_side:
        The bipartition side minimised by ``objective="side"`` requests
        that do not specify one (side 2 is "relations" in the paper's
        database reading).
    enumeration_budget:
        Default number of connections an :class:`~repro.api.stream.EnumerationStream`
        may yield before pausing (``None`` = unbounded).
    enumeration_max_extra:
        Default bound on the number of auxiliary vertices enumeration will
        explore (``None`` = all of them).
    cache_dir:
        Opt-in directory for the persistent result cache
        (:class:`~repro.runtime.diskcache.DiskCache`).  When set, the
        service stores every classification report and every
        :class:`~repro.api.result.ConnectionResult` on disk, keyed by the
        schema's structural digest and the request, and serves repeat
        requests from disk across processes and interpreter restarts.
        ``None`` (the default) keeps the service purely in-memory.
    incremental:
        When ``True`` (the default) a mutation of the service's *bound*
        schema patches the cached schema context through
        :meth:`~repro.engine.cache.SchemaContext.apply_delta` -- only the
        biconnected blocks the edit touched are reclassified -- instead
        of rebuilding it with a full Theorem 1 recognition.  Set to
        ``False`` to force full rebuilds (the churn oracle and the
        dynamic benchmarks do, to have a baseline to compare against).
    metrics:
        The :class:`~repro.metrics.MetricsRegistry` the service's
        instruments collect into.  ``None`` (the default) means the
        process-wide registry from :func:`~repro.metrics.default_metrics`;
        inject a fresh registry to isolate one service's metrics, or a
        :class:`~repro.metrics.NullRegistry` to disable instrumentation
        entirely.  Pool workers always run with ``metrics=None``
        overridden in (registries do not cross process boundaries).
    kernel_backend:
        Which kernel lane (:mod:`repro.kernels.backend`) BFS rows are
        produced on: ``"array"`` (the zero-dependency default),
        ``"numpy"`` (the vectorized lane; raises
        :class:`~repro.exceptions.MissingDependencyError` at service
        construction when numpy is absent), ``"auto"`` (numpy when
        importable, else array) or ``None`` to defer to the
        ``REPRO_KERNEL_BACKEND`` environment variable / the array
        default.  Both lanes return byte-identical rows; the resolved
        lane is stamped into every answer's provenance, and -- because
        the config travels to pool workers via ``with_overrides`` --
        workers resolve the same lane after fork *or* spawn.
    memory_budget_bytes:
        Optional byte budget for the engine's schema cache and its
        distance oracles.  When an insert pushes the held bytes past the
        budget, least-recently-used schema contexts / oracle rows are
        evicted instead of growing without bound; current usage is
        exported as ``repro_memory_*`` gauges.  ``None`` (the default)
        means unbounded.
    """

    exact_terminal_limit: int = 8
    exact_vertex_limit: int = 18
    cache_size: int = 16
    default_side: int = 2
    enumeration_budget: Optional[int] = None
    enumeration_max_extra: Optional[int] = None
    cache_dir: Optional[Union[str, os.PathLike]] = None
    incremental: bool = True
    metrics: Optional[MetricsRegistry] = None
    kernel_backend: Optional[str] = None
    memory_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.exact_terminal_limit < 0 or self.exact_vertex_limit < 0:
            raise ValidationError("exact limits must be non-negative")
        if self.cache_size < 1:
            raise ValidationError("cache_size must be positive")
        if self.default_side not in (1, 2):
            raise ValidationError("default_side must be 1 or 2")
        if self.cache_dir is not None and not isinstance(
            self.cache_dir, (str, os.PathLike)
        ):
            raise ValidationError("cache_dir must be a path string (or None)")
        if self.enumeration_budget is not None and self.enumeration_budget < 0:
            raise ValidationError("enumeration_budget must be non-negative")
        if self.enumeration_max_extra is not None and self.enumeration_max_extra < 0:
            raise ValidationError("enumeration_max_extra must be non-negative")
        if not isinstance(self.incremental, bool):
            raise ValidationError("incremental must be a bool")
        if self.metrics is not None and not isinstance(self.metrics, MetricsRegistry):
            raise ValidationError("metrics must be a MetricsRegistry (or None)")
        if self.kernel_backend is not None and self.kernel_backend not in (
            "array",
            "numpy",
            "auto",
        ):
            raise ValidationError(
                "kernel_backend must be 'array', 'numpy', 'auto' or None"
            )
        if self.memory_budget_bytes is not None and (
            not isinstance(self.memory_budget_bytes, int)
            or self.memory_budget_bytes < 1
        ):
            raise ValidationError("memory_budget_bytes must be a positive int (or None)")

    def with_overrides(self, **overrides) -> "ServiceConfig":
        """Return a copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)
