"""Typed result objects: guarantees and provenance for every answer.

A bare :class:`~repro.steiner.problem.SteinerSolution` tells the caller
*what* tree was found but not *how*: which solver ran, under which
instance-class assumption, whether the schema context was cached, and
whether the answer is guaranteed minimal.  :class:`ConnectionResult`
packages the solution together with a :class:`Guarantee` flag and a
:class:`Provenance` record, so a production operator can audit any answer
after the fact and a client can branch on optimality without knowing the
solver zoo.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.api.request import ConnectionRequest
from repro.steiner.problem import SteinerSolution


class Guarantee(enum.Enum):
    """Whether the result is guaranteed minimal for its objective."""

    OPTIMAL = "optimal"
    HEURISTIC = "heuristic"


@dataclass(frozen=True, eq=False)  # eq=False: tags is a dict, keep identity hash
class Provenance:
    """How one answer was produced.

    Attributes
    ----------
    solver:
        Registry name of the solver that produced the answer (e.g.
        ``"chordal-elimination"``) or ``"ranked-enumeration"`` for
        streamed connections.
    instance_class:
        The planner's instance-class verdict as a string
        (``"chordal"`` / ``"side-chordal"`` / ``"general"``).
    plan:
        The planner's human-readable reason for its choice.
    cache_hit:
        ``True`` when the schema context was served from the engine's LRU
        rather than rebuilt.
    fallback_from:
        The originally planned solver when the answer came from a fallback
        (``None`` when the primary solver succeeded).
    wall_time_ms:
        End-to-end service-side latency of this answer in milliseconds.
        For answers computed by a pool worker this is the worker-side
        solve time; for answers replayed from the persistent cache it is
        the original computation's time.
    tags:
        The request's free-form annotations, echoed back.
    result_cache:
        ``"disk"`` when this answer was replayed from the persistent
        :class:`~repro.runtime.diskcache.DiskCache` rather than computed in
        this process; ``None`` for freshly computed answers.  Orthogonal to
        ``cache_hit``, which describes the in-memory *schema-context* LRU
        of the computation that originally produced the answer.
    request_id / tenant / phases:
        Span-like identity stamped from the active
        :class:`~repro.api.context.RequestContext` (see
        :func:`~repro.api.context.request_scope`): the server-assigned
        request id, the tenant the answer was served for, and the
        wall-clock phase breakdown in milliseconds (cumulative within
        the enclosing scope).  All ``None`` outside a request scope, so
        server logs and provenance agree on identity while in-process
        callers see no change.
    backend:
        Name of the kernel lane (``"array"`` or ``"numpy"``, see
        :mod:`repro.kernels.backend`) the answering service resolved.
        Informational only -- both lanes return byte-identical answers
        -- and ``None`` for results produced outside a service (direct
        engine / solver calls).
    """

    solver: str
    instance_class: str
    plan: str
    cache_hit: bool
    fallback_from: Optional[str] = None
    wall_time_ms: float = 0.0
    tags: dict = field(default_factory=dict)
    result_cache: Optional[str] = None
    request_id: Optional[str] = None
    tenant: Optional[str] = None
    phases: Optional[dict] = None
    backend: Optional[str] = None

    def to_dict(self, include_timing: bool = True) -> dict:
        """Return a JSON-serialisable record (timing is droppable for fixtures)."""
        record = {
            "solver": self.solver,
            "instance_class": self.instance_class,
            "plan": self.plan,
            "cache_hit": self.cache_hit,
            "fallback_from": self.fallback_from,
        }
        if include_timing:
            record["wall_time_ms"] = self.wall_time_ms
        if self.tags:
            record["tags"] = dict(self.tags)
        if self.result_cache is not None:
            record["result_cache"] = self.result_cache
        if self.request_id is not None:
            record["request_id"] = self.request_id
        if self.tenant is not None:
            record["tenant"] = self.tenant
        if self.backend is not None:
            record["backend"] = self.backend
        if self.phases is not None and include_timing:
            record["phases"] = dict(self.phases)
        return record


@dataclass(frozen=True, eq=False)
class ConnectionResult:
    """One answered connection request: tree, cost, guarantee, provenance.

    Attributes
    ----------
    request:
        The (normalised) :class:`~repro.api.request.ConnectionRequest`.
    solution:
        The underlying :class:`~repro.steiner.problem.SteinerSolution`
        (kept for back-compat with pre-façade call sites).
    guarantee:
        :attr:`Guarantee.OPTIMAL` when the answer is guaranteed minimal
        for the request's objective, :attr:`Guarantee.HEURISTIC` otherwise.
    provenance:
        The :class:`Provenance` record for this answer.
    rank:
        Position in an enumeration stream (1 = minimal connection); always
        1 for direct ``connect`` answers.
    """

    request: ConnectionRequest
    solution: SteinerSolution
    guarantee: Guarantee
    provenance: Provenance
    rank: int = 1

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def tree(self):
        """The connection tree (a :class:`~repro.graphs.graph.Graph`)."""
        return self.solution.tree

    @property
    def cost(self) -> int:
        """Total number of objects in the connection (Definition 8 objective)."""
        return self.solution.vertex_count()

    @property
    def side_cost(self) -> Optional[int]:
        """Number of minimised-side objects for ``"side"`` requests, else ``None``."""
        if self.request.objective != "side":
            return None
        return self.solution.side_count(self.solution.side)

    @property
    def auxiliary_objects(self) -> Set:
        """The objects in the tree the user did not mention."""
        return self.solution.steiner_vertices()

    def is_optimal(self) -> bool:
        """Return ``True`` when the answer is guaranteed minimal."""
        return self.guarantee is Guarantee.OPTIMAL

    def validate(self) -> None:
        """Re-check the tree against Definition 8 (delegates to the solution)."""
        self.solution.validate()

    def to_dict(self, include_timing: bool = True) -> dict:
        """Return a JSON-serialisable summary (used by the golden fixtures)."""
        record = {
            "terminals": [repr(t) for t in self.request.terminals],
            "objective": self.request.objective,
            "cost": self.cost,
            "guarantee": self.guarantee.value,
            "rank": self.rank,
            "provenance": self.provenance.to_dict(include_timing=include_timing),
        }
        if self.request.objective == "side":
            record["side_cost"] = self.side_cost
        return record

    def __repr__(self) -> str:
        """Return a compact, log-friendly summary (the dataclass default would dump the schema)."""
        parts = [
            f"cost={self.cost}",
            f"guarantee={self.guarantee.value!r}",
            f"solver={self.provenance.solver!r}",
        ]
        if self.request.objective != "steiner":
            parts.append(f"objective={self.request.objective!r}")
            parts.append(f"side_cost={self.side_cost}")
        if self.rank != 1:
            parts.append(f"rank={self.rank}")
        if self.provenance.result_cache is not None:
            parts.append(f"result_cache={self.provenance.result_cache!r}")
        parts.append(f"terminals={self.request.terminals!r}")
        return f"ConnectionResult({', '.join(parts)})"
