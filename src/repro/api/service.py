"""`ConnectionService`: the single front door to minimal conceptual connections.

The paper's motivating scenario (Section 1) is an interactive service: a
user names objects, the system proposes the cheapest connection among
them, then further connections in increasing size for disambiguation.
:class:`ConnectionService` is that scenario as one coherent, typed API:

* :meth:`ConnectionService.connect` answers one
  :class:`~repro.api.request.ConnectionRequest` (or a bare terminal set)
  with a :class:`~repro.api.result.ConnectionResult` carrying the tree,
  the optimality :class:`~repro.api.result.Guarantee` and a full
  :class:`~repro.api.result.Provenance` record;
* :meth:`ConnectionService.batch` answers many requests over one schema,
  amortising classification/indexing through the engine's schema cache;
* :meth:`ConnectionService.enumerate` returns the interactive
  :class:`~repro.api.stream.EnumerationStream` of further connections.

All dispatch flows through the engine's planner/registry/cache
(:func:`~repro.engine.planner.plan_query`,
:class:`~repro.engine.registry.SolverRegistry`,
:class:`~repro.engine.cache.SchemaCache`) -- there is no second dispatch
path anywhere in the library; the legacy
:class:`~repro.core.connection.MinimalConnectionFinder` is a thin wrapper
over this service.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterable, List, Optional, Union

from repro.api.config import ServiceConfig
from repro.api.context import current_request, phase
from repro.api.request import ConnectionRequest, validate_terminals
from repro.api.result import ConnectionResult, Guarantee, Provenance
from repro.api.stream import EnumerationStream
from repro.core.classification import ChordalityReport
from repro.engine.batch import InterpretationEngine
from repro.engine.cache import SchemaContext
from repro.engine.planner import QueryPlan, plan_query
from repro.engine.registry import SolverRegistry
from repro.exceptions import NotApplicableError, ValidationError
from repro.kernels.backend import backend_name, resolve_backend
from repro.metrics import MetricsRegistry, default_metrics
from repro.steiner.problem import SteinerSolution

RequestLike = Union[ConnectionRequest, Iterable]


class ConnectionService:
    """Typed façade over the interpretation engine.

    Parameters
    ----------
    schema:
        Optional default schema handle (a
        :class:`~repro.graphs.bipartite.BipartiteGraph`,
        :class:`~repro.semantic.relational.RelationalSchema` or
        :class:`~repro.semantic.er_model.ERSchema`).  Requests may override
        it per call; a service without a default schema requires one on
        every request.
    config:
        A :class:`~repro.api.config.ServiceConfig`; defaults are the
        library-wide dispatch thresholds.
    engine:
        An existing :class:`~repro.engine.batch.InterpretationEngine` to
        share (its registry and schema cache are reused).  Built from
        ``config`` when omitted.
    registry:
        Convenience override for the engine's solver registry (ignored
        when ``engine`` is given).

    Examples
    --------
    >>> from repro.graphs import BipartiteGraph
    >>> g = BipartiteGraph(left=["A", "B"], right=[1], edges=[("A", 1), ("B", 1)])
    >>> service = ConnectionService(schema=g)
    >>> result = service.connect(["A", "B"])
    >>> result.cost, result.guarantee.value
    (3, 'optimal')
    """

    def __init__(
        self,
        schema: Any = None,
        config: Optional[ServiceConfig] = None,
        engine: Optional[InterpretationEngine] = None,
        registry: Optional[SolverRegistry] = None,
    ) -> None:
        self._schema = schema
        if engine is None:
            self._config = config if config is not None else ServiceConfig()
            # resolve the kernel lane ONCE, at construction: a "numpy"
            # request without numpy fails here with a typed
            # MissingDependencyError instead of mid-query, and the
            # resolved name is stamped into every answer's provenance
            kernel_backend = resolve_backend(self._config.kernel_backend)
            engine = InterpretationEngine(
                registry=registry,
                cache_size=self._config.cache_size,
                exact_terminal_limit=self._config.exact_terminal_limit,
                exact_vertex_limit=self._config.exact_vertex_limit,
                kernel_backend=kernel_backend,
                memory_budget_bytes=self._config.memory_budget_bytes,
            )
        elif config is None:
            # adopt the engine's thresholds so the service and its engine
            # plan identically (a single dispatch path, one policy)
            self._config = ServiceConfig(
                exact_terminal_limit=engine.exact_terminal_limit,
                exact_vertex_limit=engine.exact_vertex_limit,
            )
        elif (
            config.exact_terminal_limit != engine.exact_terminal_limit
            or config.exact_vertex_limit != engine.exact_vertex_limit
        ):
            raise ValidationError(
                "config dispatch limits conflict with the supplied engine's; "
                "pass one or the other (or make them agree)"
            )
        else:
            self._config = config
        self._engine = engine
        # the lane every answer's provenance reports: a shared engine's
        # cache lane wins (that is the lane actually producing rows);
        # otherwise the config resolves (instances are memoised, so this
        # re-resolve is free on the engine-built path above)
        cache_backend = getattr(engine.cache, "kernel_backend", None)
        self._kernel_backend = (
            cache_backend
            if cache_backend is not None
            else resolve_backend(self._config.kernel_backend)
        )
        self._backend_name = backend_name(self._kernel_backend)
        # see _context for the caching contract
        self._bound_context = None
        self._bound_version = None
        # persistent-layer state: the DiskCache handle (lazy; None when
        # config.cache_dir is unset) and the bound schema's structural
        # digest, memoised on the same mutation_version contract as the
        # bound context
        self._disk = None
        self._bound_digest = None
        self._bound_digest_version = None
        # observability: instruments live in the configured registry (the
        # process-wide default when config.metrics is None); cache counters
        # are exported lazily by a snapshot collector at render time, so
        # the query hot path only ever touches the two direct instruments
        self._metrics = (
            self._config.metrics
            if self._config.metrics is not None
            else default_metrics()
        )
        # "tenant" is the multi-tenant server's dimension; in-process
        # callers (no active request scope) collect under tenant=""
        query_labels = ("instance_class", "solver", "guarantee", "tenant")
        self._queries_total = self._metrics.counter(
            "repro_queries_total",
            "Connection requests answered, by plan and outcome.",
            query_labels,
        )
        self._query_latency = self._metrics.histogram(
            "repro_query_latency_seconds",
            "Wall time of one answered connection request.",
            query_labels,
        )
        self._disk_replays = self._metrics.counter(
            "repro_disk_replays_total",
            "Requests answered verbatim from the persistent result cache.",
        )
        self._rebind_outcomes = self._metrics.counter(
            "repro_rebind_total",
            "Bound-schema rebind outcomes after a mutation "
            "(incremental / noop / fallback / full).",
            ("outcome",),
        )
        self._rebind_patch_latency = self._metrics.histogram(
            "repro_rebind_patch_seconds",
            "Wall time of one incremental apply_delta patch.",
        )
        self._rebind_delta_size = self._metrics.histogram(
            "repro_rebind_delta_edits",
            "Net vertex+edge edits per incremental rebind delta.",
            buckets=(1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0),
        )
        self._metrics.register_collector(self._collect_cache_metrics)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> ServiceConfig:
        """The service's immutable configuration."""
        return self._config

    @property
    def engine(self) -> InterpretationEngine:
        """The underlying engine (registry + planner + schema cache)."""
        return self._engine

    @property
    def schema(self) -> Any:
        """The default schema handle (``None`` when unbound)."""
        return self._schema

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this service's instruments collect into."""
        return self._metrics

    def _collect_cache_metrics(self) -> None:
        """Export :meth:`cache_stats` counters as gauges (snapshot collector).

        Registered on the service's registry and run at
        :meth:`~repro.metrics.MetricsRegistry.render_text` time, so the
        schema-cache, distance-oracle and disk-cache counters cost the
        query hot path nothing.  When several services share one registry
        the last-rendered service's snapshot wins -- inject per-service
        registries (``ServiceConfig(metrics=...)``) to keep them apart.
        """
        stats = self.cache_stats()
        schema_gauge = self._metrics.gauge(
            "repro_schema_cache",
            "Schema-cache counters snapshotted from cache_stats().",
            ("stat",),
        )
        oracle_gauge = self._metrics.gauge(
            "repro_distance_oracle",
            "Distance-oracle counters snapshotted from cache_stats().",
            ("stat",),
        )
        disk_gauge = self._metrics.gauge(
            "repro_disk_cache",
            "Persistent-cache counters snapshotted from cache_stats().",
            ("stat",),
        )
        for stat, value in stats.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                schema_gauge.labels(stat=stat).set(value)
        for stat, value in stats.get("distance_oracle", {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                oracle_gauge.labels(stat=stat).set(value)
        for stat, value in stats.get("disk", {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                disk_gauge.labels(stat=stat).set(value)
        # memory-budget observability: what the engine currently HOLDS
        # (CSR arrays + oracle rows) against what it is ALLOWED to hold
        memory_gauge = self._metrics.gauge(
            "repro_memory_held_bytes",
            "Bytes currently held by the engine, by component.",
            ("component",),
        )
        memory_gauge.labels(component="schema_cache").set(
            stats.get("memory_bytes", 0) or 0
        )
        memory_gauge.labels(component="distance_oracle").set(
            stats.get("oracle_bytes", 0) or 0
        )
        budget_gauge = self._metrics.gauge(
            "repro_memory_budget_bytes",
            "Configured engine memory budget (0 = unbounded).",
        )
        budget_gauge.set(self._config.memory_budget_bytes or 0)

    def classification(self, schema: Any = None) -> ChordalityReport:
        """Return the chordality classification of a schema (cached)."""
        return self._context(schema)[0].report

    def cache_stats(self) -> dict:
        """Return schema-cache observability counters (hits/misses/size).

        When a persistent cache is configured (``config.cache_dir``) its
        counters are included under the ``"disk"`` key.
        """
        stats = self._engine.cache_stats()
        disk = self._disk_cache()
        if disk is not None:
            stats["disk"] = disk.stats()
        return stats

    def resource_stats(self) -> dict:
        """Return the service's *capacity* numbers for leak monitoring.

        Unlike :meth:`cache_stats` (traffic counters that grow forever
        by design), every value here measures something currently
        *held*: cached schema contexts, distance-oracle BFS rows, and
        persistent-store bytes.  Under a steady workload each must reach
        a plateau; the soak monitor (:mod:`repro.load.soak`) asserts
        exactly that.
        """
        cache = self._engine.cache
        contexts = {id(ctx): ctx for ctx in cache._contexts.values()}
        bound = self._bound_context
        if bound is not None:
            # the bound-schema memo bypasses the fingerprint LRU, so its
            # context (and oracle) may not be in the cache at all
            contexts.setdefault(id(bound), bound)
        seen_oracles: set = set()
        rows = 0
        for context in contexts.values():
            oracle = getattr(context, "_oracle", None)
            if oracle is not None and id(oracle) not in seen_oracles:
                seen_oracles.add(id(oracle))
                rows += oracle.rows_cached()
        disk = self._disk_cache()
        return {
            "schema_contexts": len(contexts),
            "oracle_rows": rows,
            "disk_bytes": disk.size_bytes() if disk is not None else 0,
        }

    # ------------------------------------------------------------------
    # persistent layer (opt-in via config.cache_dir)
    # ------------------------------------------------------------------
    def _disk_cache(self):
        """Return the lazily constructed DiskCache (``None`` when disabled)."""
        if self._config.cache_dir is None:
            return None
        if self._disk is None:
            # function-level import: repro.runtime sits above repro.api in
            # the layering, so the api package must not import it at load
            from repro.runtime.diskcache import DiskCache

            self._disk = DiskCache(self._config.cache_dir)
        return self._disk

    def _persistent_layer(self, schema: Any):
        """Return ``(disk, digest)`` for a request, or ``(None, None)``.

        The single gate every disk-touching path goes through: ``None``
        when no cache directory is configured, and also when the schema's
        digest is *ambiguous* (repr-colliding vertices, see
        :func:`~repro.engine.cache.schema_digest`) -- such digests are
        unique per call, so nothing stored under one could ever be
        replayed, and the append-only store must not fill with
        write-only entries.
        """
        from repro.engine.cache import digest_is_ambiguous

        disk = self._disk_cache()
        if disk is None:
            return None, None
        digest = self._digest_of(schema)
        if digest_is_ambiguous(digest):
            return None, None
        return disk, digest

    def _digest_of(self, schema: Any) -> str:
        """Return the structural digest of a schema handle (memoised when bound)."""
        from repro.engine.cache import schema_digest

        chosen = schema if schema is not None else self._schema
        if chosen is self._schema and chosen is not None:
            # same held-version rule as _context: an open editor
            # transaction freezes the version, so the memo is bypassed
            # and left untouched until the transaction ends
            version = getattr(chosen, "mutation_version", None)
            held = getattr(chosen, "_version_hold", False)
            if (
                not held
                and self._bound_digest is not None
                and version == self._bound_digest_version
            ):
                return self._bound_digest
            digest = schema_digest(self._engine.resolve_schema(chosen))
            if not held:
                self._bound_digest = digest
                self._bound_digest_version = version
            return digest
        return schema_digest(self._engine.resolve_schema(chosen))

    def _disk_lookup(self, disk, request: ConnectionRequest, digest: str):
        """Return the replayed :class:`ConnectionResult` for a disk hit, else ``None``."""
        from repro.runtime.codec import decode_result, request_key

        key = request_key(request, self._config)
        payload = disk.load_result(digest, key)
        if payload is None:
            return None
        try:
            replay = decode_result(
                payload,
                graph=self._engine.resolve_schema(
                    request.schema if request.schema is not None else self._schema
                ),
                request=request,
                result_cache="disk",
            )
        except Exception:
            # a structurally valid cache file with a semantically broken
            # payload (e.g. written by a buggy or foreign producer) is a
            # miss, never a crash -- the request is simply recomputed
            disk.invalid += 1
            return None
        self._disk_replays.inc()
        return replay

    def _disk_replay_scan(
        self, disk, materialised: "List[ConnectionRequest]", digest: str
    ) -> dict:
        """Return ``{position: replayed result}`` for every stored answer.

        The shared first stage of the serial and parallel batch paths:
        positions absent from the returned dict are the ones that must be
        computed (and then stored via :meth:`_disk_store`).
        """
        replayed: dict = {}
        for position, request in enumerate(materialised):
            replay = self._disk_lookup(disk, request, digest)
            if replay is not None:
                replayed[position] = replay
        return replayed

    def _disk_store(self, disk, request: ConnectionRequest, digest: str, result) -> None:
        """Persist one freshly computed result (best-effort, never raises)."""
        from repro.runtime.codec import encode_result, request_key

        disk.store_result(digest, request_key(request, self._config), encode_result(result))

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _materialise(self, request: RequestLike, **kwargs) -> ConnectionRequest:
        if isinstance(request, ConnectionRequest):
            if kwargs:
                raise ValidationError(
                    "pass either a ConnectionRequest or keyword arguments, not both"
                )
            return request
        return ConnectionRequest.of(request, **kwargs)

    def _context(self, schema: Any, digest: Optional[str] = None):
        chosen = schema if schema is not None else self._schema
        if chosen is None:
            raise ValidationError(
                "no schema: bind one at construction time "
                "(ConnectionService(schema=...)) or put it on the request"
            )
        if chosen is self._schema:
            # the bound schema's context is memoised and gated on the
            # graph's mutation_version (Relational/ER handles expose no
            # mutators and report None): repeat connect() calls skip the
            # graph rebuild AND the O(|V|+|A|) structural fingerprint,
            # while any structural mutation bumps the version and either
            # patches the previous context incrementally
            # (config.incremental, see _rebind_context) or falls back to
            # the fingerprinted LRU lookup -- mutation safety without a
            # per-query scan.
            # While a SchemaEditor transaction is OPEN the version is
            # held, so it cannot gate anything: the memo is neither
            # consulted nor updated, and every mid-transaction query is
            # re-derived against the live (uncommitted) structure --
            # otherwise a bind taken after one in-transaction edit would
            # keep answering past the next one
            version = getattr(chosen, "mutation_version", None)
            held = getattr(chosen, "_version_hold", False)
            if (
                not held
                and self._bound_context is not None
                and version == self._bound_version
            ):
                # keep cache_stats() consistent with the cache_hit flag
                self._engine.cache.count_external_hit()
                return self._bound_context, True
            context, hit = self._rebind_context(chosen, digest)
            if not held:
                self._bound_context = context
                self._bound_version = version
            return context, hit
        return self._build_context(chosen, digest)

    def _rebind_context(self, schema: Any, digest: Optional[str] = None):
        """Return ``(context, hit)`` for a bound schema whose version moved.

        With :attr:`~repro.api.config.ServiceConfig.incremental` enabled
        and a previous bound context available, the new context is derived
        by :meth:`~repro.engine.cache.SchemaContext.apply_delta` from the
        structural diff between the previous snapshot and the live graph:
        only the biconnected blocks the edits touched are reclassified,
        instead of paying the full Theorem 1 recognition.  The patched
        context is adopted into the engine's LRU (under its new
        fingerprint), so batch/parallel lookups and later services see it
        too.  A structurally no-op version bump keeps the previous
        context; anything unexpected falls back to the full
        :meth:`_build_context` path -- incremental rebinding is an
        optimisation, never a correctness dependency.
        """
        previous = self._bound_context
        if previous is None or not self._config.incremental:
            self._rebind_outcomes.labels(outcome="full").inc()
            return self._build_context(schema, digest)
        from repro.dynamic.delta import SchemaDelta

        try:
            resolved = self._engine.resolve_schema(schema)
            delta = SchemaDelta.between(previous.graph, resolved)
            if delta.is_empty():
                # version moved but the structure did not (e.g. an edit
                # transaction that cancelled out): the old context is
                # exactly right
                self._engine.cache.count_external_hit()
                self._rebind_outcomes.labels(outcome="noop").inc()
                return previous, True
            patch_started = perf_counter()
            context = previous.apply_delta(delta)
        except Exception:
            # correctness is unaffected (the full rebuild answers
            # identically) but the degradation must be visible:
            # cache_stats()["rebind_fallbacks"] counts these
            self._engine.cache.count_rebind_fallback()
            self._rebind_outcomes.labels(outcome="fallback").inc()
            return self._build_context(schema, digest)
        self._rebind_outcomes.labels(outcome="incremental").inc()
        self._rebind_patch_latency.observe(perf_counter() - patch_started)
        self._rebind_delta_size.observe(delta.size())
        self._engine.cache.adopt(context)
        # report a rebuild (cache_hit=False): the first answer after a
        # mutation pays incremental re-derivation, exactly as a fresh
        # context's first answer pays classification
        self._engine.cache.count_external_miss()
        return context, False

    def _build_context(self, schema: Any, digest: Optional[str] = None):
        """LRU lookup with a disk-seeded classification on cold misses.

        When the persistent cache holds the schema's classification report
        (stored by any earlier process), a cold context rebuild skips the
        Theorem 1 recognition entirely -- on large schemas that is the
        difference between milliseconds and tens of seconds.  The report
        file is only read on an actual LRU miss, and a caller that already
        computed the schema ``digest`` passes it in to avoid a second
        fingerprint pass.
        """
        resolved = self._engine.resolve_schema(schema)
        if digest is not None:
            disk = self._disk_cache()
        else:
            disk, digest = self._persistent_layer(schema)
        if disk is None:
            return self._engine.cache.lookup(resolved)
        chosen_digest = digest
        return self._engine.cache.lookup(
            resolved, report_factory=lambda: disk.load_report(chosen_digest)
        )

    def _plan(self, context: SchemaContext, request: ConnectionRequest, side: int) -> QueryPlan:
        # degenerate terminal sets get explicit ValidationErrors at the one
        # choke point every entry path shares (connect, batch, and the
        # parallel executor's worker-side batches)
        validate_terminals(context.graph, request.terminals)
        plan = plan_query(
            context,
            request.terminals,
            objective=request.objective,
            side=side,
            exact_terminal_limit=(
                request.exact_terminal_limit
                if request.exact_terminal_limit is not None
                else self._config.exact_terminal_limit
            ),
            exact_vertex_limit=(
                request.exact_vertex_limit
                if request.exact_vertex_limit is not None
                else self._config.exact_vertex_limit
            ),
        )
        if request.solver is not None:
            if request.solver not in self._engine.registry:
                raise ValidationError(
                    f"unknown solver {request.solver!r}; registered solvers: "
                    f"{', '.join(self._engine.registry.names())}"
                )
            # the registry declares what each solver optimises; forcing a
            # mismatched solver would return a tree whose ``optimal`` flag
            # certifies the wrong objective (undeclared custom solvers are
            # the caller's responsibility)
            supported = self._engine.registry.objectives_of(request.solver)
            if supported is not None and request.objective not in supported:
                raise ValidationError(
                    f"solver {request.solver!r} optimises objective(s) "
                    f"{tuple(supported)}; it cannot answer a "
                    f"{request.objective!r} request"
                )
            # explicit solver override: keep the planner's instance-class
            # verdict for provenance but disable fallbacks -- the caller
            # asked for this solver and nothing else (even when the planner
            # would have picked the same solver with fallbacks)
            plan = QueryPlan(
                solver=request.solver,
                fallbacks=(),
                instance_class=plan.instance_class,
                objective=plan.objective,
                exact=False,
                reason=f"explicit solver {request.solver!r} requested",
            )
        elif request.policy == "require-optimal" and not plan.exact:
            # the planner already knows only a heuristic applies; fail fast
            # instead of paying the full solve and rejecting afterwards
            # (the post-solve check in _finish still guards fallback paths)
            raise NotApplicableError(
                "policy 'require-optimal': the planner offers only the "
                f"heuristic {plan.solver!r} for terminals "
                f"{list(request.terminals)!r}"
            )
        return plan

    def _side_of(self, request: ConnectionRequest) -> int:
        return request.side if request.side is not None else self._config.default_side

    def _finish(
        self,
        request: ConnectionRequest,
        plan: QueryPlan,
        solution: SteinerSolution,
        cache_hit: bool,
        started: float,
    ) -> ConnectionResult:
        guarantee = Guarantee.OPTIMAL if solution.optimal else Guarantee.HEURISTIC
        if request.policy == "require-optimal" and guarantee is not Guarantee.OPTIMAL:
            raise NotApplicableError(
                "policy 'require-optimal': no exact solver path applies to the "
                f"request for terminals {list(request.terminals)!r} (got "
                f"heuristic answer from {solution.metadata.get('solver')!r})"
            )
        elapsed = perf_counter() - started
        # span-like identity: inside a request_scope (the server opens one
        # per RPC) the answer carries the scope's request id, tenant and
        # wall-clock phase breakdown, so logs and provenance agree
        scope = current_request()
        provenance = Provenance(
            solver=solution.metadata.get("solver", solution.method),
            instance_class=plan.instance_class.value,
            plan=plan.reason,
            cache_hit=cache_hit,
            fallback_from=solution.metadata.get("fallback_from"),
            wall_time_ms=elapsed * 1000.0,
            tags=dict(request.tags),
            request_id=scope.request_id if scope is not None else None,
            tenant=scope.tenant if scope is not None else None,
            phases=scope.phases_ms() if scope is not None else None,
            backend=self._backend_name,
        )
        outcome = {
            "instance_class": provenance.instance_class,
            "solver": provenance.solver,
            "guarantee": guarantee.value,
            "tenant": (
                scope.tenant if scope is not None and scope.tenant is not None else ""
            ),
        }
        self._queries_total.labels(**outcome).inc()
        self._query_latency.labels(**outcome).observe(elapsed)
        return ConnectionResult(
            request=request,
            solution=solution,
            guarantee=guarantee,
            provenance=provenance,
        )

    # ------------------------------------------------------------------
    # single request
    # ------------------------------------------------------------------
    def connect(self, request: RequestLike, **kwargs) -> ConnectionResult:
        """Answer one request; accepts a ``ConnectionRequest`` or terminals.

        Shorthand keyword arguments (``objective``, ``side``, ``schema``,
        ``solver``, ``policy``, limit overrides) are forwarded to
        :meth:`ConnectionRequest.of` when ``request`` is a bare terminal
        iterable.
        """
        req = self._materialise(request, **kwargs)
        started = perf_counter()
        disk, digest = self._persistent_layer(req.schema)
        if disk is not None:
            replay = self._disk_lookup(disk, req, digest)
            if replay is not None:
                return replay
        with phase("context"):
            context, cache_hit = self._context(req.schema, digest)
        side = self._side_of(req)
        with phase("plan"):
            plan = self._plan(context, req, side)
        with phase("solve"):
            solution = self._engine.execute_plan(
                context, plan, list(req.terminals), side
            )
        result = self._finish(req, plan, solution, cache_hit, started)
        if disk is not None:
            disk.store_report(digest, context.report)
            self._disk_store(disk, req, digest, result)
        return result

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------
    def batch(
        self,
        requests: Iterable[RequestLike],
        *,
        schema: Any = None,
        objective: str = "steiner",
        side: Optional[int] = None,
        policy: str = "auto",
    ) -> List[ConnectionResult]:
        """Answer many requests over one schema, amortising precomputation.

        ``requests`` may mix :class:`ConnectionRequest` objects and bare
        terminal iterables (the keyword arguments fill in the blanks for
        the latter).  Per-request ``schema`` fields must agree with the
        batch's schema -- the point of a batch is one shared context.

        Error semantics are all-or-nothing: the first failing request
        (validation, infeasibility, or a ``require-optimal`` policy
        rejection -- the raised error names its terminals) aborts the
        batch and no partial results are returned.  Callers that want
        per-query error isolation should loop over :meth:`connect`.
        """
        materialised = self._materialise_batch(
            requests, objective=objective, side=side, policy=policy
        )
        batch_schema = self._batch_schema(materialised, schema)
        disk, digest = self._persistent_layer(batch_schema)
        replayed = (
            self._disk_replay_scan(disk, materialised, digest)
            if disk is not None
            else {}
        )
        context = None
        cache_hit = False
        results: List[ConnectionResult] = []
        for position, request in enumerate(materialised):
            if position in replayed:
                results.append(replayed[position])
                continue
            if context is None:
                with phase("context"):
                    context, cache_hit = self._context(batch_schema, digest)
            query_started = perf_counter()
            request_side = self._side_of(request)
            with phase("plan"):
                plan = self._plan(context, request, request_side)
            with phase("solve"):
                solution = self._engine.execute_plan(
                    context, plan, list(request.terminals), request_side
                )
            result = self._finish(request, plan, solution, cache_hit, query_started)
            results.append(result)
            if disk is not None:
                self._disk_store(disk, request, digest, result)
            # every query after the first reuses the context by construction
            cache_hit = True
        if disk is not None and context is not None:
            disk.store_report(digest, context.report)
        return results

    def _materialise_batch(
        self,
        requests: Iterable[RequestLike],
        *,
        objective: str = "steiner",
        side: Optional[int] = None,
        policy: str = "auto",
    ) -> List[ConnectionRequest]:
        """Normalise a mixed batch into :class:`ConnectionRequest` objects.

        Shared by :meth:`batch` and the parallel executor
        (:class:`~repro.runtime.parallel.ParallelExecutor`) so both paths
        apply identical validation and keyword fill-in semantics.
        """
        requests = list(requests)
        if (objective != "steiner" or side is not None or policy != "auto") and any(
            isinstance(request, ConnectionRequest) for request in requests
        ):
            # mirror connect(): keyword fill-ins only apply to bare terminal
            # iterables; applying them to (or silently ignoring them for)
            # prebuilt requests would certify answers for the wrong objective
            raise ValidationError(
                "batch() keyword arguments only apply to bare terminal "
                "iterables; set objective/side/policy on the ConnectionRequest "
                "objects themselves"
            )
        return [
            request
            if isinstance(request, ConnectionRequest)
            else ConnectionRequest.of(
                request, objective=objective, side=side, policy=policy
            )
            for request in requests
        ]

    def _batch_schema(
        self, materialised: List[ConnectionRequest], schema: Any = None
    ) -> Any:
        """Return the single schema handle a batch answers (validating agreement)."""
        batch_schema = schema if schema is not None else self._schema
        batch_fingerprint = None
        for request in materialised:
            if request.schema is not None:
                if batch_schema is None:
                    batch_schema = request.schema
                elif request.schema is not batch_schema:
                    # distinct objects may still be the same schema
                    # structurally -- compare fingerprints, same as the LRU
                    from repro.engine.cache import schema_fingerprint

                    if batch_fingerprint is None:
                        batch_fingerprint = schema_fingerprint(
                            self._engine.resolve_schema(batch_schema)
                        )
                    candidate = schema_fingerprint(
                        self._engine.resolve_schema(request.schema)
                    )
                    if candidate != batch_fingerprint:
                        raise ValidationError(
                            "batch() answers one schema at a time; use connect() "
                            "for mixed-schema traffic"
                        )
        if batch_schema is None:
            raise ValidationError(
                "no schema: bind one at construction time "
                "(ConnectionService(schema=...)) or put it on the request"
            )
        return batch_schema

    # ------------------------------------------------------------------
    # streaming enumeration
    # ------------------------------------------------------------------
    def enumerate(
        self,
        request: RequestLike,
        *,
        budget: Optional[int] = None,
        max_extra: Optional[int] = None,
        **kwargs,
    ) -> EnumerationStream:
        """Return the stream of connections in non-decreasing size.

        ``budget`` caps how many connections the stream yields before
        pausing (resumable via
        :meth:`~repro.api.stream.EnumerationStream.extend_budget`; a pause
        and true exhaustion both raise ``StopIteration`` -- check
        :attr:`~repro.api.stream.EnumerationStream.paused` to tell them
        apart, see the class docstring for the full resume contract);
        ``max_extra`` bounds the auxiliary-vertex counts explored.  Both
        default to the service config.

        Only the ``"steiner"`` objective is streamable: connections are
        enumerated by total size, so a ``"side"`` request would get an
        ordering (and a rank-1 optimality claim) for the wrong objective.
        """
        req = self._materialise(request, **kwargs)
        if req.objective != "steiner":
            raise ValidationError(
                "enumerate() streams connections by total size (objective "
                f"'steiner'); objective {req.objective!r} is not streamable -- "
                "use connect(objective='side') for the side-minimal answer"
            )
        if (
            req.policy != "auto"
            or req.solver is not None
            or req.exact_terminal_limit is not None
            or req.exact_vertex_limit is not None
        ):
            raise ValidationError(
                "enumerate() deliberately yields non-minimal connections after "
                "rank 1 and always uses exhaustive enumeration; the 'policy', "
                "'solver' and exact-limit request fields do not apply -- use "
                "connect() for policy-gated or solver-pinned answers, and the "
                "'budget'/'max_extra' knobs to bound enumeration"
            )
        context, cache_hit = self._context(req.schema)
        report = context.report
        if report.steiner_tractable():
            instance_class = "chordal"
        else:
            instance_class = "general"
        return EnumerationStream(
            context.graph,
            req,
            instance_class=instance_class,
            cache_hit=cache_hit,
            budget=budget if budget is not None else self._config.enumeration_budget,
            max_extra=(
                max_extra
                if max_extra is not None
                else self._config.enumeration_max_extra
            ),
        )


_DEFAULT_SERVICE: Optional[ConnectionService] = None


def default_service() -> ConnectionService:
    """Return the process-wide default service (lazily constructed)."""
    global _DEFAULT_SERVICE
    if _DEFAULT_SERVICE is None:
        _DEFAULT_SERVICE = ConnectionService()
    return _DEFAULT_SERVICE
