"""`repro.api`: the typed service façade over the paper's scenario.

One entry point (:class:`ConnectionService`), typed request/result objects
(:class:`ConnectionRequest`, :class:`ConnectionResult` with
:class:`Guarantee` and :class:`Provenance`), streaming enumeration for
interactive disambiguation (:class:`EnumerationStream`) and one
configuration object (:class:`ServiceConfig`).  All solver dispatch flows
through :mod:`repro.engine`; the legacy per-query
:class:`~repro.core.connection.MinimalConnectionFinder` is a thin wrapper
over this package.
"""

from repro.api.config import ServiceConfig
from repro.api.context import RequestContext, current_request, request_scope
from repro.api.request import ConnectionRequest
from repro.api.result import ConnectionResult, Guarantee, Provenance
from repro.api.service import ConnectionService, default_service
from repro.api.stream import EnumerationStream

__all__ = [
    "ConnectionRequest",
    "ConnectionResult",
    "ConnectionService",
    "EnumerationStream",
    "Guarantee",
    "Provenance",
    "RequestContext",
    "ServiceConfig",
    "current_request",
    "default_service",
    "request_scope",
]
