"""Deterministic request plans: the schedule a load run executes.

:func:`build_plan` compiles a :class:`~repro.load.spec.LoadSpec` into a
flat list of :class:`PlannedOp` -- one per operation, each carrying its
arrival offset, target tenant, fully materialised payload (terminal
labels, batch entries, edit lists) and, for deliberate error traffic,
the error kind the server is *expected* to answer with.  Everything is
drawn from :class:`random.Random` instances seeded off the spec: the
same spec yields the same plan, byte for byte, which is what makes
verify-mode checksums comparable across runs, client counts, and
transports.

Three design rules keep concurrent execution deterministic:

* **Churn and query populations are disjoint.**  When the profile mixes
  ``mutate`` with query traffic, mutations go to *tokened* tenants and
  verified query ops to *token-free* tenants -- answers on a schema
  under concurrent mutation are not checksum-stable (enumeration tie
  order depends on the vertex set), so the planner never races the two
  on one tenant.
* **Mutations are structure-preserving churn.**  Every ``mutate`` op
  grows a pendant leaf (and later prunes a previously grown one), so a
  churn tenant's schema stays valid and size-bounded over arbitrarily
  long runs -- while the incremental rebind machinery
  (:mod:`repro.dynamic`) still pays for every edit.
* **Writes are ordered per tenant.**  Each ``mutate`` op carries a
  ``write_seq``; executors gate on it so a tenant's mutations apply in
  plan order regardless of which client thread picked them up (a prune
  references a leaf grown by an earlier op, and the reported schema
  version is only deterministic under a fixed apply order).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.datasets.generators import random_terminals
from repro.graphs.bipartite import BipartiteGraph
from repro.load.spec import LoadSpec

#: Label prefix for leaves grown by mutation traffic; tuples survive the
#: wire codec losslessly and can never collide with generator vertices.
LEAF_PREFIX = "load-leaf"


@dataclass(frozen=True)
class PlannedOp:
    """One scheduled operation of a load plan.

    Attributes
    ----------
    index:
        Plan position; the verify checksum is ordered by it.
    at:
        Arrival offset in seconds from the run's start (pacing only --
        the value never influences payloads or expected answers).
    tenant:
        Target tenant name.
    op:
        One of :data:`~repro.load.spec.PROFILE_OPS`.
    payload:
        Op-specific materialised arguments (see :mod:`repro.load.clients`).
    expect_error:
        The typed error kind deliberate error traffic must be answered
        with (``None`` for regular traffic).
    write_seq:
        Per-tenant mutation order (``None`` for non-mutating ops).
    """

    index: int
    at: float
    tenant: str
    op: str
    payload: Dict[str, Any] = field(default_factory=dict)
    expect_error: Optional[str] = None
    write_seq: Optional[int] = None


def arrival_offsets(schedule: str, rate: float, count: int, seed: int) -> List[float]:
    """Return ``count`` arrival offsets for one open-loop schedule.

    ``fixed`` spaces arrivals evenly at ``1 / rate``; ``poisson`` draws
    exponential gaps from a dedicated RNG.  Offsets are non-decreasing
    and start at 0 -- the first request goes out immediately.
    """
    if schedule == "fixed":
        return [index / rate for index in range(count)]
    rng = random.Random(seed)
    offsets: List[float] = []
    clock = 0.0
    for _ in range(count):
        offsets.append(clock)
        clock += rng.expovariate(rate)
    return offsets


def _weighted_ops(spec: LoadSpec, rng: random.Random, count: int) -> List[str]:
    """Draw the op sequence from the profile weights (order-stable)."""
    population: List[str] = []
    weights: List[int] = []
    for op, weight in spec.profile:
        if weight > 0:
            population.append(op)
            weights.append(weight)
    return rng.choices(population, weights=weights, k=count)


def _leaf_edits(
    graph: BipartiteGraph,
    tenant: str,
    rng: random.Random,
    grown: List[Any],
    leaf_counter: List[int],
) -> List[Dict[str, Any]]:
    """Build one answer-preserving edit transaction (grow, maybe prune).

    The new leaf attaches to an anchor drawn from the *initial* schema
    (so planning never has to track the evolved graph), on the opposite
    side.  Once two leaves are outstanding the oldest is pruned in the
    same transaction, keeping the schema's size bounded over long runs.
    """
    anchor = rng.choice(graph.sorted_vertices())
    leaf_counter[0] += 1
    leaf = (LEAF_PREFIX, tenant, leaf_counter[0])
    edits: List[Dict[str, Any]] = [
        {"op": "add_vertex", "vertex": leaf, "side": 3 - graph.side_of(anchor)},
        {"op": "add_edge", "u": leaf, "v": anchor},
    ]
    grown.append(leaf)
    if len(grown) > 2:
        victim = grown.pop(0)
        edits.append({"op": "remove_vertex", "vertex": victim})
    return edits


def build_plan(
    spec: LoadSpec, graphs: Dict[str, BipartiteGraph]
) -> List[PlannedOp]:
    """Compile a spec (plus its generated schemas) into a request plan.

    ``graphs`` maps tenant name to the tenant's *initial* schema --
    terminal sets are sampled from each schema's largest connected
    component, so every planned query is feasible.  The function is
    pure: no clocks, no global state, same inputs, same plan.
    """
    count = spec.arrival.requests
    arrival_seed = (
        spec.arrival.seed
        if spec.arrival.seed is not None
        else spec.seed * 1000003 + 101
    )
    offsets = arrival_offsets(
        spec.arrival.schedule, spec.arrival.rate, count, arrival_seed
    )
    rng = random.Random(spec.seed * 1000003 + 202)
    ops = _weighted_ops(spec, rng, count)

    tenant_names = [tenant.name for tenant in spec.tenants]
    tokened = [tenant.name for tenant in spec.tokened_tenants()]
    mutating = bool(dict(spec.profile).get("mutate", 0))
    # churn/query partition (see the module docstring): with mutation in
    # the mix, query ops avoid the tenants whose schemas are changing
    query_pool = (
        [name for name in tenant_names if name not in set(tokened)]
        if mutating
        else tenant_names
    ) or tenant_names
    by_name = {tenant.name: tenant for tenant in spec.tenants}
    write_seq: Dict[str, int] = {name: 0 for name in tenant_names}
    grown: Dict[str, List[Any]] = {name: [] for name in tenant_names}
    leaf_counter: Dict[str, List[int]] = {name: [0] for name in tenant_names}

    plan: List[PlannedOp] = []
    for index, (at, op) in enumerate(zip(offsets, ops)):
        if op in ("mutate", "bad_auth"):
            tenant = rng.choice(tokened)
        elif op == "over_quota":
            # quota bounces never touch the service, so any tenant works
            tenant = rng.choice(tenant_names)
        else:
            tenant = rng.choice(query_pool)
        graph = graphs[tenant]
        payload: Dict[str, Any] = {}
        expect_error: Optional[str] = None
        seq: Optional[int] = None
        if op == "connect":
            payload["terminals"] = random_terminals(graph, spec.terminals, rng=rng)
        elif op in ("batch", "interpret"):
            payload["queries"] = [
                random_terminals(graph, spec.terminals, rng=rng)
                for _ in range(spec.batch_size)
            ]
        elif op == "enumerate":
            payload["terminals"] = random_terminals(graph, spec.terminals, rng=rng)
            payload["budget"] = spec.enumerate_budget
            payload["pages"] = spec.enumerate_pages
        elif op == "mutate":
            payload["edits"] = _leaf_edits(
                graph, tenant, rng, grown[tenant], leaf_counter[tenant]
            )
            seq = write_seq[tenant]
            write_seq[tenant] += 1
        elif op == "bad_auth":
            # a would-be mutation with a wrong token: must bounce with
            # the typed ``auth`` kind before touching anything
            anchor = rng.choice(graph.sorted_vertices())
            payload["edits"] = [
                {
                    "op": "add_vertex",
                    "vertex": (LEAF_PREFIX, tenant, "denied"),
                    "side": 3 - graph.side_of(anchor),
                }
            ]
            payload["token"] = "invalid-" + (by_name[tenant].token or "")
            expect_error = "auth"
        elif op == "over_quota":
            # one request past the tenant's batch quota: must bounce
            # with the typed ``quota`` kind before any solving
            size = by_name[tenant].max_batch_requests + 1
            terminals = random_terminals(graph, min(2, spec.terminals), rng=rng)
            payload["queries"] = [terminals for _ in range(size)]
            expect_error = "quota"
        plan.append(
            PlannedOp(
                index=index,
                at=at,
                tenant=tenant,
                op=op,
                payload=payload,
                expect_error=expect_error,
                write_seq=seq,
            )
        )
    return plan


__all__ = ["PlannedOp", "arrival_offsets", "build_plan", "LEAF_PREFIX"]
