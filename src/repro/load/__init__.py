"""`repro.load`: an open-loop load generator and soak harness for the stack.

Benchmarks (``benchmarks/``) measure closed-loop single-client
throughput: one caller, one request in flight, wall time divided by
query count.  That number says nothing about tail latency under
contention, error behaviour at admission limits, or slow resource leaks
-- the failure modes a service for millions of users actually dies of.
This package is the other half of the measurement story:

* :class:`~repro.load.spec.LoadSpec` -- a JSON description of an
  open-loop experiment: tenants (schema generator + auth token +
  quotas), an arrival schedule (fixed-rate or Poisson, seeded -- no
  ambient clock in any decision), a mixed traffic profile
  (connect/batch/interpret, paged enumeration with
  resume-across-reconnect, authenticated mutation churn, deliberate
  auth/quota error traffic), latency and error **budgets**, and an
  optional soak section;
* :func:`~repro.load.schedule.build_plan` -- compiles a spec into a
  deterministic list of :class:`~repro.load.schedule.PlannedOp`: same
  spec, same plan, byte for byte;
* :mod:`~repro.load.clients` -- executes a plan with many concurrent
  simulated clients, either **in-process** (a
  :class:`~repro.server.registry.SchemaRegistry` driven directly, auth
  and quotas included) or **over the wire** (blocking
  :class:`~repro.server.client.ReproClient` sessions against a live
  :class:`~repro.server.app.ReproServer`);
* :class:`~repro.load.report.LoadReport` -- per-op p50/p99/p999
  latency, achieved-vs-offered rate, an error taxonomy keyed on the
  server's typed error kinds, and pass/fail verdicts for every declared
  budget;
* :mod:`~repro.load.soak` -- N cycles of churn+query+enumerate traffic
  with resource probes sampled between cycles
  (:class:`~repro.load.soak.SoakMonitor`), flagging monotonic growth in
  shm segments, oracle rows, schema contexts, or disk-cache bytes;
* :func:`~repro.load.runner.run_load` -- the orchestrator behind
  ``python -m repro load`` (see ``docs/load.md``);
* :mod:`~repro.load.chaos` -- chaos mode (``python -m repro load
  --chaos``): a supervisor SIGKILLs and restarts the server at points
  scheduled by a :class:`~repro.faults.plan.FaultPlan` while traffic is
  in flight, and the run passes only if the answer checksum still
  equals the serial oracle's (see ``docs/resilience.md``).

Verify mode replays every planned operation against a **serial oracle**
(one in-process client, plan order) and compares answer checksums, so a
load run doubles as an end-to-end correctness test: identical checksums
are guaranteed for the same seed regardless of client count or
transport.
"""

from repro.load.chaos import CHAOS_SPEC, chaos_spec, default_fault_plan, run_chaos
from repro.load.report import LoadReport, OpStats
from repro.load.runner import run_load, serial_oracle_checksum
from repro.load.schedule import PlannedOp, build_plan
from repro.load.soak import SoakMonitor, SoakReport, run_soak
from repro.load.spec import ArrivalSpec, Budgets, LoadSpec, SoakSpec, TenantSpec

__all__ = [
    "ArrivalSpec",
    "Budgets",
    "CHAOS_SPEC",
    "LoadReport",
    "LoadSpec",
    "OpStats",
    "PlannedOp",
    "SoakMonitor",
    "SoakReport",
    "SoakSpec",
    "TenantSpec",
    "build_plan",
    "chaos_spec",
    "default_fault_plan",
    "run_chaos",
    "run_load",
    "run_soak",
    "serial_oracle_checksum",
]
