"""Load-run orchestration: transports, verify oracle, smoke spec, server spawn.

:func:`run_load` is the one call behind ``python -m repro load``: build
the schemas, compile the plan, execute it over the chosen transport
(in-process registry or a live server), replay the serial verify
oracle, run the optional soak phase, and fold everything into a
:class:`~repro.load.report.LoadReport`.

The **serial oracle** (:func:`serial_oracle_checksum`) replays the exact
same plan through an :class:`~repro.load.clients.InProcessTransport` on
one thread in plan order -- no concurrency, no sockets, no pacing.  Its
checksum is the ground truth a concurrent run must reproduce: matching
checksums mean every answer (and every scripted rejection) that crossed
threads, sockets, reconnects and admission retries was byte-equivalent
to the quiet serial answer.

:data:`SMOKE_SPEC` is the committed CI acceptance spec -- small enough
for a pull-request gate, wide enough to cross every op kind, both error
paths, a soak phase and two tenant populations.
"""

from __future__ import annotations

import re
import subprocess
import sys
import time
from typing import Dict, Optional, Tuple

from repro.exceptions import ValidationError
from repro.load.clients import (
    InProcessTransport,
    WireTransport,
    run_plan,
    samples_checksum,
)
from repro.load.report import LoadReport, build_report
from repro.load.schedule import build_plan
from repro.load.spec import LoadSpec

#: The CI acceptance spec behind ``python -m repro load --smoke``.
SMOKE_SPEC: dict = {
    "name": "load-smoke",
    "tenants": [
        {
            "name": "alpha",
            "schema": {
                "generator": "random_62_chordal_graph",
                "params": {"blocks": 4, "rng": 11},
            },
        },
        {
            "name": "beta",
            "schema": {
                "generator": "random_alpha_schema_graph",
                "params": {"relations": 5, "rng": 7},
            },
        },
        {
            "name": "churn",
            "schema": {
                "generator": "random_62_chordal_graph",
                "params": {"blocks": 3, "rng": 5},
            },
            "token": "smoke-token",
            "limits": {"max_batch_requests": 8},
        },
    ],
    "arrival": {"schedule": "poisson", "rate": 60.0, "requests": 60, "seed": 1},
    "profile": {
        "connect": 5,
        "batch": 2,
        "interpret": 2,
        "enumerate": 2,
        "mutate": 2,
        "bad_auth": 1,
        "over_quota": 1,
    },
    "terminals": 3,
    "batch_size": 3,
    "enumerate": {"budget": 2, "pages": 2, "reconnect": True},
    "clients": 4,
    "seed": 42,
    "verify": True,
    "budgets": {
        "latency_ms": {
            "connect": {"p99": 10000.0},
            "interpret": {"p99": 15000.0},
        },
        "error_rates": {"internal": 0.0, "protocol": 0.0},
        "min_achieved_fraction": 0.02,
    },
    "soak": {
        "cycles": 3,
        "queries_per_cycle": 4,
        "edits_per_cycle": 1,
        "workers": 0,
        "warmup": 1,
    },
}

#: The starter spec printed by ``python -m repro load spec-template``.
TEMPLATE: dict = {
    "name": "multi-tenant-mixed",
    "tenants": [
        {
            "name": "queries-a",
            "schema": {
                "generator": "random_62_chordal_graph",
                "params": {"blocks": 12, "rng": 11},
            },
        },
        {
            "name": "queries-b",
            "schema": {
                "generator": "random_gamma_schema_graph",
                "params": {"blocks": 6, "rng": 23},
            },
        },
        {
            "name": "churn",
            "schema": {
                "generator": "random_62_chordal_graph",
                "params": {"blocks": 8, "rng": 5},
            },
            "token": "change-me",
            "limits": {"max_batch_requests": 64, "max_inflight": 32},
        },
    ],
    "arrival": {
        "schedule": "poisson",
        "rate": 200.0,
        "requests": 1000,
        "seed": 1,
    },
    "profile": {
        "connect": 6,
        "batch": 2,
        "interpret": 2,
        "enumerate": 2,
        "mutate": 1,
        "bad_auth": 1,
        "over_quota": 1,
    },
    "terminals": 3,
    "batch_size": 4,
    "enumerate": {"budget": 3, "pages": 3, "reconnect": True},
    "clients": 8,
    "seed": 42,
    "verify": True,
    "budgets": {
        "latency_ms": {
            "connect": {"p50": 250.0, "p99": 2000.0, "p999": 5000.0},
            "enumerate": {"p99": 5000.0},
        },
        "error_rates": {"internal": 0.0, "transport": 0.01},
        "min_achieved_fraction": 0.5,
    },
    "soak": {
        "cycles": 6,
        "queries_per_cycle": 8,
        "edits_per_cycle": 2,
        "workers": 0,
        "warmup": 2,
        "allowed_growth": {"disk_bytes": 0},
    },
}


def smoke_spec() -> LoadSpec:
    """The parsed CI smoke spec."""
    return LoadSpec.from_dict(SMOKE_SPEC)


def build_graphs(spec: LoadSpec) -> Dict[str, object]:
    """Generate every tenant's initial schema (deterministic per spec)."""
    return {tenant.name: tenant.build_schema() for tenant in spec.tenants}


def build_registry(spec: LoadSpec, *, metrics=None, cache_dir=None):
    """Build a fresh :class:`SchemaRegistry` populated with the spec's tenants.

    Schemas are regenerated (not shared with any other run), so every
    registry starts from the pristine state -- mutations in one run can
    never bleed into another.
    """
    from repro.metrics import MetricsRegistry
    from repro.server.registry import SchemaRegistry

    registry = SchemaRegistry(
        capacity=max(2, len(spec.tenants)),
        cache_dir=cache_dir,
        metrics=metrics if metrics is not None else MetricsRegistry(),
    )
    for tenant in spec.tenants:
        registry.create(
            tenant.name,
            tenant.build_schema(),
            config_overrides=dict(tenant.config),
            limits=dict(tenant.limits),
            token=tenant.token,
        )
    return registry


def serial_oracle_checksum(spec: LoadSpec, plan=None) -> str:
    """Replay the plan serially in-process; return the ground-truth checksum."""
    if plan is None:
        plan = build_plan(spec, build_graphs(spec))
    transport = InProcessTransport(build_registry(spec), spec)
    return samples_checksum(transport.run_serial(plan))


def run_load(
    spec: LoadSpec,
    *,
    mode: str = "in-process",
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    clients: Optional[int] = None,
    pace: bool = True,
    soak: bool = True,
) -> LoadReport:
    """Execute one load spec end to end and return its report.

    ``mode`` is ``"in-process"`` (drive a fresh registry on this
    process's threads) or ``"wire"`` (drive the server at
    ``host:port``; the spec's tenants are created there first,
    idempotently).  ``clients`` overrides the spec's concurrency,
    ``pace=False`` disables open-loop arrival pacing (as-fast-as-
    possible replay, used by benchmarks), and ``soak=False`` skips the
    spec's soak section (the CLI runs it; unit tests often don't).
    """
    if mode not in ("in-process", "wire"):
        raise ValidationError(f"unknown load mode {mode!r}")
    graphs = build_graphs(spec)
    plan = build_plan(spec, graphs)
    if mode == "wire":
        if port is None:
            raise ValidationError("wire mode needs the server's RPC port")
        _create_tenants(spec, host, port)
        transport = WireTransport(host, port, spec)
    else:
        transport = InProcessTransport(build_registry(spec), spec)
    try:
        samples, duration = run_plan(
            plan,
            transport,
            clients=clients if clients is not None else spec.clients,
            pace=pace,
        )
    finally:
        transport.close()
    checksum = samples_checksum(samples)
    oracle_checksum = ""
    if spec.verify:
        oracle_checksum = serial_oracle_checksum(spec, plan)
    soak_report = None
    if soak and spec.soak is not None:
        from repro.load.soak import run_soak

        soak_report = run_soak(spec)
    report = build_report(
        spec,
        mode,
        samples,
        duration,
        checksum=checksum,
        oracle_checksum=oracle_checksum,
        soak=soak_report,
    )
    return report


def _create_tenants(spec: LoadSpec, host: str, port: int) -> None:
    """Register the spec's tenants on a live server (idempotent)."""
    from repro.server.client import ReproClient

    with ReproClient(host, port) as client:
        for tenant in spec.tenants:
            client.create_schema(
                tenant.name,
                tenant.build_schema(),
                config=dict(tenant.config) or None,
                limits=dict(tenant.limits) or None,
                token=tenant.token,
                exist_ok=True,
            )


# ----------------------------------------------------------------------
# subprocess server management (the CLI's default wire target)
# ----------------------------------------------------------------------
_BANNER = re.compile(r"listening on ([\d.]+):(\d+)")


def spawn_server(
    *,
    cache_dir: Optional[str] = None,
    timeout: float = 30.0,
    port: int = 0,
) -> Tuple[subprocess.Popen, str, int]:
    """Start ``python -m repro serve``; return (proc, host, port).

    ``port=0`` (the default) binds a free port; the chaos supervisor
    passes the *previous* incarnation's port so clients holding a dead
    address reconnect to the restarted server without rediscovery.
    Reads the child's stdout until the listening banner appears.  The
    caller owns the process -- pass it to :func:`stop_server` when done.
    """
    command = [sys.executable, "-m", "repro", "serve", "--port", str(port)]
    if cache_dir is not None:
        command += ["--cache-dir", cache_dir]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                raise ValidationError(
                    "server subprocess exited before listening "
                    f"(code {process.returncode})"
                )
            time.sleep(0.05)
            continue
        match = _BANNER.search(line)
        if match:
            return process, match.group(1), int(match.group(2))
    process.kill()
    raise ValidationError("server subprocess did not print its banner in time")


def stop_server(process: subprocess.Popen, timeout: float = 15.0) -> int:
    """Drain a spawned server (SIGTERM, bounded wait); return its exit code."""
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=5.0)
    if process.stdout is not None:
        process.stdout.close()
    return process.returncode if process.returncode is not None else -1


__all__ = [
    "SMOKE_SPEC",
    "TEMPLATE",
    "build_graphs",
    "build_registry",
    "run_load",
    "serial_oracle_checksum",
    "smoke_spec",
    "spawn_server",
    "stop_server",
]
