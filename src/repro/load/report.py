"""Typed load-run results: latency quantiles, error taxonomy, budgets.

A load run produces a stream of :class:`OpSample` records (one per
executed operation).  :func:`build_report` folds them into a
:class:`LoadReport`: per-op :class:`OpStats` with p50/p99/p999 latency,
the achieved-vs-offered arrival rate, an error taxonomy keyed on the
server's typed error kinds, and -- via :func:`evaluate_budgets` -- a
list of human-readable budget violations.  ``LoadReport.ok()`` is the
single pass/fail bit the CLI and CI gate on.

Quantiles use the nearest-rank method (ceil(q*n)-th smallest), so a
report is an exact function of the sample multiset -- no interpolation,
no floating-point drift between platforms.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.load.spec import QUANTILE_FIELDS, Budgets, LoadSpec


@dataclass(frozen=True)
class OpSample:
    """One executed operation, as recorded by a load client.

    ``error`` holds the typed error kind when the operation failed (or
    bounced with an *expected* error), ``""`` on success.  ``digest`` is
    the canonical answer digest fed into the verify checksum (``None``
    for ops excluded from verification, e.g. admission retries that
    eventually succeeded keep their success digest, but a sample that
    exhausted retries carries ``None``).  ``retries`` counts admission
    bounces absorbed before the final outcome.
    """

    index: int
    op: str
    tenant: str
    latency_s: float
    error: str = ""
    expected: bool = False
    digest: Optional[str] = None
    retries: int = 0


def quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of ``values`` (``q`` in ``(0, 1]``).

    Returns ``0.0`` for an empty sequence so per-op stats stay total.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class OpStats:
    """Latency and outcome statistics for one operation type."""

    op: str
    count: int
    errors: int
    p50_ms: float
    p99_ms: float
    p999_ms: float
    mean_ms: float

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-ready mapping of the stats."""
        return {
            "op": self.op,
            "count": self.count,
            "errors": self.errors,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "mean_ms": self.mean_ms,
        }


@dataclass(frozen=True)
class LoadReport:
    """The complete result of one load run.

    ``error_taxonomy`` counts every typed error kind observed,
    *including* deliberate traffic (``auth``/``quota`` bounces the plan
    asked for); ``unexpected_errors`` counts only failures the plan did
    not script, and it is what error-rate budgets are evaluated
    against.  ``checksum``/``oracle_checksum`` carry the verify-mode
    digests (empty strings when verification was off).
    """

    spec_name: str
    mode: str
    requests: int
    duration_s: float
    offered_rate: float
    achieved_rate: float
    op_stats: Tuple[OpStats, ...]
    error_taxonomy: Tuple[Tuple[str, int], ...]
    unexpected_errors: int
    retries: int
    budget_violations: Tuple[str, ...]
    checksum: str = ""
    oracle_checksum: str = ""
    soak: Optional[object] = None
    extra: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    def ok(self) -> bool:
        """Return ``True`` when every declared budget held and verify matched."""
        if self.budget_violations:
            return False
        if self.oracle_checksum and self.checksum != self.oracle_checksum:
            return False
        soak = self.soak
        if soak is not None and not soak.ok():  # type: ignore[attr-defined]
            return False
        return True

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-ready mapping of the report."""
        data: Dict[str, object] = {
            "spec": self.spec_name,
            "mode": self.mode,
            "requests": self.requests,
            "duration_s": self.duration_s,
            "offered_rate": self.offered_rate,
            "achieved_rate": self.achieved_rate,
            "ops": [stats.to_dict() for stats in self.op_stats],
            "error_taxonomy": dict(self.error_taxonomy),
            "unexpected_errors": self.unexpected_errors,
            "retries": self.retries,
            "budget_violations": list(self.budget_violations),
            "checksum": self.checksum,
            "oracle_checksum": self.oracle_checksum,
            "ok": self.ok(),
        }
        if self.soak is not None:
            data["soak"] = self.soak.to_dict()  # type: ignore[attr-defined]
        for key, value in self.extra:
            data[key] = value
        return data

    def to_json(self) -> str:
        """Serialise the report to pretty-printed JSON."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        """Render the report as an aligned human-readable summary."""
        lines = [
            f"load report: {self.spec_name} [{self.mode}]",
            (
                f"  requests {self.requests}  duration {self.duration_s:.2f}s"
                f"  offered {self.offered_rate:.1f}/s"
                f"  achieved {self.achieved_rate:.1f}/s"
            ),
            f"  {'op':<12}{'count':>7}{'errors':>8}"
            f"{'p50ms':>10}{'p99ms':>10}{'p999ms':>10}",
        ]
        for stats in self.op_stats:
            lines.append(
                f"  {stats.op:<12}{stats.count:>7}{stats.errors:>8}"
                f"{stats.p50_ms:>10.2f}{stats.p99_ms:>10.2f}{stats.p999_ms:>10.2f}"
            )
        taxonomy = ", ".join(f"{kind}={count}" for kind, count in self.error_taxonomy)
        lines.append(f"  errors: {taxonomy or 'none'}"
                     f" (unexpected: {self.unexpected_errors},"
                     f" admission retries: {self.retries})")
        if self.oracle_checksum:
            verdict = "MATCH" if self.checksum == self.oracle_checksum else "MISMATCH"
            lines.append(f"  verify: {verdict} ({self.checksum[:16]}…)")
        if self.soak is not None:
            lines.append(self.soak.render_text())  # type: ignore[attr-defined]
        if self.budget_violations:
            lines.append("  budget violations:")
            lines.extend(f"    - {violation}" for violation in self.budget_violations)
        else:
            lines.append("  budgets: all within budget")
        lines.append(f"  verdict: {'PASS' if self.ok() else 'FAIL'}")
        return "\n".join(lines)


def _op_stats(op: str, samples: List[OpSample]) -> OpStats:
    """Fold one op's samples into an :class:`OpStats`."""
    latencies = [sample.latency_s * 1000.0 for sample in samples]
    errors = sum(1 for sample in samples if sample.error)
    return OpStats(
        op=op,
        count=len(samples),
        errors=errors,
        p50_ms=quantile(latencies, 0.50),
        p99_ms=quantile(latencies, 0.99),
        p999_ms=quantile(latencies, 0.999),
        mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
    )


def evaluate_budgets(
    budgets: Budgets,
    op_stats: Sequence[OpStats],
    unexpected_by_kind: Dict[str, int],
    requests: int,
    offered_rate: float,
    achieved_rate: float,
) -> List[str]:
    """Check every declared budget; return one message per violation.

    Latency budgets compare an op's quantile field (``p50``/``p99``/
    ``p999``) against a millisecond ceiling; error budgets bound the
    *unexpected* error fraction per kind (``"*"`` matches the total
    across kinds); ``min_achieved_fraction`` guards against the
    generator falling behind the offered schedule.
    """
    violations: List[str] = []
    by_op = {stats.op: stats for stats in op_stats}
    valid_fields = {name for name, _ in QUANTILE_FIELDS}
    for op, limits in budgets.latency_ms:
        stats = by_op.get(op)
        if stats is None or stats.count == 0:
            violations.append(f"latency budget on {op!r}: no samples recorded")
            continue
        for fieldname, ceiling in limits:
            if fieldname not in valid_fields:
                continue
            observed = getattr(stats, f"{fieldname}_ms")
            if observed > ceiling:
                violations.append(
                    f"{op}.{fieldname} = {observed:.2f}ms exceeds budget {ceiling:.2f}ms"
                )
    total_unexpected = sum(unexpected_by_kind.values())
    for kind, ceiling in budgets.error_rates:
        count = total_unexpected if kind == "*" else unexpected_by_kind.get(kind, 0)
        fraction = count / requests if requests else 0.0
        if fraction > ceiling:
            violations.append(
                f"error rate for {kind!r} = {fraction:.4f}"
                f" ({count}/{requests}) exceeds budget {ceiling:.4f}"
            )
    if budgets.min_achieved_fraction is not None and offered_rate > 0:
        fraction = achieved_rate / offered_rate
        if fraction < budgets.min_achieved_fraction:
            violations.append(
                f"achieved rate {achieved_rate:.1f}/s is"
                f" {fraction:.2f} of offered {offered_rate:.1f}/s,"
                f" below budget {budgets.min_achieved_fraction:.2f}"
            )
    return violations


def build_report(
    spec: LoadSpec,
    mode: str,
    samples: Sequence[OpSample],
    duration_s: float,
    checksum: str = "",
    oracle_checksum: str = "",
    soak: Optional[object] = None,
) -> LoadReport:
    """Fold executed samples into a budget-evaluated :class:`LoadReport`."""
    by_op: Dict[str, List[OpSample]] = {}
    taxonomy: Dict[str, int] = {}
    unexpected: Dict[str, int] = {}
    retries = 0
    for sample in samples:
        by_op.setdefault(sample.op, []).append(sample)
        retries += sample.retries
        if sample.error:
            taxonomy[sample.error] = taxonomy.get(sample.error, 0) + 1
            if not sample.expected:
                unexpected[sample.error] = unexpected.get(sample.error, 0) + 1
    op_stats = tuple(_op_stats(op, by_op[op]) for op in sorted(by_op))
    offered = spec.arrival.rate
    achieved = len(samples) / duration_s if duration_s > 0 else 0.0
    violations = evaluate_budgets(
        spec.budgets, op_stats, unexpected, len(samples), offered, achieved
    )
    if soak is not None and not soak.ok():  # type: ignore[attr-defined]
        violations = list(violations) + [
            f"soak leak: {leak}" for leak in soak.leaks  # type: ignore[attr-defined]
        ]
    return LoadReport(
        spec_name=spec.name,
        mode=mode,
        requests=len(samples),
        duration_s=duration_s,
        offered_rate=offered,
        achieved_rate=achieved,
        op_stats=op_stats,
        error_taxonomy=tuple(sorted(taxonomy.items())),
        unexpected_errors=sum(unexpected.values()),
        retries=retries,
        budget_violations=tuple(violations),
        checksum=checksum,
        oracle_checksum=oracle_checksum,
        soak=soak,
    )


__all__ = [
    "LoadReport",
    "OpSample",
    "OpStats",
    "build_report",
    "evaluate_budgets",
    "quantile",
]
