"""`LoadSpec`: the JSON description of one open-loop load experiment.

A load spec is data, in the same sense a
:class:`~repro.runtime.workload.WorkloadSpec` is: generators come from
an allowlist, every field is validated up front with a typed
:class:`~repro.exceptions.ValidationError`, and two specs that parse
equal produce byte-identical request plans
(:func:`~repro.load.schedule.build_plan` is a pure function of the
spec).  Wall clocks appear only in *pacing* and *measurement* -- never
in any decision that affects which requests are sent or what answers
are expected.

Spec shape (see ``docs/load.md`` for the full schema)::

    {"name": "smoke",
     "tenants": [{"name": "t0",
                  "schema": {"generator": "random_62_chordal_graph",
                             "params": {"blocks": 4, "rng": 3}}},
                 {"name": "churn",
                  "schema": {"generator": "random_62_chordal_graph",
                             "params": {"blocks": 3, "rng": 5}},
                  "token": "s3cret",
                  "limits": {"max_batch_requests": 64}}],
     "arrival": {"schedule": "poisson", "rate": 200.0,
                 "requests": 120, "seed": 1},
     "profile": {"connect": 6, "batch": 2, "interpret": 2,
                 "enumerate": 2, "mutate": 1, "bad_auth": 1,
                 "over_quota": 1},
     "terminals": 3, "batch_size": 4,
     "enumerate": {"budget": 2, "pages": 3, "reconnect": true},
     "clients": 4, "seed": 42, "verify": true,
     "budgets": {"latency_ms": {"connect": {"p50": 250, "p99": 1000}},
                 "error_rates": {"internal": 0.0},
                 "min_achieved_fraction": 0.05},
     "soak": {"cycles": 4, "queries_per_cycle": 6,
              "edits_per_cycle": 1, "workers": 0,
              "allowed_growth": {"shm_segments": 0}}}
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ValidationError
from repro.runtime.workload import GENERATORS

#: Operation kinds a traffic profile may weight.  The first five are the
#: service surface; ``bad_auth`` and ``over_quota`` are *deliberate*
#: error traffic whose typed rejection kind is part of the verified
#: behaviour (they exercise the auth and quota layers under load).
PROFILE_OPS = (
    "connect",
    "batch",
    "interpret",
    "enumerate",
    "mutate",
    "bad_auth",
    "over_quota",
)

#: Latency quantiles a budget may bound, as (field name, quantile).
QUANTILE_FIELDS = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))

#: Resource probes a soak section may bound (see :mod:`repro.load.soak`).
SOAK_PROBES = ("shm_segments", "oracle_rows", "schema_contexts", "disk_bytes")


def _require(condition: bool, message: str) -> None:
    """Raise a :class:`ValidationError` unless ``condition`` holds."""
    if not condition:
        raise ValidationError(message)


def _check_unknown(data: Dict[str, Any], allowed, where: str) -> None:
    """Reject unknown keys -- a typo must not silently run with defaults."""
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ValidationError(f"unknown {where} field(s): {unknown}")


@dataclass(frozen=True)
class TenantSpec:
    """One simulated tenant: a generated schema plus auth/quota settings.

    Attributes
    ----------
    name:
        Tenant name, unique within the spec.
    generator / params:
        Schema generator (key into the workload allowlist) and its
        keyword arguments, exactly as in
        :class:`~repro.runtime.workload.WorkloadSpec`.
    token:
        Optional mutation token.  A tokened tenant receives the spec's
        authenticated ``mutate`` traffic and is eligible for
        ``bad_auth`` error traffic.  When the profile mixes mutation
        with query traffic, tokened tenants form the *churn* population
        and token-free tenants serve the verified query traffic --
        answers on a schema under concurrent mutation are not
        checksum-stable, so the planner keeps the populations disjoint.
    config / limits:
        Per-tenant :class:`~repro.api.config.ServiceConfig` overrides
        and :class:`~repro.server.registry.TenantLimits` fields,
        forwarded verbatim to ``create_schema``.
    """

    name: str
    generator: str
    params: Tuple[Tuple[str, Any], ...]
    token: Optional[str] = None
    config: Tuple[Tuple[str, Any], ...] = ()
    limits: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        _require(bool(self.name), "tenant name must be a non-empty string")
        if self.generator not in GENERATORS:
            raise ValidationError(
                f"unknown schema generator {self.generator!r}; known: "
                f"{sorted(GENERATORS)}"
            )
        try:
            inspect.signature(GENERATORS[self.generator]).bind(**dict(self.params))
        except TypeError as error:
            raise ValidationError(
                f"tenant {self.name!r}: invalid params for generator "
                f"{self.generator!r}: {error}"
            ) from error

    def build_schema(self):
        """Generate this tenant's schema graph (deterministic)."""
        return GENERATORS[self.generator](**dict(self.params))

    @property
    def max_batch_requests(self) -> int:
        """The tenant's batch-size quota (registry default when unset)."""
        from repro.server.registry import TenantLimits

        return dict(self.limits).get(
            "max_batch_requests", TenantLimits().max_batch_requests
        )

    def to_dict(self) -> dict:
        """Return the JSON form of this tenant."""
        data: Dict[str, Any] = {
            "name": self.name,
            "schema": {"generator": self.generator, "params": dict(self.params)},
        }
        if self.token is not None:
            data["token"] = self.token
        if self.config:
            data["config"] = dict(self.config)
        if self.limits:
            data["limits"] = dict(self.limits)
        return data


@dataclass(frozen=True)
class ArrivalSpec:
    """Open-loop arrival control: how many requests, offered at what rate.

    Attributes
    ----------
    schedule:
        ``"fixed"`` (request *i* arrives at ``i / rate``) or
        ``"poisson"`` (exponential inter-arrival gaps drawn from the
        seeded RNG -- the classic open-system arrival model).
    rate:
        Offered rate in requests per second.  Arrivals are *scheduled*,
        not gated on completions: a slow server falls behind the
        schedule instead of silently slowing the generator down
        (no coordinated omission).
    requests:
        Total operations in the plan.  Counting requests instead of
        seconds keeps the plan -- and therefore the verify checksum --
        independent of wall time.
    seed:
        Arrival RNG seed (derived from the spec seed when ``None``).
    """

    schedule: str = "fixed"
    rate: float = 100.0
    requests: int = 100
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        _require(
            self.schedule in ("fixed", "poisson"),
            f"arrival schedule must be 'fixed' or 'poisson', got {self.schedule!r}",
        )
        _require(self.rate > 0, "arrival rate must be > 0")
        _require(self.requests >= 1, "arrival requests must be >= 1")


@dataclass(frozen=True)
class Budgets:
    """Declared pass/fail envelopes for a load run.

    Attributes
    ----------
    latency_ms:
        Per-op quantile bounds, as ``((op, ((field, ms), ...)), ...)``
        -- e.g. ``connect`` p99 under 500 ms.  An op with traffic but no
        budget is reported, not gated.
    error_rates:
        Maximum fraction of operations allowed to end in each error
        kind (``internal``, ``admission``, ``transport``, ...).  Kinds
        produced by *deliberate* error traffic (``auth``, ``quota``)
        are only violations if budgeted tighter than the profile sends.
    min_achieved_fraction:
        Lower bound on achieved rate / offered rate; catches a
        generator that cannot keep its own schedule (results would be
        closed-loop numbers wearing an open-loop label).
    """

    latency_ms: Tuple[Tuple[str, Tuple[Tuple[str, float], ...]], ...] = ()
    error_rates: Tuple[Tuple[str, float], ...] = ()
    min_achieved_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        quantile_names = {name for name, _ in QUANTILE_FIELDS}
        for op, bounds in self.latency_ms:
            _require(
                op in PROFILE_OPS,
                f"latency budget for unknown op {op!r}; known: {list(PROFILE_OPS)}",
            )
            for fieldname, limit in bounds:
                _require(
                    fieldname in quantile_names,
                    f"latency budget field must be one of {sorted(quantile_names)}, "
                    f"got {fieldname!r}",
                )
                _require(limit > 0, f"latency budget {op}.{fieldname} must be > 0")
        for kind, fraction in self.error_rates:
            _require(
                0.0 <= fraction <= 1.0,
                f"error-rate budget for {kind!r} must be within [0, 1]",
            )
        if self.min_achieved_fraction is not None:
            _require(
                0.0 < self.min_achieved_fraction <= 1.0,
                "min_achieved_fraction must be within (0, 1]",
            )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Budgets":
        """Build budgets from their JSON form."""
        _check_unknown(
            data, ("latency_ms", "error_rates", "min_achieved_fraction"), "budget"
        )
        latency = data.get("latency_ms", {})
        _require(isinstance(latency, dict), "'budgets.latency_ms' must be an object")
        latency_items = []
        for op, bounds in sorted(latency.items()):
            _require(
                isinstance(bounds, dict),
                f"'budgets.latency_ms.{op}' must be an object of quantile bounds",
            )
            latency_items.append(
                (op, tuple((name, float(ms)) for name, ms in sorted(bounds.items())))
            )
        error_rates = data.get("error_rates", {})
        _require(
            isinstance(error_rates, dict), "'budgets.error_rates' must be an object"
        )
        fraction = data.get("min_achieved_fraction")
        return cls(
            latency_ms=tuple(latency_items),
            error_rates=tuple(
                (kind, float(value)) for kind, value in sorted(error_rates.items())
            ),
            min_achieved_fraction=None if fraction is None else float(fraction),
        )

    def to_dict(self) -> dict:
        """Return the JSON form of the budgets."""
        data: Dict[str, Any] = {}
        if self.latency_ms:
            data["latency_ms"] = {
                op: dict(bounds) for op, bounds in self.latency_ms
            }
        if self.error_rates:
            data["error_rates"] = dict(self.error_rates)
        if self.min_achieved_fraction is not None:
            data["min_achieved_fraction"] = self.min_achieved_fraction
        return data


@dataclass(frozen=True)
class SoakSpec:
    """The soak section: repeated churn+query+enumerate cycles with probes.

    Attributes
    ----------
    cycles:
        How many churn+query+enumerate cycles to run.  Resource probes
        are sampled once per cycle.
    queries_per_cycle / edits_per_cycle / enumerate_budget / terminals:
        The per-cycle traffic shape.  Every edit is a grow-then-prune
        pair, so the schema returns to its starting structure each
        cycle -- a correctly behaving stack reaches a resource plateau,
        and anything that keeps climbing is a leak.
    workers:
        Process-pool width for the per-cycle parallel batch (``0``
        skips the pool and the ``shm_segments`` probe).
    warmup:
        Samples ignored before growth is measured (caches legitimately
        fill during the first cycles).
    allowed_growth:
        Per-probe growth allowance beyond the warmup baseline
        (default 0 for every sampled probe).
    seed:
        Soak traffic seed (derived from the spec seed when ``None``).
    """

    cycles: int = 4
    queries_per_cycle: int = 6
    edits_per_cycle: int = 1
    enumerate_budget: int = 2
    terminals: int = 3
    workers: int = 0
    warmup: int = 1
    allowed_growth: Tuple[Tuple[str, float], ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        _require(self.cycles >= 2, "soak cycles must be >= 2 (growth needs a slope)")
        _require(self.queries_per_cycle >= 1, "soak queries_per_cycle must be >= 1")
        _require(self.edits_per_cycle >= 0, "soak edits_per_cycle must be >= 0")
        _require(self.enumerate_budget >= 1, "soak enumerate_budget must be >= 1")
        _require(self.terminals >= 1, "soak terminals must be >= 1")
        _require(self.workers >= 0, "soak workers must be >= 0")
        _require(0 <= self.warmup < self.cycles, "soak warmup must be < cycles")
        for probe, allowance in self.allowed_growth:
            _require(
                probe in SOAK_PROBES,
                f"unknown soak probe {probe!r}; known: {list(SOAK_PROBES)}",
            )
            _require(allowance >= 0, f"soak allowance for {probe!r} must be >= 0")

    def to_dict(self) -> dict:
        """Return the JSON form of the soak section."""
        data: Dict[str, Any] = {
            "cycles": self.cycles,
            "queries_per_cycle": self.queries_per_cycle,
            "edits_per_cycle": self.edits_per_cycle,
            "enumerate_budget": self.enumerate_budget,
            "terminals": self.terminals,
            "workers": self.workers,
            "warmup": self.warmup,
        }
        if self.allowed_growth:
            data["allowed_growth"] = dict(self.allowed_growth)
        if self.seed is not None:
            data["seed"] = self.seed
        return data


@dataclass(frozen=True)
class LoadSpec:
    """A complete, JSON-serialisable open-loop load experiment.

    Attributes
    ----------
    name:
        Free-form label, echoed into the report.
    tenants:
        The simulated tenant population (at least one).
    arrival:
        The open-loop :class:`ArrivalSpec`.
    profile:
        Traffic-mix weights over :data:`PROFILE_OPS` (relative integer
        weights; zero-weight ops are simply absent).
    terminals / batch_size:
        Terminal-set size per query and requests per ``batch`` /
        ``interpret`` op.
    enumerate_budget / enumerate_pages / reconnect:
        Paged-enumeration shape: page size, pages pulled per op, and
        whether wire-mode sessions resume each follow-up page on a
        *fresh connection* via the continuation token.
    clients:
        Concurrent simulated clients (the executor's thread count).
    seed:
        Master seed every derived RNG hangs off.
    verify:
        Replay the plan against the serial oracle and require matching
        checksums (see :func:`~repro.load.runner.serial_oracle_checksum`).
    budgets:
        The declared :class:`Budgets`.
    soak:
        Optional :class:`SoakSpec` (``None`` = no soak phase).
    """

    name: str
    tenants: Tuple[TenantSpec, ...]
    arrival: ArrivalSpec
    profile: Tuple[Tuple[str, int], ...]
    terminals: int = 3
    batch_size: int = 4
    enumerate_budget: int = 2
    enumerate_pages: int = 3
    reconnect: bool = True
    clients: int = 4
    seed: int = 0
    verify: bool = True
    budgets: Budgets = field(default_factory=Budgets)
    soak: Optional[SoakSpec] = None

    def __post_init__(self) -> None:
        _require(bool(self.tenants), "a load spec needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        _require(len(set(names)) == len(names), "tenant names must be unique")
        weights = dict(self.profile)
        _check_unknown(weights, PROFILE_OPS, "profile")
        for op, weight in weights.items():
            _require(
                isinstance(weight, int) and weight >= 0,
                f"profile weight for {op!r} must be a non-negative integer",
            )
        service_ops = ("connect", "batch", "interpret", "enumerate", "mutate")
        _require(
            any(weights.get(op, 0) > 0 for op in service_ops),
            "profile needs at least one positive service-op weight",
        )
        if weights.get("bad_auth", 0) > 0 or weights.get("mutate", 0) > 0:
            _require(
                any(tenant.token is not None for tenant in self.tenants),
                "'mutate' and 'bad_auth' traffic need at least one tenant "
                "with a token (mutation is authenticated)",
            )
        query_ops = ("connect", "batch", "interpret", "enumerate")
        if weights.get("mutate", 0) > 0 and any(
            weights.get(op, 0) > 0 for op in query_ops
        ):
            _require(
                any(tenant.token is None for tenant in self.tenants),
                "mixing 'mutate' with query traffic needs at least one "
                "token-free tenant: tokened tenants are the churn "
                "population, token-free tenants serve the verified query "
                "traffic (answers on a schema under concurrent mutation "
                "are not checksum-stable)",
            )
        _require(self.terminals >= 1, "terminals must be >= 1")
        _require(self.batch_size >= 1, "batch_size must be >= 1")
        _require(self.enumerate_budget >= 1, "enumerate_budget must be >= 1")
        _require(self.enumerate_pages >= 1, "enumerate_pages must be >= 1")
        _require(self.clients >= 1, "clients must be >= 1")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LoadSpec":
        """Build a spec from its dict/JSON form (validating everything)."""
        _require(isinstance(data, dict), "a load spec must be a JSON object")
        _check_unknown(
            data,
            (
                "name", "tenants", "arrival", "profile", "terminals",
                "batch_size", "enumerate", "clients", "seed", "verify",
                "budgets", "soak",
            ),
            "load spec",
        )
        tenants_data = data.get("tenants")
        _require(
            isinstance(tenants_data, list) and bool(tenants_data),
            "spec needs 'tenants': a non-empty list",
        )
        tenants = []
        for entry in tenants_data:
            _require(isinstance(entry, dict), "each tenant must be an object")
            _check_unknown(
                entry, ("name", "schema", "token", "config", "limits"), "tenant"
            )
            schema = entry.get("schema")
            _require(
                isinstance(schema, dict) and "generator" in schema,
                "each tenant needs a 'schema' object with a 'generator' name",
            )
            params = schema.get("params", {})
            _require(isinstance(params, dict), "'schema.params' must be an object")
            tenants.append(
                TenantSpec(
                    name=str(entry.get("name", "")),
                    generator=schema["generator"],
                    params=tuple(sorted(params.items())),
                    token=entry.get("token"),
                    config=tuple(sorted((entry.get("config") or {}).items())),
                    limits=tuple(sorted((entry.get("limits") or {}).items())),
                )
            )
        arrival_data = data.get("arrival", {})
        _require(isinstance(arrival_data, dict), "'arrival' must be an object")
        _check_unknown(
            arrival_data, ("schedule", "rate", "requests", "seed"), "arrival"
        )
        arrival = ArrivalSpec(
            schedule=arrival_data.get("schedule", "fixed"),
            rate=float(arrival_data.get("rate", 100.0)),
            requests=int(arrival_data.get("requests", 100)),
            seed=arrival_data.get("seed"),
        )
        profile_data = data.get("profile", {"connect": 1})
        _require(isinstance(profile_data, dict), "'profile' must be an object")
        enum_data = data.get("enumerate", {})
        _require(isinstance(enum_data, dict), "'enumerate' must be an object")
        _check_unknown(enum_data, ("budget", "pages", "reconnect"), "enumerate")
        soak_data = data.get("soak")
        soak: Optional[SoakSpec] = None
        if soak_data is not None:
            _require(isinstance(soak_data, dict), "'soak' must be an object")
            _check_unknown(
                soak_data,
                (
                    "cycles", "queries_per_cycle", "edits_per_cycle",
                    "enumerate_budget", "terminals", "workers", "warmup",
                    "allowed_growth", "seed",
                ),
                "soak",
            )
            growth = soak_data.get("allowed_growth", {})
            _require(
                isinstance(growth, dict), "'soak.allowed_growth' must be an object"
            )
            soak = SoakSpec(
                cycles=int(soak_data.get("cycles", 4)),
                queries_per_cycle=int(soak_data.get("queries_per_cycle", 6)),
                edits_per_cycle=int(soak_data.get("edits_per_cycle", 1)),
                enumerate_budget=int(soak_data.get("enumerate_budget", 2)),
                terminals=int(soak_data.get("terminals", 3)),
                workers=int(soak_data.get("workers", 0)),
                warmup=int(soak_data.get("warmup", 1)),
                allowed_growth=tuple(
                    (probe, float(value)) for probe, value in sorted(growth.items())
                ),
                seed=soak_data.get("seed"),
            )
        budgets_data = data.get("budgets", {})
        _require(isinstance(budgets_data, dict), "'budgets' must be an object")
        return cls(
            name=str(data.get("name", "load")),
            tenants=tuple(tenants),
            arrival=arrival,
            profile=tuple(sorted((op, int(w)) for op, w in profile_data.items())),
            terminals=int(data.get("terminals", 3)),
            batch_size=int(data.get("batch_size", 4)),
            enumerate_budget=int(enum_data.get("budget", 2)),
            enumerate_pages=int(enum_data.get("pages", 3)),
            reconnect=bool(enum_data.get("reconnect", True)),
            clients=int(data.get("clients", 4)),
            seed=int(data.get("seed", 0)),
            verify=bool(data.get("verify", True)),
            budgets=Budgets.from_dict(budgets_data),
            soak=soak,
        )

    @classmethod
    def from_json(cls, text: str) -> "LoadSpec":
        """Parse a spec from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(f"load spec is not valid JSON: {error}") from error
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        """Return the canonical dict form (round-trips through ``from_dict``)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
            "arrival": {
                "schedule": self.arrival.schedule,
                "rate": self.arrival.rate,
                "requests": self.arrival.requests,
                **(
                    {"seed": self.arrival.seed}
                    if self.arrival.seed is not None
                    else {}
                ),
            },
            "profile": dict(self.profile),
            "terminals": self.terminals,
            "batch_size": self.batch_size,
            "enumerate": {
                "budget": self.enumerate_budget,
                "pages": self.enumerate_pages,
                "reconnect": self.reconnect,
            },
            "clients": self.clients,
            "seed": self.seed,
            "verify": self.verify,
        }
        budgets = self.budgets.to_dict()
        if budgets:
            data["budgets"] = budgets
        if self.soak is not None:
            data["soak"] = self.soak.to_dict()
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Return the spec as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def tokened_tenants(self) -> Tuple[TenantSpec, ...]:
        """The tenants eligible for authenticated mutation traffic."""
        return tuple(t for t in self.tenants if t.token is not None)
