"""Chaos mode: kill the server under load and prove no answer corrupts.

``python -m repro load --chaos`` runs a committed load spec while a
supervisor SIGKILLs and restarts the ``repro serve`` subprocess at
scheduled points mid-traffic.  The pass criterion is the strongest one
the stack offers: after every kill, reconnect and resume, the run's
:func:`~repro.load.clients.samples_checksum` must equal the serial
oracle checksum -- every answer that crossed a crash (including
enumeration pages resumed from a continuation token minted by a *dead*
process) was byte-equivalent to the quiet serial answer.

Determinism contract
--------------------
Kill points come from a :class:`~repro.faults.plan.FaultPlan` rule on
the ``server-kill`` site, evaluated once per *completed* operation: the
N-th completion triggers a kill exactly when the plan's schedule says
hit N fires.  No ambient randomness anywhere -- the same spec and the
same fault plan replay the same experiment, and because the committed
chaos spec is **query-only** (mutations would die with the server's
in-memory state), any interleaving of kills must reproduce the identical
oracle checksum.  That is what makes the chaos checksum itself
deterministic: it equals the oracle's on every passing run, whether the
transport was ``wire`` or ``in-process``.

Two failure-injection surfaces implement the "kill":

* ``mode="wire"`` -- a real ``python -m repro serve`` subprocess is
  SIGKILLed (no drain, no atexit) and respawned **on the same port**;
  the spec's tenants are re-created idempotently, and client threads
  retry transport-dead operations with capped backoff until the new
  incarnation answers;
* ``mode="in-process"`` -- the shared registry is swapped for a pristine
  rebuild (:meth:`~repro.load.clients.InProcessTransport.reset`), losing
  every warm context and admission counter the way a crashed server
  does, with zero socket latency -- the fast lane for determinism tests.

See ``docs/resilience.md`` for the recovery invariants this mode proves.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace as _dataclass_replace
from typing import List, Optional

from repro.exceptions import ValidationError
from repro.faults.plan import FaultPlan
from repro.load.clients import (
    InProcessTransport,
    WireTransport,
    run_plan,
    samples_checksum,
)
from repro.load.report import LoadReport, build_report
from repro.load.runner import (
    _create_tenants,
    build_graphs,
    build_registry,
    serial_oracle_checksum,
    spawn_server,
    stop_server,
)
from repro.load.schedule import build_plan
from repro.load.spec import LoadSpec

#: The committed chaos acceptance spec (``python -m repro load --chaos
#: --smoke``): query-only traffic -- connect/batch/interpret, paged
#: enumeration that must splice across restarts, and deliberate
#: auth/quota rejections -- sized for a CI gate with two kill cycles.
CHAOS_SPEC: dict = {
    "name": "chaos-smoke",
    "tenants": [
        {
            "name": "alpha",
            "schema": {
                "generator": "random_62_chordal_graph",
                "params": {"blocks": 3, "rng": 11},
            },
        },
        {
            "name": "beta",
            "schema": {
                "generator": "random_alpha_schema_graph",
                "params": {"relations": 4, "rng": 7},
            },
        },
        {
            "name": "gated",
            "schema": {
                "generator": "random_62_chordal_graph",
                "params": {"blocks": 3, "rng": 5},
            },
            "token": "chaos-token",
            "limits": {"max_batch_requests": 8},
        },
    ],
    "arrival": {"schedule": "poisson", "rate": 120.0, "requests": 48, "seed": 3},
    "profile": {
        "connect": 5,
        "batch": 2,
        "interpret": 2,
        "enumerate": 3,
        "bad_auth": 1,
        "over_quota": 1,
    },
    "terminals": 3,
    "batch_size": 3,
    "enumerate": {"budget": 2, "pages": 3, "reconnect": True},
    "clients": 4,
    "seed": 7,
    "verify": True,
    "budgets": {
        "error_rates": {"internal": 0.0, "protocol": 0.0},
    },
}

#: Error kinds a chaos client absorbs and retries at the operation level
#: (a dead or restarting server, and the window after respawn before the
#: tenants are re-created).  Everything else is a real answer.
CHAOS_RETRY_KINDS = ("transport", "timeout", "unknown-tenant")


def chaos_spec() -> LoadSpec:
    """The parsed committed chaos spec."""
    return LoadSpec.from_dict(CHAOS_SPEC)


def default_fault_plan(operations: int, kills: int, seed: int = 0) -> FaultPlan:
    """A ``server-kill`` schedule with ``kills`` evenly spaced kill points.

    Hit index ``i`` is the ``i``-th completed operation, so the plan
    kills after roughly ``operations/(kills+1)`` completions, twice that,
    and so on -- every kill lands strictly mid-run, never after the last
    operation.
    """
    if kills < 1:
        raise ValidationError("chaos needs kills >= 1")
    if operations < kills + 1:
        raise ValidationError(
            f"a plan of {operations} operation(s) cannot host {kills} kill(s)"
        )
    at = []
    for i in range(kills):
        index = (operations * (i + 1)) // (kills + 1) - 1
        at.append(max(0, index))
    unique = tuple(sorted(set(at)))
    return FaultPlan.from_dict(
        {"seed": seed, "rules": [{"site": "server-kill", "at": list(unique)}]}
    )


class _ChaosWireTransport(WireTransport):
    """A :class:`WireTransport` whose operations survive server death.

    ``run_op`` retries :data:`CHAOS_RETRY_KINDS` outcomes with capped
    exponential backoff inside one time budget, discarding the thread's
    dead client so the next attempt reconnects to the restarted server.
    Operations retry *whole* -- a mid-enumeration death replays the
    stream from page one, which is answer-identical by determinism.
    """

    def __init__(self, host, port, spec, *, retry_budget_s: float = 45.0):
        """Wrap the wire transport with a per-op chaos retry budget."""
        super().__init__(host, port, spec)
        self._retry_budget_s = retry_budget_s
        self._retry_lock = threading.Lock()
        self.transport_retries = 0

    def run_op(self, op):
        """Execute one op, absorbing server-death windows by retrying."""
        deadline = time.monotonic() + self._retry_budget_s
        delay = 0.05
        while True:
            kind, digest = super().run_op(op)
            if kind not in CHAOS_RETRY_KINDS or time.monotonic() >= deadline:
                return kind, digest
            with self._retry_lock:
                self.transport_retries += 1
            client = getattr(self._local, "client", None)
            if client is not None:
                # drop the dead connection; ReproClient.call() redials
                # lazily on the next attempt
                client.close()
            time.sleep(delay)
            delay = min(delay * 2.0, 1.0)


class _ServerSupervisor:
    """Kill/respawn controller for wire-mode chaos.

    Owns the ``repro serve`` subprocess.  :meth:`on_progress` is the
    :func:`~repro.load.clients.run_plan` completion callback: each
    completed operation advances the fault plan's ``server-kill`` hit
    counter, and a firing SIGKILLs the server (no drain -- the hardest
    death), respawns it on the same port, and re-creates the tenants.
    """

    def __init__(self, spec: LoadSpec, injector, process, host: str, port: int):
        """Supervise ``process`` (serving ``host:port``) for ``spec``."""
        self._spec = spec
        self._injector = injector
        self._process = process
        self._host = host
        self._port = port
        self._lock = threading.Lock()
        self.kill_indices: List[int] = []

    def on_progress(self, done: int) -> None:
        """Advance the kill schedule by one completed operation."""
        with self._lock:
            if self._injector.fire("server-kill") is None:
                return
            self.kill_indices.append(done)
            self._process.kill()
            self._process.wait()
            if self._process.stdout is not None:
                self._process.stdout.close()
            self._process, _, _ = spawn_server(port=self._port)
            _create_tenants(self._spec, self._host, self._port)

    def shutdown(self) -> int:
        """Drain the current server incarnation; return its exit code."""
        with self._lock:
            return stop_server(self._process)


class _RegistrySupervisor:
    """Registry-swap controller for in-process chaos.

    The in-process analogue of :class:`_ServerSupervisor`: a firing
    ``server-kill`` replaces the transport's registry with a pristine
    rebuild, so everything a crashed server would lose -- warm schema
    contexts, admission counters, enumeration stream state -- is lost
    here too, without sockets or subprocess latency.
    """

    def __init__(self, spec: LoadSpec, injector, transport) -> None:
        """Supervise ``transport``'s registry for ``spec``."""
        self._spec = spec
        self._injector = injector
        self._transport = transport
        self._lock = threading.Lock()
        self.kill_indices: List[int] = []

    def on_progress(self, done: int) -> None:
        """Advance the kill schedule by one completed operation."""
        with self._lock:
            if self._injector.fire("server-kill") is None:
                return
            self.kill_indices.append(done)
            self._transport.reset(build_registry(self._spec))


def run_chaos(
    spec: LoadSpec,
    *,
    mode: str = "wire",
    fault_plan: Optional[FaultPlan] = None,
    kills: int = 2,
    clients: Optional[int] = None,
    pace: bool = True,
    retry_budget_s: float = 45.0,
) -> LoadReport:
    """Run ``spec`` under scheduled server kills; return the chaos report.

    ``fault_plan`` overrides the default evenly-spaced ``server-kill``
    schedule (:func:`default_fault_plan` with ``kills`` points).  The
    spec must be query-only: a mutation applied before a kill dies with
    the server's in-memory state, so its replay could never match the
    serial oracle -- chaos rejects such specs up front rather than
    reporting a spurious corruption.

    The returned report's ``extra`` carries a ``"chaos"`` section with
    the kill count, the completion indices the kills landed on, and the
    transport retries absorbed; :meth:`LoadReport.ok` already folds in
    the checksum-vs-oracle comparison that is chaos's pass criterion.
    """
    if mode not in ("in-process", "wire"):
        raise ValidationError(f"unknown chaos mode {mode!r}")
    weights = dict(spec.profile)
    if weights.get("mutate", 0) > 0:
        raise ValidationError(
            "chaos specs must be query-only: a mutation applied before a "
            "kill dies with the server, so its answers cannot match the "
            "serial oracle (drop the 'mutate' profile weight)"
        )
    plan = build_plan(spec, build_graphs(spec))
    if fault_plan is None:
        fault_plan = default_fault_plan(len(plan), kills, seed=spec.seed)
    injector = fault_plan.injector()
    oracle_checksum = serial_oracle_checksum(spec, plan)

    if mode == "wire":
        process, host, port = spawn_server()
        _create_tenants(spec, host, port)
        transport = _ChaosWireTransport(
            host, port, spec, retry_budget_s=retry_budget_s
        )
        supervisor = _ServerSupervisor(spec, injector, process, host, port)
    else:
        transport = InProcessTransport(build_registry(spec), spec)
        supervisor = _RegistrySupervisor(spec, injector, transport)
    try:
        samples, duration = run_plan(
            plan,
            transport,
            clients=clients if clients is not None else spec.clients,
            pace=pace,
            on_progress=supervisor.on_progress,
        )
    finally:
        transport.close()
        if mode == "wire":
            supervisor.shutdown()

    report = build_report(
        spec,
        f"chaos-{mode}",
        samples,
        duration,
        checksum=samples_checksum(samples),
        oracle_checksum=oracle_checksum,
    )
    chaos_info = {
        "kills": len(supervisor.kill_indices),
        "kill_indices": list(supervisor.kill_indices),
        "scheduled_kills": len(fault_plan.schedule("server-kill", len(plan))),
        "transport_retries": getattr(transport, "transport_retries", 0),
        "fault_plan": fault_plan.to_dict(),
    }
    return _dataclass_replace(report, extra=(("chaos", chaos_info),))


__all__ = [
    "CHAOS_RETRY_KINDS",
    "CHAOS_SPEC",
    "chaos_spec",
    "default_fault_plan",
    "run_chaos",
]
