"""Soak mode: repeated churn+query cycles with resource-leak detection.

A load burst shows tail latency; what kills a long-lived service is the
slow leak -- a cache keyed on something that never repeats, a shared
memory segment nobody unlinks, an oracle that survives invalidation.
:func:`run_soak` runs ``cycles`` rounds of the full write/read surface
(grow-and-prune schema churn through
:class:`~repro.dynamic.editor.SchemaEditor`, connection queries, paged
enumeration, optionally a parallel batch through
:class:`~repro.runtime.parallel.ParallelExecutor`) against one
:class:`~repro.api.service.ConnectionService`, sampling **resource
probes** once per cycle:

=================  ====================================================
``schema_contexts``  Cached :class:`~repro.engine.cache.SchemaContext`
                     objects (:meth:`ConnectionService.resource_stats`).
``oracle_rows``      BFS rows held across the cached distance oracles.
``disk_bytes``       Bytes in the persistent result store.
``shm_segments``     Parent-owned shared-memory segments (only sampled
                     when ``workers > 0``).
=================  ====================================================

Each churn edit is a *grow-then-prune* pair inside the cycle, so the
schema ends every cycle structurally identical to how it started; a
correct stack therefore reaches a plateau on every probe after a warmup
(caches legitimately fill first).  :class:`SoakMonitor` flags any probe
whose final value exceeds its post-warmup baseline by more than the
spec's allowance -- and because the probes are injectable, the detector
itself is testable: hand it a deliberately leaky probe and it must
report the leak (``tests/test_load.py``).
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.load.spec import LoadSpec, SoakSpec

#: Label prefix for leaves grown by soak churn (pruned in-cycle).
SOAK_LEAF = "soak-leaf"


class SoakMonitor:
    """Samples named resource probes and flags monotonic growth.

    Parameters
    ----------
    probes:
        ``{name: zero-arg callable -> number}``; sampled together on
        every :meth:`sample` call.
    allowed_growth:
        Per-probe allowance (default 0): how far above the post-warmup
        baseline the final value may sit without being called a leak.
    warmup:
        How many leading samples to ignore -- caches fill during the
        first cycles, and calling that a leak would make every run red.
    """

    def __init__(
        self,
        probes: Dict[str, Callable[[], float]],
        *,
        allowed_growth: Tuple[Tuple[str, float], ...] = (),
        warmup: int = 1,
    ) -> None:
        self._probes = dict(probes)
        self._allowance = dict(allowed_growth)
        self._warmup = warmup
        self._samples: Dict[str, List[float]] = {name: [] for name in self._probes}

    def sample(self) -> Dict[str, float]:
        """Sample every probe once; returns this cycle's readings."""
        reading = {name: float(probe()) for name, probe in self._probes.items()}
        for name, value in reading.items():
            self._samples[name].append(value)
        return reading

    @property
    def samples(self) -> Dict[str, List[float]]:
        """All readings so far, per probe (one entry per cycle)."""
        return {name: list(values) for name, values in self._samples.items()}

    def leaks(self) -> List[str]:
        """Return one message per probe that grew beyond its allowance.

        The rule: take the first post-warmup reading as the baseline;
        the *final* reading may not exceed it by more than the probe's
        allowance.  A plateau (flat or wobbling within the allowance)
        passes; anything still climbing at the end of the run fails.
        """
        messages: List[str] = []
        for name, values in self._samples.items():
            if len(values) <= self._warmup:
                continue
            window = values[self._warmup :]
            baseline, final = window[0], window[-1]
            allowance = self._allowance.get(name, 0.0)
            growth = final - baseline
            if growth > allowance:
                messages.append(
                    f"{name} grew from {baseline:g} to {final:g} "
                    f"(+{growth:g} > allowed {allowance:g}) over "
                    f"{len(window)} post-warmup cycles"
                )
        return messages


@dataclass(frozen=True)
class SoakReport:
    """The result of one soak run: per-cycle probe readings and verdicts."""

    cycles: int
    samples: Tuple[Tuple[str, Tuple[float, ...]], ...]
    leaks: Tuple[str, ...]
    cache_stats: Tuple[Tuple[str, object], ...] = ()

    def ok(self) -> bool:
        """True when no probe leaked."""
        return not self.leaks

    def to_dict(self) -> dict:
        """Return a JSON-ready mapping of the soak results."""
        return {
            "cycles": self.cycles,
            "samples": {name: list(values) for name, values in self.samples},
            "leaks": list(self.leaks),
            "ok": self.ok(),
            "cache_stats": dict(self.cache_stats),
        }

    def render_text(self) -> str:
        """Render the per-probe trajectories as an aligned block."""
        lines = [f"  soak: {self.cycles} cycles"]
        for name, values in self.samples:
            trajectory = " -> ".join(f"{value:g}" for value in values)
            lines.append(f"    {name:<16} {trajectory}")
        if self.leaks:
            lines.extend(f"    LEAK: {leak}" for leak in self.leaks)
        else:
            lines.append("    no monotonic growth beyond allowance")
        return "\n".join(lines)


def _churn(service, graph, anchors) -> None:
    """One cycle's grow-then-prune churn (net structural no-op).

    The leaf labels and anchors are identical every cycle on purpose:
    cycle *k* must revisit exactly the schema states cycle *k-1* saw, so
    every content-addressed layer (schema digests, disk entries) gets
    the chance to plateau -- repeating state is what makes "still
    growing" a meaningful verdict.
    """
    from repro.dynamic.editor import SchemaEditor

    for edit, anchor in enumerate(anchors):
        leaf = (SOAK_LEAF, edit)
        with SchemaEditor(graph) as transaction:
            transaction.add_vertex(leaf, side=3 - graph.side_of(anchor))
            transaction.add_edge(leaf, anchor)
        # query the grown schema so the incremental rebind actually runs
        service.connect([anchor, leaf])
        with SchemaEditor(graph) as transaction:
            transaction.remove_vertex(leaf)


def run_soak(
    spec: LoadSpec,
    *,
    probes_override: Optional[Dict[str, Callable[[], float]]] = None,
) -> SoakReport:
    """Run the spec's soak section; returns the probe report.

    Traffic targets the spec's *first* tenant schema, bound to a fresh
    :class:`~repro.api.service.ConnectionService` with a temporary disk
    cache, so the run starts cold and owns everything it measures.
    ``probes_override`` replaces the default probe set entirely -- that
    is how the leak-detector regression test injects a deliberately
    leaky stub.
    """
    from repro.api.config import ServiceConfig
    from repro.api.service import ConnectionService
    from repro.datasets.generators import random_terminals
    from repro.metrics import MetricsRegistry

    soak = spec.soak if spec.soak is not None else SoakSpec()
    seed = soak.seed if soak.seed is not None else spec.seed * 1000003 + 303
    rng = random.Random(seed)
    tenant = spec.tenants[0]
    graph = tenant.build_schema()
    executor = None
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as cache_dir:
        service = ConnectionService(
            schema=graph,
            config=ServiceConfig(
                cache_dir=cache_dir, metrics=MetricsRegistry()
            ),
        )
        try:
            if soak.workers > 0:
                from repro.runtime.parallel import ParallelExecutor

                executor = ParallelExecutor(soak.workers, service=service)
            if probes_override is not None:
                probes = dict(probes_override)
            else:
                probes = {
                    "schema_contexts": lambda: service.resource_stats()[
                        "schema_contexts"
                    ],
                    "oracle_rows": lambda: service.resource_stats()[
                        "oracle_rows"
                    ],
                    "disk_bytes": lambda: service.resource_stats()[
                        "disk_bytes"
                    ],
                }
                if executor is not None:
                    probes["shm_segments"] = lambda: len(
                        executor.active_segments()
                    )
            monitor = SoakMonitor(
                probes,
                allowed_growth=soak.allowed_growth,
                warmup=soak.warmup,
            )
            # fixed per-run traffic, repeated every cycle: a steady-state
            # workload revisits the same schema states and request keys,
            # so every held resource must plateau (fresh keys per cycle
            # would make content-addressed stores grow by design)
            anchors = [
                rng.choice(graph.sorted_vertices())
                for _ in range(soak.edits_per_cycle)
            ]
            queries = [
                random_terminals(graph, soak.terminals, rng=rng)
                for _ in range(soak.queries_per_cycle)
            ]
            for _cycle in range(soak.cycles):
                _churn(service, graph, anchors)
                if executor is not None:
                    executor.batch(queries)
                else:
                    service.batch(queries)
                stream = service.enumerate(
                    queries[0], budget=soak.enumerate_budget
                )
                stream.take(soak.enumerate_budget)
                monitor.sample()
            return SoakReport(
                cycles=soak.cycles,
                samples=tuple(
                    (name, tuple(values))
                    for name, values in sorted(monitor.samples.items())
                ),
                leaks=tuple(monitor.leaks()),
                cache_stats=tuple(sorted(_flatten(service.cache_stats()))),
            )
        finally:
            if executor is not None:
                executor.close()


def _flatten(stats: dict, prefix: str = "") -> List[Tuple[str, object]]:
    """Flatten nested cache-stats dicts to dotted scalar keys."""
    items: List[Tuple[str, object]] = []
    for key, value in stats.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            items.extend(_flatten(value, prefix=f"{name}."))
        elif isinstance(value, (int, float, str, bool)):
            items.append((name, value))
    return items


__all__ = ["SoakMonitor", "SoakReport", "run_soak", "SOAK_LEAF"]
