"""Concurrent plan execution: simulated clients over two transports.

:func:`run_plan` replays a compiled plan (see
:mod:`repro.load.schedule`) with ``clients`` worker threads in **open
loop**: each operation has a scheduled arrival offset, workers sleep
until it and then issue the request regardless of how many earlier
requests are still in flight.  A slow stack falls behind its schedule
(visible as achieved-rate degradation and tail latency) instead of
silently throttling the generator -- the coordinated-omission mistake
closed-loop harnesses make.

Two transports implement the same operation vocabulary:

* :class:`InProcessTransport` drives a
  :class:`~repro.server.registry.SchemaRegistry` directly on this
  process's threads, replicating the server's request path
  (authenticate, admission ``acquire``/``release``, quota checks, the
  per-tenant solve lock) without any sockets -- the fastest way to
  saturate the engine, and the transport the serial verify oracle uses;
* :class:`WireTransport` speaks the real protocol through one blocking
  :class:`~repro.server.client.ReproClient` per worker thread, with
  enumeration follow-up pages optionally resumed on a *fresh
  connection* via the continuation token (resume-across-reconnect).

Every operation yields a canonical **answer digest**
(:func:`result_digest`) computed from transport-independent fields --
terminals, objective, cost, guarantee, tree edges -- so in-process and
wire runs of the same plan produce the same
:func:`samples_checksum`.  Deliberate error traffic digests as
``error:<kind>``; admission bounces are retried with backoff (they are
a concurrency artefact, not an answer) and surface only in the retry
counters and error taxonomy.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.load.report import OpSample
from repro.load.schedule import PlannedOp
from repro.load.spec import LoadSpec
from repro.server.errors import RemoteError, envelope_for

#: Admission bounces absorbed per operation before giving up.
MAX_ADMISSION_RETRIES = 8

#: Base backoff between admission retries (doubles per attempt).
ADMISSION_BACKOFF_S = 0.002

#: Upper bound on waiting for a tenant's earlier mutations to apply.
WRITE_GATE_TIMEOUT_S = 60.0


# ----------------------------------------------------------------------
# canonical answer digests
# ----------------------------------------------------------------------
def _edges_key(edges) -> str:
    """Canonical string for a tree's edge set (orientation-free, sorted)."""
    pairs = sorted(
        "|".join(sorted((repr(u), repr(v)))) for u, v in edges
    )
    return ";".join(pairs)


def result_digest(
    *,
    terminals,
    objective: str,
    cost: int,
    guarantee: str,
    edges,
) -> str:
    """Digest one answer from its transport-independent fields.

    Both transports reduce an answer to the same five fields -- the
    in-process side from a live
    :class:`~repro.api.result.ConnectionResult`, the wire side from the
    JSON payload -- so equal answers digest equally no matter how they
    travelled.
    """
    text = "\n".join(
        (
            ",".join(sorted(repr(t) for t in terminals)),
            objective,
            str(cost),
            guarantee,
            _edges_key(edges),
        )
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def digest_result_object(result) -> str:
    """Digest an in-process :class:`~repro.api.result.ConnectionResult`."""
    return result_digest(
        terminals=result.request.terminals,
        objective=result.request.objective,
        cost=result.cost,
        guarantee=result.guarantee.value,
        edges=result.tree.edges(),
    )


def digest_wire_payload(payload: Dict[str, Any]) -> str:
    """Digest a wire result payload (the server's JSON encoding)."""
    from repro.server.codec import decode_value

    return result_digest(
        terminals=[decode_value(t) for t in payload["terminals"]],
        objective=payload["objective"],
        cost=payload["cost"],
        guarantee=payload["guarantee"],
        edges=[
            (decode_value(u), decode_value(v))
            for u, v in payload["tree_edges"]
        ],
    )


def _join_digests(parts: Sequence[str]) -> str:
    """Fold many per-result digests into one op digest."""
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


def samples_checksum(samples: Sequence[OpSample]) -> str:
    """The verify checksum: every digested outcome, in plan order.

    Samples without a digest (operations that exhausted their admission
    retries or failed in transport) are excluded -- they carry no
    answer to compare.  A run where everything completed therefore
    checksums identically to the serial oracle, and any divergence in
    any answer changes the checksum.
    """
    lines = [
        f"{sample.index}:{sample.op}:{sample.digest}"
        for sample in sorted(samples, key=lambda s: s.index)
        if sample.digest is not None
    ]
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
class InProcessTransport:
    """Drive a :class:`SchemaRegistry` directly, mirroring the server path.

    The registry is not thread-safe, so every registry touch
    (authenticate / admission / quota / service lookup) happens under
    one short global lock -- the moral equivalent of the server's
    event-loop confinement -- while the solve itself runs under a
    per-tenant lock only, so different tenants solve concurrently
    exactly as they do server-side.
    """

    def __init__(self, registry, spec: LoadSpec) -> None:
        """Wrap ``registry`` for plan execution against ``spec``."""
        self._registry = registry
        self._spec = spec
        self._tokens = {t.name: t.token for t in spec.tenants}
        self._registry_lock = threading.Lock()
        self._tenant_locks: Dict[str, threading.Lock] = {
            t.name: threading.Lock() for t in spec.tenants
        }

    def close(self) -> None:
        """Nothing to release (the caller owns the registry)."""

    def reset(self, registry) -> None:
        """Swap in a fresh registry -- the in-process analogue of a server
        restart.

        The chaos harness (:mod:`repro.load.chaos`) calls this at its
        scheduled kill points: every warm context, admission counter and
        enumeration stream the old registry held is gone, exactly as a
        SIGKILLed server loses them.  In-flight operations finish (and
        release) against the registry they were admitted on; operations
        admitted after the swap see only the pristine replacement.
        """
        with self._registry_lock:
            self._registry = registry

    def _solve(self, tenant: str, fn) -> Any:
        """Authenticate, admit, lock, run ``fn(service)``, release."""
        with self._registry_lock:
            # captured so the admit/release pair lands on one registry
            # even when reset() swaps it mid-operation
            registry = self._registry
            registry.authenticate(tenant, None)
            registry.acquire(tenant)
            service = registry.service(tenant)
        try:
            with self._tenant_locks[tenant]:
                return fn(service)
        finally:
            with self._registry_lock:
                registry.release(tenant)

    def run_op(self, op: PlannedOp) -> Tuple[str, Optional[str]]:
        """Execute one planned op; return ``(error_kind, digest)``.

        ``error_kind`` is ``""`` on success.  Typed failures are mapped
        through :func:`~repro.server.errors.envelope_for`, so the kinds
        match the wire vocabulary exactly.  Admission bounces propagate
        as ``AdmissionError`` for the executor's retry loop.
        """
        from repro.server.errors import AdmissionError

        try:
            return "", self._dispatch(op)
        except AdmissionError:
            raise
        except Exception as error:
            return envelope_for(error)["kind"], None

    def _dispatch(self, op: PlannedOp) -> str:
        payload = op.payload
        tenant = op.tenant
        if op.op == "connect":
            terminals = payload["terminals"]
            with self._registry_lock:
                self._registry.check_quota(tenant, terminals=len(terminals))
            result = self._solve(tenant, lambda s: s.connect(terminals))
            return _join_digests([digest_result_object(result)])
        if op.op in ("batch", "interpret"):
            queries = payload["queries"]
            with self._registry_lock:
                self._registry.check_quota(tenant, requests=len(queries))
                for query in queries:
                    self._registry.check_quota(tenant, terminals=len(query))
            results = self._solve(tenant, lambda s: s.batch(queries))
            return _join_digests([digest_result_object(r) for r in results])
        if op.op == "enumerate":
            return self._enumerate(op)
        if op.op == "mutate":
            return self._mutate(tenant, payload["edits"], self._tokens[tenant])
        if op.op == "bad_auth":
            with self._registry_lock:
                self._registry.authenticate(
                    tenant, payload["token"], mutating=True
                )
            raise RemoteError(  # pragma: no cover - auth must have raised
                "internal", "bad_auth traffic was unexpectedly accepted"
            )
        if op.op == "over_quota":
            with self._registry_lock:
                self._registry.check_quota(
                    tenant, requests=len(payload["queries"])
                )
            raise RemoteError(  # pragma: no cover - quota must have raised
                "internal", "over_quota traffic was unexpectedly accepted"
            )
        raise RemoteError("internal", f"unknown planned op {op.op!r}")

    def _enumerate(self, op: PlannedOp) -> str:
        payload = op.payload
        tenant = op.tenant
        terminals = payload["terminals"]
        budget = payload["budget"]
        pages = payload["pages"]
        with self._registry_lock:
            self._registry.check_quota(tenant, terminals=len(terminals))

        def pull(service) -> str:
            stream = service.enumerate(terminals, budget=budget)
            digests = [digest_result_object(r) for r in stream.take(budget)]
            taken = 1
            while taken < pages and stream.paused and not stream.exhausted:
                stream.extend_budget(budget)
                digests.extend(
                    digest_result_object(r) for r in stream.take(budget)
                )
                taken += 1
            digests.append(f"exhausted={stream.exhausted}")
            return _join_digests(digests)

        return self._solve(tenant, pull)

    def _mutate(self, tenant: str, edits, token: Optional[str]) -> str:
        from repro.dynamic.editor import SchemaEditor

        with self._registry_lock:
            self._registry.authenticate(tenant, token, mutating=True)
            record = self._registry.record(tenant)
            self._registry.acquire(tenant)
            self._registry.service(tenant)
        try:
            with self._tenant_locks[tenant]:
                with SchemaEditor(record.graph) as transaction:
                    for edit in edits:
                        _apply_raw_edit(transaction, edit)
                delta = transaction.delta
        finally:
            with self._registry_lock:
                self._registry.release(tenant)
        record.mutations += 1
        return _mutation_digest(record.graph.mutation_version, delta)

    def run_serial(self, plan: Sequence[PlannedOp]) -> List[OpSample]:
        """Replay a plan in index order on this thread (the verify oracle)."""
        samples: List[OpSample] = []
        for op in plan:
            samples.append(execute_op(self, op, pace=False))
        return samples


def _apply_raw_edit(transaction, edit: Dict[str, Any]) -> None:
    """Apply one plan edit record (raw labels) to an open transaction."""
    op = edit["op"]
    if op == "add_vertex":
        transaction.add_vertex(edit["vertex"], side=edit.get("side"))
    elif op == "remove_vertex":
        transaction.remove_vertex(edit["vertex"])
    elif op == "add_edge":
        transaction.add_edge(edit["u"], edit["v"])
    elif op == "remove_edge":
        transaction.remove_edge(edit["u"], edit["v"])
    else:  # pragma: no cover - plans only emit the four ops above
        raise RemoteError("internal", f"unknown edit op {op!r}")


def _mutation_digest(version: int, delta) -> str:
    """Digest a committed mutation from its version and net delta."""
    return (
        f"mutate:v{version}"
        f":+v{len(delta.added_vertices)}-v{len(delta.removed_vertices)}"
        f":+e{len(delta.added_edges)}-e{len(delta.removed_edges)}"
    )


class WireTransport:
    """Drive a live server through one :class:`ReproClient` per thread."""

    def __init__(self, host: str, port: int, spec: LoadSpec, timeout: float = 30.0):
        """Target the server at ``host:port`` for plan execution."""
        self._host = host
        self._port = port
        self._timeout = timeout
        self._spec = spec
        self._tokens = {t.name: t.token for t in spec.tenants}
        self._local = threading.local()
        self._clients: List[Any] = []
        self._clients_lock = threading.Lock()

    def _client(self):
        client = getattr(self._local, "client", None)
        if client is None:
            from repro.server.client import ReproClient

            client = ReproClient(self._host, self._port, timeout=self._timeout)
            self._local.client = client
            with self._clients_lock:
                self._clients.append(client)
        return client

    def close(self) -> None:
        """Close every per-thread client this transport opened."""
        with self._clients_lock:
            clients, self._clients = self._clients, []
        for client in clients:
            client.close()

    def run_op(self, op: PlannedOp) -> Tuple[str, Optional[str]]:
        """Execute one planned op over the wire; ``(error_kind, digest)``.

        Admission bounces are re-raised for the executor's retry loop;
        every other :class:`RemoteError` is reported by kind.
        """
        from repro.server.errors import AdmissionError

        try:
            return "", self._dispatch(op)
        except RemoteError as error:
            if error.kind == "admission":
                raise AdmissionError(str(error))
            return error.kind, None
        except Exception as error:
            return envelope_for(error)["kind"], None

    def _dispatch(self, op: PlannedOp) -> str:
        payload = op.payload
        tenant = op.tenant
        client = self._client()
        if op.op == "connect":
            answer = client.connect(tenant, payload["terminals"])
            return _join_digests([digest_wire_payload(answer)])
        if op.op == "batch":
            answers = client.batch(
                tenant, [{"terminals": q} for q in payload["queries"]]
            )
            return _join_digests([digest_wire_payload(a) for a in answers])
        if op.op == "interpret":
            answers = client.interpret(tenant, payload["queries"])
            return _join_digests([digest_wire_payload(a) for a in answers])
        if op.op == "enumerate":
            return self._enumerate(client, op)
        if op.op == "mutate":
            answer = client.mutate(
                tenant, payload["edits"], token=self._tokens[tenant]
            )
            return (
                f"mutate:v{answer['version']}"
                f":+v{answer['delta']['added_vertices']}"
                f"-v{answer['delta']['removed_vertices']}"
                f":+e{answer['delta']['added_edges']}"
                f"-e{answer['delta']['removed_edges']}"
            )
        if op.op == "bad_auth":
            client.mutate(tenant, payload["edits"], token=payload["token"])
            raise RemoteError(  # pragma: no cover - auth must have raised
                "internal", "bad_auth traffic was unexpectedly accepted"
            )
        if op.op == "over_quota":
            client.interpret(tenant, payload["queries"])
            raise RemoteError(  # pragma: no cover - quota must have raised
                "internal", "over_quota traffic was unexpectedly accepted"
            )
        raise RemoteError("internal", f"unknown planned op {op.op!r}")

    def _enumerate(self, client, op: PlannedOp) -> str:
        payload = op.payload
        tenant = op.tenant
        budget = payload["budget"]
        pages = payload["pages"]
        page = client.enumerate(tenant, payload["terminals"], budget=budget)
        digests = [digest_wire_payload(p) for p in page.get("results", [])]
        taken = 1
        exhausted = page["exhausted"]
        continuation = page.get("continuation")
        while taken < pages and continuation:
            if self._spec.reconnect:
                # resume on a *fresh* connection: the continuation token
                # must be the only state the protocol needs
                from repro.server.client import ReproClient

                with ReproClient(
                    self._host, self._port, timeout=self._timeout
                ) as fresh:
                    page = fresh.enumerate(
                        tenant, continuation=continuation, budget=budget
                    )
            else:
                page = client.enumerate(
                    tenant, continuation=continuation, budget=budget
                )
            digests.extend(
                digest_wire_payload(p) for p in page.get("results", [])
            )
            exhausted = page["exhausted"]
            continuation = page.get("continuation")
            taken += 1
        digests.append(f"exhausted={exhausted}")
        return _join_digests(digests)


# ----------------------------------------------------------------------
# the open-loop executor
# ----------------------------------------------------------------------
class _WriteGate:
    """Per-tenant ordering gate for mutations (see the schedule module)."""

    def __init__(self, tenants: Sequence[str]) -> None:
        self._condition = threading.Condition()
        self._next: Dict[str, int] = {name: 0 for name in tenants}

    def wait_for(self, tenant: str, seq: int) -> None:
        """Block until every earlier mutation of ``tenant`` has applied."""
        with self._condition:
            if not self._condition.wait_for(
                lambda: self._next[tenant] >= seq,
                timeout=WRITE_GATE_TIMEOUT_S,
            ):
                raise RemoteError(
                    "internal",
                    f"write gate timed out waiting for {tenant!r} seq {seq}",
                )

    def advance(self, tenant: str, seq: int) -> None:
        """Mark mutation ``seq`` finished (success or failure alike)."""
        with self._condition:
            self._next[tenant] = max(self._next[tenant], seq + 1)
            self._condition.notify_all()


def execute_op(
    transport,
    op: PlannedOp,
    *,
    pace: bool,
    started: Optional[float] = None,
    gate: Optional[_WriteGate] = None,
) -> OpSample:
    """Run one planned op (pacing, write gate, admission retries) to a sample."""
    if pace and started is not None:
        delay = started + op.at - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
    if gate is not None and op.write_seq is not None:
        gate.wait_for(op.tenant, op.write_seq)
    begun = time.perf_counter()
    retries = 0
    try:
        while True:
            try:
                error_kind, digest = transport.run_op(op)
                break
            except Exception as error:
                kind = envelope_for(error)["kind"]
                if kind != "admission" or retries >= MAX_ADMISSION_RETRIES:
                    error_kind, digest = kind, None
                    break
                retries += 1
                time.sleep(ADMISSION_BACKOFF_S * (2 ** (retries - 1)))
    finally:
        if gate is not None and op.write_seq is not None:
            gate.advance(op.tenant, op.write_seq)
    latency = time.perf_counter() - begun
    if op.expect_error is not None:
        if error_kind == op.expect_error:
            return OpSample(
                index=op.index,
                op=op.op,
                tenant=op.tenant,
                latency_s=latency,
                error=error_kind,
                expected=True,
                digest=f"error:{error_kind}",
                retries=retries,
            )
        # the scripted rejection did not happen: that is itself a failure
        return OpSample(
            index=op.index,
            op=op.op,
            tenant=op.tenant,
            latency_s=latency,
            error=error_kind or "unexpected-success",
            expected=False,
            digest=None,
            retries=retries,
        )
    return OpSample(
        index=op.index,
        op=op.op,
        tenant=op.tenant,
        latency_s=latency,
        error=error_kind,
        expected=False,
        digest=digest,
        retries=retries,
    )


def run_plan(
    plan: Sequence[PlannedOp],
    transport,
    *,
    clients: int,
    pace: bool = True,
    on_progress: Optional[Callable[[int], None]] = None,
) -> Tuple[List[OpSample], float]:
    """Execute ``plan`` with ``clients`` worker threads; samples + duration.

    Workers pull operations from a shared cursor in plan order, sleep
    until each one's scheduled arrival (open loop), and record one
    :class:`~repro.load.report.OpSample` per operation.  The returned
    duration spans the first arrival to the last completion, so
    ``len(samples) / duration`` is the achieved rate.
    """
    samples: List[OpSample] = []
    samples_lock = threading.Lock()
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    gate = _WriteGate([op.tenant for op in plan])
    started = time.perf_counter()

    def worker() -> None:
        while True:
            with cursor_lock:
                index = cursor["next"]
                if index >= len(plan):
                    return
                cursor["next"] = index + 1
            sample = execute_op(
                transport, plan[index], pace=pace, started=started, gate=gate
            )
            with samples_lock:
                samples.append(sample)
                done = len(samples)
            if on_progress is not None:
                on_progress(done)

    threads = [
        threading.Thread(target=worker, name=f"load-client-{i}", daemon=True)
        for i in range(max(1, clients))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started
    return samples, duration


__all__ = [
    "InProcessTransport",
    "WireTransport",
    "execute_op",
    "digest_result_object",
    "digest_wire_payload",
    "result_digest",
    "run_plan",
    "samples_checksum",
    "MAX_ADMISSION_RETRIES",
]
