"""Transactional schema editing: batch edits, one version bump, rollback.

The paper's interactive scenario has designers evolving the conceptual
schema while users keep querying it.  Mutating a live
:class:`~repro.graphs.graph.Graph` directly works, but every single call
bumps the :attr:`~repro.graphs.graph.Graph.mutation_version`, so a
ten-edit evolution invalidates version-gated caches ten times and exposes
nine intermediate schemas that never logically existed.

:class:`SchemaEditor` makes an evolution atomic:

* edits are applied immediately (later edits in the same transaction see
  their effects), but the graph's version is *held*: while the
  transaction is open, version-gated caches -- the service's bound
  context, the parallel executor's transport memo -- are neither
  consulted nor populated, so a reader that queries mid-transaction
  sees the live uncommitted structure (re-derived per query), never a
  half-stale snapshot;
* ending the transaction releases the hold with **at most one** version
  bump -- commit produces the
  :class:`~repro.dynamic.delta.SchemaDelta` that
  :meth:`~repro.engine.cache.SchemaContext.apply_delta` consumes; a
  transaction that never mutated does not bump at all, while one whose
  edits cancelled out *does* bump once (a reader may have snapshotted
  the intermediate structure, and must be made to revalidate);
* an exception inside the ``with`` block rolls every edit back exactly
  (the journal records the implicit effects too: endpoints created by
  ``add_edge``, incident edges dropped by ``remove_vertex``), leaving
  the graph structurally untouched -- with the same one safety bump
  when edits had run, for the same reason.

Examples
--------
>>> from repro.graphs import BipartiteGraph
>>> g = BipartiteGraph(left=["A"], right=[1], edges=[("A", 1)])
>>> v0 = g.mutation_version
>>> with SchemaEditor(g) as tx:
...     tx.add_vertex("B", side=1)
...     tx.add_edge("B", 1)
>>> g.mutation_version - v0, sorted(tx.delta.added_vertices)
(1, [('B', 1)])
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dynamic.delta import (
    EditOp,
    SchemaDelta,
    _add_vertex,
    restore_readded_incident_edges,
)
from repro.exceptions import BipartitenessError, GraphError, ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph, Vertex


class SchemaEditor:
    """Transactional batch editor over a :class:`Graph` / :class:`BipartiteGraph`.

    Use as a context manager (commit on success, rollback on error) or
    drive :meth:`begin` / :meth:`commit` / :meth:`rollback` explicitly.
    One transaction may be open per editor at a time, and one version
    hold per graph -- opening a second editor on a graph with an open
    transaction raises :class:`~repro.exceptions.GraphError`.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph(edges=[("a", "b")])
    >>> editor = SchemaEditor(g)
    >>> with editor as tx:
    ...     tx.add_edge("b", "c")
    >>> sorted(g.neighbors("b"))
    ['a', 'c']
    """

    def __init__(self, graph: Graph) -> None:
        if not isinstance(graph, Graph):
            raise ValidationError(
                f"SchemaEditor edits Graph instances, got {type(graph).__name__}"
            )
        self._graph = graph
        self._bipartite = isinstance(graph, BipartiteGraph)
        self._journal: List[EditOp] = []
        self._open = False
        self._delta: Optional[SchemaDelta] = None
        self._version_before: Optional[int] = None
        # net effect, maintained incrementally with cancellation
        self._net_vertex_added: dict = {}
        self._net_vertex_removed: dict = {}
        self._net_edge_added: dict = {}
        self._net_edge_removed: dict = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The graph this editor mutates."""
        return self._graph

    @property
    def active(self) -> bool:
        """``True`` while a transaction is open."""
        return self._open

    @property
    def delta(self) -> SchemaDelta:
        """The committed transaction's net delta (raises before commit)."""
        if self._delta is None:
            raise ValidationError(
                "no committed transaction: 'delta' is available after commit()"
            )
        return self._delta

    @property
    def journal(self) -> Tuple[EditOp, ...]:
        """The executed operations of the open (or last) transaction."""
        return tuple(self._journal)

    def begin(self) -> "SchemaEditor":
        """Open a transaction: hold the version, start a fresh journal."""
        if self._open:
            raise GraphError("this editor already has an open transaction")
        self._graph._hold_version()
        self._open = True
        self._delta = None
        self._journal = []
        self._version_before = self._graph.mutation_version
        self._net_vertex_added = {}
        self._net_vertex_removed = {}
        self._net_edge_added = {}
        self._net_edge_removed = {}
        return self

    def commit(self) -> SchemaDelta:
        """Close the transaction, bump the version at most once, return the delta.

        The version bumps when the net delta is non-empty -- and also
        when the edits cancelled out structurally (add an edge, then
        remove it): the graph ends unchanged, but a version-gated cache
        may have bound the intermediate structure mid-transaction, and
        only a bump makes it revalidate.  A transaction that never
        executed an effective edit leaves the version untouched.
        """
        self._require_open()
        added_vertices = tuple(sorted(self._net_vertex_added.items(), key=repr))
        removed_vertices = tuple(sorted(self._net_vertex_removed.items(), key=repr))
        # a vertex removed and re-added (side flip) must re-list its
        # surviving edges, or applying the delta would bring it back bare
        restore_readded_incident_edges(
            self._graph, added_vertices, removed_vertices, self._net_edge_added
        )
        changed = bool(
            added_vertices
            or removed_vertices
            or self._net_edge_added
            or self._net_edge_removed
        )
        self._graph._release_version(bump=changed)
        self._open = False
        self._delta = SchemaDelta(
            added_vertices=added_vertices,
            removed_vertices=removed_vertices,
            added_edges=tuple(self._net_edge_added.values()),
            removed_edges=tuple(self._net_edge_removed.values()),
            version_before=self._version_before,
            version_after=self._graph.mutation_version,
            journal=tuple(self._journal),
        )
        return self._delta

    def rollback(self) -> None:
        """Undo every edit of the open transaction and release the version hold.

        The journal is replayed backwards with each operation inverted --
        including the implicit parts (endpoints ``add_edge`` created,
        incident edges ``remove_vertex`` dropped) -- so the graph ends
        structurally identical to the transaction start.  If any edit had
        run, the version still bumps once on release: a reader that bound
        the mid-transaction structure must not keep serving it.
        """
        self._require_open()
        for op in reversed(self._journal):
            self._invert(op)
        self._graph._release_version(bump=False)
        self._open = False
        self._journal = []

    def __enter__(self) -> "SchemaEditor":
        """Open a transaction (``with SchemaEditor(g) as tx:``)."""
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Commit on a clean exit, roll back when the block raised."""
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    # ------------------------------------------------------------------
    # edit operations
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex, side: Optional[int] = None) -> None:
        """Add an isolated vertex (``side`` required on bipartite graphs)."""
        self._require_open()
        if self._graph.has_vertex(vertex):
            if (
                self._bipartite
                and side is not None
                and self._graph.side_of(vertex) != side
            ):
                # mirror BipartiteGraph.add_to_side: a side conflict must
                # fail loudly, not silently leave the vertex where it was
                raise BipartitenessError(
                    f"vertex {vertex!r} is already assigned to side "
                    f"V{self._graph.side_of(vertex)}"
                )
            return  # idempotent re-add on the same side, like the graph API
        if self._bipartite:
            if side is None:
                raise ValidationError(
                    f"vertex {vertex!r} needs a side (1 or 2) on a bipartite graph"
                )
            self._graph.add_to_side(vertex, side)
        else:
            self._graph.add_vertex(vertex)
        self._journal.append(EditOp(kind="add_vertex", vertex=vertex, side=side))
        self._record_vertex_added(vertex, side)

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove a vertex with its incident edges (journalled for rollback)."""
        self._require_open()
        if not self._graph.has_vertex(vertex):
            raise GraphError(f"vertex {vertex!r} is not in the graph")
        side = self._side_of(vertex)
        incident = tuple((vertex, other) for other in sorted(
            self._graph.neighbors(vertex), key=repr
        ))
        self._graph.remove_vertex(vertex)
        self._journal.append(
            EditOp(
                kind="remove_vertex", vertex=vertex, side=side,
                implied_edges=incident,
            )
        )
        for edge in incident:
            self._record_edge_removed(edge)
        self._record_vertex_removed(vertex, side)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add an edge; endpoints created implicitly are journalled too.

        On bipartite graphs the usual side-inference applies: when exactly
        one endpoint is new it lands on the side opposite its partner (two
        new endpoints need :meth:`add_vertex` first, exactly as on the
        graph itself).
        """
        self._require_open()
        if self._graph.has_edge(u, v):
            return  # idempotent
        created = [w for w in (u, v) if not self._graph.has_vertex(w)]
        self._graph.add_edge(u, v)
        implied = tuple((w, self._side_of(w)) for w in created)
        self._journal.append(
            EditOp(kind="add_edge", edge=(u, v), implied_vertices=implied)
        )
        for vertex, side in implied:
            self._record_vertex_added(vertex, side)
        self._record_edge_added((u, v))

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove an edge (endpoints stay, possibly isolated)."""
        self._require_open()
        self._graph.remove_edge(u, v)  # raises GraphError when absent
        self._journal.append(EditOp(kind="remove_edge", edge=(u, v)))
        self._record_edge_removed((u, v))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if not self._open:
            raise GraphError(
                "no open transaction: use 'with SchemaEditor(g) as tx:' or begin()"
            )

    def _side_of(self, vertex: Vertex) -> Optional[int]:
        return self._graph.side_of(vertex) if self._bipartite else None

    def _invert(self, op: EditOp) -> None:
        """Apply the exact inverse of one journalled operation."""
        graph = self._graph
        if op.kind == "add_vertex":
            graph.remove_vertex(op.vertex)
        elif op.kind == "remove_vertex":
            _add_vertex(graph, op.vertex, op.side)
            for a, b in op.implied_edges:
                graph.add_edge(a, b)
        elif op.kind == "add_edge":
            graph.remove_edge(*op.edge)
            for vertex, _ in op.implied_vertices:
                graph.remove_vertex(vertex)
        elif op.kind == "remove_edge":
            graph.add_edge(*op.edge)
        else:  # pragma: no cover - journal entries are editor-made
            raise GraphError(f"unknown journal op {op.kind!r}")

    # net-effect bookkeeping with cancellation: an add that revokes a
    # pending remove (or vice versa) nets to nothing
    def _record_vertex_added(self, vertex: Vertex, side: Optional[int]) -> None:
        if (
            vertex in self._net_vertex_removed
            and self._net_vertex_removed[vertex] == side
        ):
            # removed and re-added on the same side: net nothing
            del self._net_vertex_removed[vertex]
        else:
            self._net_vertex_added[vertex] = side

    def _record_vertex_removed(self, vertex: Vertex, side: Optional[int]) -> None:
        if vertex in self._net_vertex_added:
            del self._net_vertex_added[vertex]
        else:
            self._net_vertex_removed[vertex] = side

    def _record_edge_added(self, edge) -> None:
        key = frozenset(edge)
        if key in self._net_edge_removed:
            del self._net_edge_removed[key]
        else:
            self._net_edge_added[key] = edge

    def _record_edge_removed(self, edge) -> None:
        key = frozenset(edge)
        if key in self._net_edge_added:
            del self._net_edge_added[key]
        else:
            self._net_edge_removed[key] = edge
