"""Incremental schema evolution (``repro.dynamic``).

The paper's interactive scenario assumes the conceptual schema itself
evolves: designers add and drop concepts and associations while users
keep querying.  This package makes schema churn a first-class workload
instead of a cache-flush:

* :class:`~repro.dynamic.editor.SchemaEditor` batches edits into one
  transaction -- applied immediately, rolled back on error, exactly one
  :attr:`~repro.graphs.graph.Graph.mutation_version` bump at commit --
  and emits a structured :class:`~repro.dynamic.delta.SchemaDelta`
  journal;
* :class:`~repro.dynamic.blocks.BlockClassifier` maintains the Theorem 1
  classification incrementally through the biconnected-block
  decomposition (cut vertices are the local separators: an edit only
  ever reclassifies the blocks it touched);
* :meth:`repro.engine.cache.SchemaContext.apply_delta` patches a cached
  schema context -- CSR backend, BFS rows, classification -- instead of
  discarding it, and the :class:`~repro.api.service.ConnectionService`
  uses it automatically when a bound schema mutates
  (:attr:`~repro.api.config.ServiceConfig.incremental`).

See ``docs/dynamic.md`` for the full guide, including the invalidation
chain through the parallel executor and the persistent cache, and the
"churn" workload phase of ``python -m repro run``.
"""

from repro.dynamic.blocks import (
    BlockClassifier,
    biconnected_edge_blocks,
    block_subgraph,
    combine_reports,
)
from repro.dynamic.delta import EditOp, SchemaDelta
from repro.dynamic.editor import SchemaEditor

__all__ = [
    "BlockClassifier",
    "EditOp",
    "SchemaDelta",
    "SchemaEditor",
    "biconnected_edge_blocks",
    "block_subgraph",
    "combine_reports",
]
