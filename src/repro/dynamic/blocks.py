"""Separator-local classification: biconnected blocks and the block memo.

Every class Theorem 1 recognises -- the ``(m, n)``-chordalities, the
side-chordalities and the side-conformalities -- is defined through
cycles, chords and shared-neighbour structures, and all of those live
entirely inside one *biconnected component* (block) of the schema graph:
a cycle never crosses a cut vertex, a chord joins two vertices of the
cycle it chords, and the hubs witnessing (non-)conformality are pinned to
their cliques by cycles of their own.  Hence the decomposition this
module exploits::

    property(G)  ==  AND over blocks B of G:  property(B)

for every field of :class:`~repro.core.classification.ChordalityReport`
(the dynamic test-suite re-validates the equivalence property-based).

That turns cut vertices into the "local separators" of incremental
recognition: a single-edge edit touches one block (or merges the blocks
along one path of the block tree), so re-running the full Theorem 1
machinery is only ever needed on the affected blocks --
:class:`BlockClassifier` memoises every block's report by a structural
key and reclassifies exactly the blocks it has never seen.  On the
515-vertex acceptance schema (293 blocks of <= 9 edges) that is the
difference between ~18 s of monolithic recognition and ~50 ms cold /
single-digit milliseconds per edit warm.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.classification import ChordalityReport, classify_bipartite_graph
from repro.engine.cache import LRUCache, tokens_for
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph, Vertex

Edge = Tuple[Vertex, Vertex]

#: The report of an edgeless (sub)graph: every class holds vacuously.
ALL_TRUE_REPORT = ChordalityReport(
    chordal_41=True,
    chordal_61=True,
    chordal_62=True,
    v1_chordal=True,
    v1_conformal=True,
    v2_chordal=True,
    v2_conformal=True,
)


def biconnected_edge_blocks(graph: Graph) -> List[List[Edge]]:
    """Return the biconnected components of ``graph`` as edge lists.

    Iterative Hopcroft--Tarjan over the deterministic repr-sorted vertex
    and neighbour order, so the same graph always yields the same block
    list.  Every edge appears in exactly one block (a bridge forms a
    two-vertex block of its own); isolated vertices appear in none.
    """
    index: Dict[Vertex, int] = {}
    low: Dict[Vertex, int] = {}
    counter = 0
    edge_stack: List[Edge] = []
    blocks: List[List[Edge]] = []
    for root in graph.sorted_vertices():
        if root in index:
            continue
        index[root] = low[root] = counter
        counter += 1
        dfs: List[Tuple[Vertex, Optional[Vertex], Iterable[Vertex]]] = [
            (root, None, iter(sorted(graph.neighbors(root), key=repr)))
        ]
        while dfs:
            vertex, parent, neighbors = dfs[-1]
            descended = False
            for neighbor in neighbors:
                if neighbor == parent:
                    continue
                if neighbor not in index:
                    edge_stack.append((vertex, neighbor))
                    index[neighbor] = low[neighbor] = counter
                    counter += 1
                    dfs.append(
                        (neighbor, vertex,
                         iter(sorted(graph.neighbors(neighbor), key=repr)))
                    )
                    descended = True
                    break
                if index[neighbor] < index[vertex]:
                    edge_stack.append((vertex, neighbor))
                    low[vertex] = min(low[vertex], index[neighbor])
            if descended:
                continue
            dfs.pop()
            if dfs:
                above = dfs[-1][0]
                low[above] = min(low[above], low[vertex])
                if low[vertex] >= index[above]:
                    # (above, vertex) closes one block
                    block: List[Edge] = []
                    while edge_stack:
                        edge = edge_stack.pop()
                        block.append(edge)
                        if edge == (above, vertex):
                            break
                    blocks.append(block)
    return blocks


def block_subgraph(graph: Graph, edges: Sequence[Edge]) -> Graph:
    """Return one block as a standalone graph, preserving bipartition labels."""
    members = set()
    for u, v in edges:
        members.add(u)
        members.add(v)
    if isinstance(graph, BipartiteGraph):
        return BipartiteGraph(
            left=[v for v in members if graph.side_of(v) == 1],
            right=[v for v in members if graph.side_of(v) == 2],
            edges=edges,
        )
    return Graph(vertices=members, edges=edges)


def combine_reports(reports: Iterable[ChordalityReport]) -> ChordalityReport:
    """AND-combine per-block reports into the whole-graph report.

    The conjunction over an empty iterable is the all-true report, which
    is exactly the classification of an edgeless graph.
    """
    values = {f.name: True for f in fields(ChordalityReport)}
    for report in reports:
        for name in values:
            values[name] = values[name] and getattr(report, name)
    return ChordalityReport(**values)


class BlockClassifier:
    """Memoised blockwise Theorem 1 classification.

    One classifier accompanies one schema lineage (it travels along
    :meth:`~repro.engine.cache.SchemaContext.apply_delta` chains): blocks
    are keyed by a canonical structural key built from the vertices'
    ``(type, repr)`` tokens, so a block that survives an edit -- by far
    the common case -- is never reclassified.  A block whose distinct
    vertices collide on their tokens cannot be keyed trustworthily; it is
    classified on the spot and *not* memoised, mirroring the ambiguity
    fallback of :func:`~repro.engine.cache.schema_fingerprint`.

    Examples
    --------
    >>> from repro.graphs import BipartiteGraph
    >>> g = BipartiteGraph(left=["A", "B"], right=[1], edges=[("A", 1), ("B", 1)])
    >>> classifier = BlockClassifier()
    >>> classifier.classify(g).chordal_41
    True
    >>> classifier.stats()["blocks_classified"]
    1
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self._memo = LRUCache(maxsize=maxsize)
        self._classified = 0
        self._unkeyed = 0

    def classify(self, graph: BipartiteGraph) -> ChordalityReport:
        """Return the whole-graph :class:`ChordalityReport`, blockwise-memoised.

        Equal (by construction of the block decomposition) to
        :func:`~repro.core.classification.classify_bipartite_graph` on the
        same graph; only blocks not seen before are actually classified.
        """
        reports = []
        for edges in biconnected_edge_blocks(graph):
            key = _block_key(graph, edges)
            if key is None:
                self._unkeyed += 1
                self._classified += 1
                reports.append(classify_bipartite_graph(block_subgraph(graph, edges)))
                continue
            report = self._memo.get(key)
            if report is None:
                report = classify_bipartite_graph(block_subgraph(graph, edges))
                self._memo.put(key, report)
                self._classified += 1
            reports.append(report)
        return combine_reports(reports)

    def stats(self) -> dict:
        """Return observability counters (memo hits/misses, work actually done)."""
        return {
            "hits": self._memo.hits,
            "misses": self._memo.misses,
            "size": len(self._memo),
            "blocks_classified": self._classified,
            "unkeyed_blocks": self._unkeyed,
        }


def _block_key(graph: Graph, edges: Sequence[Edge]) -> Optional[Tuple]:
    """Return the canonical memo key of one block, or ``None`` when ambiguous.

    The key covers the block's vertex tokens (with bipartition side) and
    its edge token pairs; ``None`` signals a ``(type, repr)`` collision
    among the block's vertices -- the same ambiguity rule
    :func:`~repro.engine.cache.schema_fingerprint` applies graph-wide,
    via the same :func:`~repro.engine.cache.tokens_for` helper.
    """
    tokens = tokens_for(
        vertex for edge in edges for vertex in edge
    )
    if tokens is None:
        return None
    bipartite = isinstance(graph, BipartiteGraph)
    vertex_part = frozenset(
        (token, graph.side_of(vertex) if bipartite else None)
        for vertex, token in tokens.items()
    )
    edge_part = frozenset(
        frozenset((tokens[u], tokens[v])) for u, v in edges
    )
    return (vertex_part, edge_part)
