"""Structured schema deltas: the edit journal and the net structural diff.

The dynamic subsystem describes every schema evolution twice:

* as a **journal** -- the ordered :class:`EditOp` records a
  :class:`~repro.dynamic.editor.SchemaEditor` transaction actually
  executed (including the implicit vertex creations of ``add_edge`` and
  the implicit edge removals of ``remove_vertex``), which is what makes
  transactions invertible (rollback) and auditable;
* as a **net delta** -- the order-free difference between the structure
  before and after (:class:`SchemaDelta`), which is what
  :meth:`~repro.engine.cache.SchemaContext.apply_delta` consumes: an edit
  that is journalled but cancelled out (add an edge, then remove it)
  contributes nothing to the net delta and therefore costs nothing
  downstream.

:meth:`SchemaDelta.between` computes the net delta of two arbitrary
graphs, so the incremental machinery also works for callers that mutate a
graph directly (without an editor) and only hold the before/after
snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph, Vertex

Edge = Tuple[Vertex, Vertex]


@dataclass(frozen=True)
class EditOp:
    """One executed operation of a :class:`~repro.dynamic.editor.SchemaEditor`.

    Attributes
    ----------
    kind:
        ``"add_vertex"``, ``"remove_vertex"``, ``"add_edge"`` or
        ``"remove_edge"``.
    vertex / side:
        The affected vertex and (for bipartite graphs) its side, recorded
        for the vertex operations so they can be inverted exactly.
    edge:
        The affected edge for the edge operations.
    implied_vertices:
        Vertices (with sides) that ``add_edge`` created implicitly because
        an endpoint was missing; rollback removes them again.
    implied_edges:
        Edges that ``remove_vertex`` removed implicitly (the vertex's
        incident edges); rollback restores them.
    """

    kind: str
    vertex: Optional[Vertex] = None
    side: Optional[int] = None
    edge: Optional[Edge] = None
    implied_vertices: Tuple[Tuple[Vertex, Optional[int]], ...] = ()
    implied_edges: Tuple[Edge, ...] = ()


def _edge_key(edge: Edge) -> frozenset:
    """Canonical (order-free) identity of an undirected edge."""
    return frozenset(edge)


@dataclass(frozen=True)
class SchemaDelta:
    """The net structural difference between two versions of a schema graph.

    ``added_vertices`` pairs every new vertex with its bipartition side
    (``None`` on plain graphs); edges are plain ``(u, v)`` tuples.  The
    optional ``version_before``/``version_after`` record the graph's
    :attr:`~repro.graphs.graph.Graph.mutation_version` around an editor
    transaction, and ``journal`` keeps the executed operations for
    auditability -- neither influences :meth:`apply_to`.
    """

    added_vertices: Tuple[Tuple[Vertex, Optional[int]], ...] = ()
    removed_vertices: Tuple[Tuple[Vertex, Optional[int]], ...] = ()
    added_edges: Tuple[Edge, ...] = ()
    removed_edges: Tuple[Edge, ...] = ()
    version_before: Optional[int] = None
    version_after: Optional[int] = None
    journal: Tuple[EditOp, ...] = field(default=(), repr=False)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """Return ``True`` when the delta changes nothing structurally."""
        return not (
            self.added_vertices
            or self.removed_vertices
            or self.added_edges
            or self.removed_edges
        )

    def touched_vertices(self) -> set:
        """Return every vertex involved in the net delta (edit locality)."""
        touched = {v for v, _ in self.added_vertices}
        touched |= {v for v, _ in self.removed_vertices}
        for u, v in self.added_edges:
            touched.add(u)
            touched.add(v)
        for u, v in self.removed_edges:
            touched.add(u)
            touched.add(v)
        return touched

    def size(self) -> int:
        """Return the number of net edits (vertices + edges, both signs)."""
        return (
            len(self.added_vertices)
            + len(self.removed_vertices)
            + len(self.added_edges)
            + len(self.removed_edges)
        )

    def summary(self) -> str:
        """Return a compact human-readable description of the net effect."""
        return (
            f"+{len(self.added_vertices)}v/-{len(self.removed_vertices)}v "
            f"+{len(self.added_edges)}e/-{len(self.removed_edges)}e"
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def between(cls, old: Graph, new: Graph) -> "SchemaDelta":
        """Return the net delta turning ``old`` into ``new`` (structural diff).

        Vertices present in both graphs but assigned to *different*
        bipartition sides are treated as removed-then-added, so applying
        the delta reproduces ``new`` exactly.  The two graphs must be of
        compatible kinds (both bipartite or both plain).
        """
        old_sides = _side_map(old)
        new_sides = _side_map(new)
        old_vertices = old.vertices()
        new_vertices = new.vertices()
        added = []
        removed = []
        for vertex in sorted(new_vertices - old_vertices, key=repr):
            added.append((vertex, new_sides.get(vertex)))
        for vertex in sorted(old_vertices - new_vertices, key=repr):
            removed.append((vertex, old_sides.get(vertex)))
        for vertex in sorted(old_vertices & new_vertices, key=repr):
            if old_sides.get(vertex) != new_sides.get(vertex):
                removed.append((vertex, old_sides.get(vertex)))
                added.append((vertex, new_sides.get(vertex)))
        old_edges = {_edge_key(edge): edge for edge in old.edges()}
        new_edges = {_edge_key(edge): edge for edge in new.edges()}
        added_edge_map = {
            key: new_edges[key] for key in new_edges.keys() - old_edges.keys()
        }
        removed_edges = tuple(
            old_edges[key]
            for key in sorted(old_edges.keys() - new_edges.keys(), key=repr)
        )
        restore_readded_incident_edges(new, added, removed, added_edge_map)
        return cls(
            added_vertices=tuple(added),
            removed_vertices=tuple(removed),
            added_edges=tuple(
                added_edge_map[key]
                for key in sorted(added_edge_map.keys(), key=repr)
            ),
            removed_edges=removed_edges,
            version_before=getattr(old, "mutation_version", None),
            version_after=getattr(new, "mutation_version", None),
        )

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply_to(self, graph: Graph) -> Graph:
        """Apply the net delta to ``graph`` in place (and return it).

        The order is fixed -- remove edges, remove vertices, add vertices,
        add edges -- so a vertex that changed sides (removed + added) is
        recreated before its surviving edges are restored.  Edges whose
        endpoints are themselves removed are dropped implicitly by
        ``remove_vertex``.
        """
        removed_vertex_set = {vertex for vertex, _ in self.removed_vertices}
        for u, v in self.removed_edges:
            if u in removed_vertex_set or v in removed_vertex_set:
                continue  # falls with its endpoint below
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
        for vertex in removed_vertex_set:
            if graph.has_vertex(vertex):
                graph.remove_vertex(vertex)
        for vertex, side in self.added_vertices:
            _add_vertex(graph, vertex, side)
        for u, v in self.added_edges:
            graph.add_edge(u, v)
        return graph


def restore_readded_incident_edges(
    graph_after: Graph, added_vertices, removed_vertices, added_edge_map: dict
) -> None:
    """Ensure re-added vertices get their surviving edges back (in place).

    :meth:`SchemaDelta.apply_to` drops a removed vertex's incident edges
    implicitly (``remove_vertex`` semantics).  A vertex that is *removed
    and re-added* in the same delta -- the side-change encoding, or an
    editor transaction that flips sides -- therefore comes back bare
    unless every edge it keeps in the final graph is (re)listed in
    ``added_edges``, even though those edges exist before and after and a
    naive set diff nets them out.  Both delta constructors
    (:meth:`SchemaDelta.between` and ``SchemaEditor.commit``) call this
    on their ``{edge key: edge}`` map of net added edges before freezing
    the delta.
    """
    readded = {vertex for vertex, _ in added_vertices} & {
        vertex for vertex, _ in removed_vertices
    }
    for vertex in readded:
        for neighbor in graph_after.neighbors(vertex):
            key = _edge_key((vertex, neighbor))
            added_edge_map.setdefault(key, (vertex, neighbor))


def _side_map(graph: Graph) -> dict:
    """Return ``{vertex: side}`` for bipartite graphs, ``{}`` otherwise."""
    if isinstance(graph, BipartiteGraph):
        return {vertex: graph.side_of(vertex) for vertex in graph.vertices()}
    return {}


def _add_vertex(graph: Graph, vertex: Vertex, side: Optional[int]) -> None:
    """Add ``vertex`` honouring the side label when the graph is bipartite."""
    if isinstance(graph, BipartiteGraph):
        if side is None:
            raise ValidationError(
                f"vertex {vertex!r} needs a side (1 or 2) to be added to a "
                "bipartite graph"
            )
        graph.add_to_side(vertex, side)
    else:
        graph.add_vertex(vertex)
