"""Metric registries and the Prometheus text exposition renderer.

A :class:`MetricsRegistry` owns a namespace of instrument families
(get-or-create by name, so every component naming the same metric shares
one family) plus a set of *snapshot collectors*: callbacks run at
:meth:`MetricsRegistry.render_text` time that copy existing plain-int
counters -- ``cache_stats()``, :class:`~repro.kernels.oracle.OracleStats`,
shared-memory segment inventories -- into gauges, the MAAS pattern of
keeping metric definitions separate from collection sites so everything
is testable without a live scrape.  Collectors registered from bound
methods are held through :class:`weakref.WeakMethod`, so instrumented
objects (services, executors) stay garbage-collectable; a dead collector
is silently pruned at the next render.

:func:`default_metrics` returns the process-wide registry every
:class:`~repro.api.service.ConnectionService` uses unless its
:class:`~repro.api.config.ServiceConfig` injects one.
:class:`NullRegistry` is the no-op implementation the differential suite
(and overhead-sensitive callers) inject: every instrument it hands out
swallows writes, and rendering returns the empty string.

The renderer emits the Prometheus text exposition format (version
0.0.4): ``# HELP`` / ``# TYPE`` comment pairs followed by one sample
line per child, with histogram children expanded into cumulative
``_bucket{le=...}`` series plus ``_sum`` and ``_count`` -- exactly what
the ROADMAP item 1 server will serve verbatim from its ``/metrics``
endpoint.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.metrics.instruments import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    escape_label_value,
    format_value,
)


#: Version stamp on registry snapshots; mismatched snapshots are ignored
#: on merge, so mixed-version parent/worker pairs degrade to "no worker
#: metrics" instead of corrupting the parent registry.
SNAPSHOT_VERSION = 1


class MetricsRegistry:
    """A namespace of instrument families plus render-time collectors."""

    def __init__(self) -> None:
        """Start empty; families appear on first get-or-create."""
        self._families: "Dict[str, MetricFamily]" = {}
        self._collectors: List[Callable[[], Optional[Callable[[], None]]]] = []

    # ------------------------------------------------------------------
    # instrument factories (get-or-create, validated against redefinition)
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        family = self._families.get(name)
        if family is not None:
            if type(family) is not cls or family.labelnames != tuple(labelnames):
                raise ValidationError(
                    f"metric {name!r} already registered as a "
                    f"{family.kind} with labels {list(family.labelnames)}"
                )
            return family
        family = cls(name, help, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        """Return (creating on first use) the named :class:`Counter` family."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        """Return (creating on first use) the named :class:`Gauge` family."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Return (creating on first use) the named :class:`Histogram` family."""
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        """Return the named family, or ``None`` when nothing declared it."""
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        """Return every declared family, in declaration order."""
        return list(self._families.values())

    def __contains__(self, name: str) -> bool:
        """True when a family with this name has been declared."""
        return name in self._families

    # ------------------------------------------------------------------
    # cross-process transport: snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self, kinds: Optional[Iterable[str]] = None) -> dict:
        """Return a picklable snapshot of the registry's instrument state.

        ``kinds`` optionally restricts the snapshot to some instrument
        kinds (``"counter"`` / ``"gauge"`` / ``"histogram"``) -- the shard
        envelope ships only counters and histograms, because those merge
        additively; point-in-time gauges from a dead worker are noise.
        Snapshot collectors do **not** run: a snapshot is the raw
        instrument state, cheap enough for a worker's result envelope.
        """
        wanted = None if kinds is None else set(kinds)
        return {
            "v": SNAPSHOT_VERSION,
            "families": [
                family.snapshot()
                for family in self._families.values()
                if wanted is None or family.kind in wanted
            ],
        }

    def merge_snapshot(self, snapshot: Optional[dict]) -> None:
        """Fold a :meth:`snapshot` (or :func:`snapshot_delta`) into this registry.

        Families are get-or-created with the snapshot's declaration
        (name, help, labels, buckets), so merging works even before the
        receiver has declared the instrument itself.  Counters and
        histograms merge additively; gauges are set.  ``None`` and
        version-mismatched snapshots are ignored -- shipping metrics is
        best-effort and must never take the serving path down.
        """
        if not isinstance(snapshot, dict) or snapshot.get("v") != SNAPSHOT_VERSION:
            return
        for record in snapshot.get("families", ()):
            kind = record.get("kind")
            if kind == "counter":
                family = self.counter(
                    record["name"], record.get("help", ""), record["labelnames"]
                )
            elif kind == "gauge":
                family = self.gauge(
                    record["name"], record.get("help", ""), record["labelnames"]
                )
            elif kind == "histogram":
                family = self.histogram(
                    record["name"],
                    record.get("help", ""),
                    record["labelnames"],
                    buckets=record.get("buckets"),
                )
            else:
                continue
            for key, state in record.get("children", ()):
                family.merge_child(key, state)

    # ------------------------------------------------------------------
    # snapshot collectors
    # ------------------------------------------------------------------
    def register_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run before every :meth:`render_text`.

        Collectors copy existing plain counters into gauges at scrape
        time.  A *bound method* is held weakly (through
        :class:`weakref.WeakMethod`): when its owner is collected the
        entry is pruned silently, so registering a service's exporter
        here never pins the service alive.  Any other callable is held
        strongly -- the caller owns its lifetime.
        """
        if hasattr(collector, "__self__"):
            self._collectors.append(weakref.WeakMethod(collector))
        else:
            self._collectors.append(lambda bound=collector: bound)

    def run_collectors(self) -> None:
        """Run every live collector, pruning the dead ones.

        A collector that raises is dropped (and the error swallowed):
        observability must never take the serving path down, the same
        contract the :class:`~repro.runtime.diskcache.DiskCache` keeps.
        """
        survivors = []
        for entry in self._collectors:
            bound = entry()
            if bound is None:
                continue
            try:
                bound()
            except Exception:
                continue
            survivors.append(entry)
        self._collectors = survivors

    def collector_count(self) -> int:
        """Return how many collectors are currently registered (live or dead)."""
        return len(self._collectors)

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """Render every family in the Prometheus text exposition format.

        Snapshot collectors run first, so exported gauges are current as
        of this call.  The output ends with a newline (as the format
        requires) unless no family was ever declared.
        """
        self.run_collectors()
        lines: List[str] = []
        for family in self._families.values():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                pairs = list(zip(family.labelnames, key))
                if isinstance(family, Histogram):
                    cumulative = child.cumulative()
                    edges = [*family.bucket_edges, float("inf")]
                    for edge, count in zip(edges, cumulative):
                        lines.append(
                            _sample(
                                f"{family.name}_bucket",
                                pairs + [("le", format_value(edge))],
                                count,
                            )
                        )
                    lines.append(_sample(f"{family.name}_sum", pairs, child.sum))
                    lines.append(_sample(f"{family.name}_count", pairs, child.count))
                else:
                    lines.append(_sample(family.name, pairs, child.value))
        return "\n".join(lines) + ("\n" if lines else "")


def _escape_help(text: str) -> str:
    """Escape a help string for its ``# HELP`` comment line."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _sample(name: str, pairs: List[Tuple[str, str]], value) -> str:
    """Format one exposition sample line."""
    if pairs:
        labels = ",".join(
            f'{label}="{escape_label_value(str(v))}"' for label, v in pairs
        )
        return f"{name}{{{labels}}} {format_value(float(value))}"
    return f"{name} {format_value(float(value))}"


class _NullInstrument:
    """The shared do-nothing instrument every :class:`NullRegistry` hands out."""

    def labels(self, **labelvalues) -> "_NullInstrument":
        """Return itself: children of a no-op are the same no-op."""
        return self

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""

    def dec(self, amount: float = 1.0) -> None:
        """Discard the decrement."""

    def set(self, value: float) -> None:
        """Discard the value."""

    def observe(self, value: float) -> None:
        """Discard the observation."""

    def quantile(self, q: float) -> None:
        """No data: always ``None``."""
        return None

    def merged(self) -> "_NullInstrument":
        """Return itself (family-level roll-up of nothing)."""
        return self

    def total_count(self) -> int:
        """No data: always zero."""
        return 0

    @property
    def value(self) -> float:
        """No data: always zero."""
        return 0.0

    @property
    def count(self) -> int:
        """No data: always zero."""
        return 0


_NULL = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry whose instruments discard everything.

    Injected through ``ServiceConfig(metrics=NullRegistry())`` to disable
    instrumentation entirely -- the overhead benchmark's baseline, and
    the differential suite's proof that metrics never perturb answers.
    """

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        """Return the shared no-op instrument."""
        return _NULL

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        """Return the shared no-op instrument."""
        return _NULL

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        """Return the shared no-op instrument."""
        return _NULL

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Discard the collector (nothing will ever render)."""

    def snapshot(self, kinds: Optional[Iterable[str]] = None) -> dict:
        """A no-op registry has no state to ship."""
        return {"v": SNAPSHOT_VERSION, "families": []}

    def merge_snapshot(self, snapshot: Optional[dict]) -> None:
        """Discard the snapshot (its no-op instruments cannot hold it)."""

    def render_text(self) -> str:
        """A no-op registry exposes nothing."""
        return ""


def snapshot_delta(after: dict, before: dict) -> dict:
    """Return the additive difference between two registry snapshots.

    The shard-envelope primitive: a pool worker's service registry is
    long-lived (workers are reused across batches), so shipping its raw
    state would double-count everything already shipped.  The worker
    snapshots its registry before and after one batch and sends only the
    difference.  Counters keep their value delta; histograms keep the
    per-bucket count deltas plus sum/count deltas with ``min``/``max``
    cleared (extrema are not differentiable -- the merged parent histogram
    simply keeps its own observed range).  Gauges and unchanged children
    are dropped; families left with no children are dropped too.
    """
    if (
        not isinstance(after, dict)
        or not isinstance(before, dict)
        or after.get("v") != SNAPSHOT_VERSION
        or before.get("v") != SNAPSHOT_VERSION
    ):
        return {"v": SNAPSHOT_VERSION, "families": []}
    previous = {
        record["name"]: {tuple(key): state for key, state in record["children"]}
        for record in before.get("families", ())
    }
    families = []
    for record in after.get("families", ()):
        if record.get("kind") not in ("counter", "histogram"):
            continue
        baseline = previous.get(record["name"], {})
        children = []
        for key, state in record.get("children", ()):
            prior = baseline.get(tuple(key))
            if record["kind"] == "counter":
                delta = float(state) - (float(prior) if prior is not None else 0.0)
                if delta > 0:
                    children.append([key, delta])
            else:
                prior_counts = prior["counts"] if prior is not None else None
                delta_state = {
                    "counts": [
                        count - (prior_counts[position] if prior_counts else 0)
                        for position, count in enumerate(state["counts"])
                    ],
                    "sum": state["sum"] - (prior["sum"] if prior is not None else 0.0),
                    "count": state["count"] - (prior["count"] if prior is not None else 0),
                    "min": None,
                    "max": None,
                }
                if delta_state["count"] > 0:
                    children.append([key, delta_state])
        if children:
            families.append({**record, "children": children})
    return {"v": SNAPSHOT_VERSION, "families": families}


_DEFAULT_REGISTRY: Optional[MetricsRegistry] = None


def default_metrics() -> MetricsRegistry:
    """Return the process-wide default registry (lazily constructed).

    Every service whose :class:`~repro.api.config.ServiceConfig` does not
    inject a registry collects here, mirroring
    :func:`~repro.api.service.default_service`.
    """
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = MetricsRegistry()
    return _DEFAULT_REGISTRY
