"""Prometheus-style instruments: :class:`Counter`, :class:`Gauge`, :class:`Histogram`.

Each instrument is a *family*: a metric name, a help string, and an
optional tuple of label names.  Calling :meth:`MetricFamily.labels` with
one value per label name returns (creating on first use) an independent
*child* holding that label combination's state; a family declared without
label names owns a single implicit child and exposes the child operations
(``inc`` / ``set`` / ``observe``) directly, so unlabeled metrics read
naturally at call sites.

The histogram keeps fixed cumulative-style buckets (log-spaced latency
edges by default, see :data:`DEFAULT_LATENCY_BUCKETS`) plus the running
sum, count, minimum and maximum, which together power a streaming
quantile estimate (:meth:`HistogramChild.quantile`): the estimate is
linearly interpolated inside the bucket that contains the requested rank
and clamped to the observed ``[min, max]`` range, so it always lands in
the same bucket as the exact empirical quantile -- the property the test
suite pins on random workloads.

Everything here is zero-dependency and, like the engine's LRU caches,
single-threaded by contract: collection sites and scrapes run on the
service's thread (pool *workers* keep their own registries and never
share instruments across processes).
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ValidationError

#: Default histogram bucket upper edges, in seconds: log-spaced from
#: 100 microseconds to 10 seconds (the latency range the query paths
#: span), with ``+Inf`` always appended implicitly.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _validate_metric_name(name: str) -> str:
    """Return ``name`` if it is a legal exposition metric name, else raise."""
    if not isinstance(name, str) or not _METRIC_NAME.match(name):
        raise ValidationError(
            f"invalid metric name {name!r}: must match {_METRIC_NAME.pattern}"
        )
    return name


def _validate_label_names(labelnames: Iterable[str]) -> Tuple[str, ...]:
    """Return the validated, tuple-ised label names of a family."""
    names = tuple(labelnames)
    seen = set()
    for label in names:
        if not isinstance(label, str) or not _LABEL_NAME.match(label):
            raise ValidationError(
                f"invalid label name {label!r}: must match {_LABEL_NAME.pattern}"
            )
        if label.startswith("__") or label == "le":
            # __-prefixed names are reserved by Prometheus, and ``le`` is
            # the histogram bucket label the renderer adds itself
            raise ValidationError(f"reserved label name {label!r}")
        if label in seen:
            raise ValidationError(f"duplicate label name {label!r}")
        seen.add(label)
    return names


def escape_label_value(value: str) -> str:
    """Escape a label value for the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value the way the exposition format expects."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricFamily:
    """Shared family machinery: name, help, label names, child registry."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> None:
        """Declare a family; ``labelnames`` fixes the child key schema."""
        self.name = _validate_metric_name(name)
        self.help = help
        self.labelnames = _validate_label_names(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            # the implicit single child of an unlabeled family
            self._children[()] = self._new_child()

    # child construction is the only per-kind variation
    def _new_child(self):
        raise NotImplementedError  # pragma: no cover - abstract

    def labels(self, **labelvalues) -> object:
        """Return (creating on first use) the child for one label combination.

        Every declared label name must be supplied; values are coerced to
        strings (label values are strings in the exposition format).
        """
        if set(labelvalues) != set(self.labelnames):
            raise ValidationError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Return ``[(label value tuple, child), ...]`` in creation order."""
        return list(self._children.items())

    def _solo(self):
        """Return the implicit child; unlabeled families proxy through it."""
        if self.labelnames:
            raise ValidationError(
                f"metric {self.name!r} is labeled ({list(self.labelnames)}); "
                "call .labels(...) first"
            )
        return self._children[()]

    def _child_for_key(self, key: Sequence[str]):
        """Return (creating on first use) the child for a raw label-value key.

        The merge-side twin of :meth:`labels`: snapshots carry the key as
        a plain value tuple, so merging must not round-trip through
        keyword arguments (label *names* may legally collide with Python
        keywords).
        """
        values = tuple(str(value) for value in key)
        if len(values) != len(self.labelnames):
            raise ValidationError(
                f"metric {self.name!r} takes {len(self.labelnames)} label "
                f"value(s), snapshot child key has {len(values)}"
            )
        child = self._children.get(values)
        if child is None:
            child = self._new_child()
            self._children[values] = child
        return child

    # ------------------------------------------------------------------
    # snapshot / merge (cross-process metric transport)
    # ------------------------------------------------------------------
    def _child_state(self, child):
        raise NotImplementedError  # pragma: no cover - abstract

    def _merge_child_state(self, child, state) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def snapshot(self) -> dict:
        """Return this family's picklable state (see ``MetricsRegistry.snapshot``)."""
        record = {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "children": [
                [list(key), self._child_state(child)]
                for key, child in self.children()
            ],
        }
        return record

    def merge_child(self, key: Sequence[str], state) -> None:
        """Fold one snapshotted child's state into this family."""
        self._merge_child_state(self._child_for_key(key), state)


class CounterChild:
    """A monotonically increasing count for one label combination."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        """Start at zero."""
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise ValidationError("counters can only increase")
        self.value += amount


class Counter(MetricFamily):
    """A family of monotonically increasing counts."""

    kind = "counter"

    def _new_child(self) -> CounterChild:
        """Return a fresh zeroed child."""
        return CounterChild()

    def _child_state(self, child: CounterChild) -> float:
        """A counter child's state is its count."""
        return child.value

    def _merge_child_state(self, child: CounterChild, state) -> None:
        """Counters merge additively (a worker's count joins the parent's)."""
        child.inc(float(state))

    def inc(self, amount: float = 1.0) -> None:
        """Increment the implicit child of an unlabeled counter."""
        self._solo().inc(amount)

    @property
    def value(self) -> float:
        """The implicit child's current count (unlabeled counters only)."""
        return self._solo().value


class GaugeChild:
    """A value that can go up and down, for one label combination."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        """Start at zero."""
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.value -= amount


class Gauge(MetricFamily):
    """A family of set-able values (sizes, rates, snapshot exports)."""

    kind = "gauge"

    def _new_child(self) -> GaugeChild:
        """Return a fresh zeroed child."""
        return GaugeChild()

    def _child_state(self, child: GaugeChild) -> float:
        """A gauge child's state is its current value."""
        return child.value

    def _merge_child_state(self, child: GaugeChild, state) -> None:
        """Gauges merge last-writer-wins (a snapshot *is* a point-in-time set)."""
        child.set(float(state))

    def set(self, value: float) -> None:
        """Set the implicit child of an unlabeled gauge."""
        self._solo().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the implicit child of an unlabeled gauge."""
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the implicit child of an unlabeled gauge."""
        self._solo().dec(amount)

    @property
    def value(self) -> float:
        """The implicit child's current value (unlabeled gauges only)."""
        return self._solo().value


class HistogramChild:
    """Fixed-bucket distribution plus a streaming quantile estimate."""

    __slots__ = ("buckets", "counts", "sum", "count", "min", "max")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        """``buckets`` are the finite upper edges; ``+Inf`` is implicit."""
        self.buckets = buckets
        # counts[i] is the number of observations in (buckets[i-1],
        # buckets[i]]; the final slot is the implicit +Inf bucket
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def cumulative(self) -> List[int]:
        """Return the cumulative bucket counts (exposition ``le`` semantics)."""
        out: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile from the bucket counts.

        The estimate is linearly interpolated inside the bucket whose
        cumulative count first reaches rank ``q * count`` -- the same
        bucket the exact empirical quantile lies in -- and clamped to the
        observed ``[min, max]``, so it can never leave the observed range.
        Returns ``None`` before the first observation.
        """
        if self.count == 0 or self.min is None or self.max is None:
            return None
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        running = 0
        lower = self.min
        for position, count in enumerate(self.counts):
            upper = (
                self.buckets[position] if position < len(self.buckets) else self.max
            )
            if running + count >= target and count > 0:
                fraction = (target - running) / count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
            running += count
            lower = max(upper, self.min)
        return self.max  # pragma: no cover - counts always sum to count


class Histogram(MetricFamily):
    """A family of fixed-bucket latency/size distributions."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        """``buckets`` are finite upper edges (sorted, deduplicated here)."""
        chosen = DEFAULT_LATENCY_BUCKETS if buckets is None else tuple(buckets)
        edges = tuple(sorted(set(float(edge) for edge in chosen)))
        if not edges or any(
            edge != edge or edge in (float("inf"), float("-inf")) for edge in edges
        ):
            raise ValidationError(
                "histogram buckets must be a non-empty sequence of finite "
                "edges (+Inf is implicit)"
            )
        self._buckets = edges
        super().__init__(name, help, labelnames)

    def _new_child(self) -> HistogramChild:
        """Return a fresh child sharing this family's bucket edges."""
        return HistogramChild(self._buckets)

    def snapshot(self) -> dict:
        """Family state plus the bucket edges (receivers must agree on them)."""
        record = super().snapshot()
        record["buckets"] = list(self._buckets)
        return record

    def _child_state(self, child: HistogramChild) -> dict:
        """A histogram child's state: per-bucket counts plus the scalars."""
        return {
            "counts": list(child.counts),
            "sum": child.sum,
            "count": child.count,
            "min": child.min,
            "max": child.max,
        }

    def _merge_child_state(self, child: HistogramChild, state) -> None:
        """Histograms merge additively; ``None`` min/max (deltas) contribute nothing."""
        counts = state["counts"]
        if len(counts) != len(child.counts):
            raise ValidationError(
                f"histogram {self.name!r}: snapshot has {len(counts)} bucket "
                f"count(s), this family has {len(child.counts)} -- bucket "
                "edges must agree between producer and receiver"
            )
        for position, count in enumerate(counts):
            child.counts[position] += count
        child.sum += state["sum"]
        child.count += state["count"]
        if state["min"] is not None and (child.min is None or state["min"] < child.min):
            child.min = state["min"]
        if state["max"] is not None and (child.max is None or state["max"] > child.max):
            child.max = state["max"]

    @property
    def bucket_edges(self) -> Tuple[float, ...]:
        """The finite upper bucket edges of every child."""
        return self._buckets

    def observe(self, value: float) -> None:
        """Observe into the implicit child of an unlabeled histogram."""
        self._solo().observe(value)

    def quantile(self, q: float) -> Optional[float]:
        """Quantile estimate of the implicit child (unlabeled histograms)."""
        return self._solo().quantile(q)

    def merged(self) -> HistogramChild:
        """Return a synthetic child aggregating every labeled child.

        The roll-up the CLI report uses: bucket counts, sum, count and
        min/max are merged across label combinations, so family-level
        p50/p99 come out of the same :meth:`HistogramChild.quantile`
        estimator.
        """
        total = HistogramChild(self._buckets)
        for _, child in self.children():
            total.sum += child.sum
            total.count += child.count
            for position, count in enumerate(child.counts):
                total.counts[position] += count
            if child.min is not None and (total.min is None or child.min < total.min):
                total.min = child.min
            if child.max is not None and (total.max is None or child.max > total.max):
                total.max = child.max
        return total

    def total_count(self) -> int:
        """Total observations across every child of the family."""
        return sum(child.count for _, child in self.children())
