"""Zero-dependency observability: instruments, registries, text exposition.

The subsystem ROADMAP item 2 asked for: Prometheus-style
:class:`Counter` / :class:`Gauge` / :class:`Histogram` families with
labeled children, a process-wide default :class:`MetricsRegistry`
(injectable per :class:`~repro.api.config.ServiceConfig`), and
:meth:`MetricsRegistry.render_text` emitting the text exposition format.
Collection sites live in the layers themselves -- see
``docs/observability.md`` for the full site table.
"""

from repro.metrics.instruments import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    escape_label_value,
    format_value,
)
from repro.metrics.registry import (
    SNAPSHOT_VERSION,
    MetricsRegistry,
    NullRegistry,
    default_metrics,
    snapshot_delta,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "SNAPSHOT_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "default_metrics",
    "escape_label_value",
    "format_value",
    "snapshot_delta",
]
