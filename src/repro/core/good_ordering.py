"""Good orderings (Definition 11, Corollary 5, Theorem 6).

An ordering of the vertices of a bipartite graph is *good* when, for every
terminal set ``P``, greedily eliminating redundant vertices in that order
produces a **minimum** cover of ``P``.  The paper proves:

* Corollary 5: on (6,2)-chordal bipartite graphs *every* ordering is good
  (because every nonredundant cover is minimum, Lemma 5);
* Theorem 6: there is a (6,1)-chordal bipartite graph on which *no*
  ordering is good -- so any polynomial Steiner algorithm for that class,
  if one exists, cannot be based on an elimination ordering.

Checking a single ordering against all terminal sets is exponential in
``|V|``; the functions below therefore accept explicit terminal-set
collections, caps on the terminal-set size, or the *case decomposition*
used in the paper's proof of Theorem 6 (every ordering is killed by one of
four witness terminal sets, depending on which "hub" vertex appears first),
which allows an exact, exhaustive verification of the counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, permutations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.core.covers import minimum_cover_size
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph, Vertex
from repro.graphs.traversal import vertices_in_same_component
from repro.utils.rng import RandomLike, ensure_rng


# ----------------------------------------------------------------------
# fast internal greedy elimination (plain dict-of-sets, no Graph objects)
# ----------------------------------------------------------------------
def _adjacency_map(graph: Graph) -> Dict[Vertex, Set[Vertex]]:
    return {v: graph.neighbors(v) for v in graph.vertices()}


def _terminals_connected(
    adjacency: Dict[Vertex, Set[Vertex]], kept: Set[Vertex], terminals: Set[Vertex]
) -> bool:
    """Do ``terminals`` lie in one component of the subgraph induced by ``kept``?"""
    if not terminals <= kept:
        return False
    start = next(iter(terminals))
    seen = {start}
    stack = [start]
    while stack:
        current = stack.pop()
        for neighbor in adjacency[current]:
            if neighbor in kept and neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return terminals <= seen


def _terminal_component(
    adjacency: Dict[Vertex, Set[Vertex]], kept: Set[Vertex], terminals: Set[Vertex]
) -> Set[Vertex]:
    """Return the terminals' component of the subgraph induced by ``kept``."""
    start = next(iter(terminals))
    seen = {start}
    stack = [start]
    while stack:
        current = stack.pop()
        for neighbor in adjacency[current]:
            if neighbor in kept and neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return seen


def fast_greedy_cover(
    graph: Graph, terminals: Iterable[Vertex], ordering: Sequence[Vertex]
) -> Set[Vertex]:
    """Greedy elimination along ``ordering`` (single-vertex removals).

    Equivalent to :func:`repro.core.covers.greedy_elimination_cover` with
    ``removal_batches=False`` but implemented on plain adjacency maps so the
    exhaustive Theorem 6 verification stays affordable.  A vertex is
    redundant when the terminals stay connected without it; the returned
    set is the terminals' component of the final graph.
    """
    terminal_set = set(terminals)
    adjacency = _adjacency_map(graph)
    # restrict to the component containing the terminals
    start = next(iter(terminal_set))
    component = {start}
    stack = [start]
    while stack:
        current = stack.pop()
        for neighbor in adjacency[current]:
            if neighbor not in component:
                component.add(neighbor)
                stack.append(neighbor)
    if not terminal_set <= component:
        raise ValidationError("terminals are not in a single component")
    kept = set(component)
    for vertex in ordering:
        if vertex not in kept or vertex in terminal_set:
            continue
        candidate = kept - {vertex}
        if candidate and _terminals_connected(adjacency, candidate, terminal_set):
            kept = candidate
    return _terminal_component(adjacency, kept, terminal_set)


# ----------------------------------------------------------------------
# goodness of an ordering
# ----------------------------------------------------------------------
def candidate_terminal_sets(
    graph: Graph, max_size: Optional[int] = None, min_size: int = 2
) -> List[FrozenSet[Vertex]]:
    """Enumerate the feasible terminal sets (all in one component).

    The number of subsets grows exponentially; ``max_size`` caps the subset
    size.  Singletons are excluded by default because they are trivially
    handled by every ordering.
    """
    vertices = graph.sorted_vertices()
    top = len(vertices) if max_size is None else min(max_size, len(vertices))
    result = []
    for size in range(min_size, top + 1):
        for subset in combinations(vertices, size):
            if vertices_in_same_component(graph, subset):
                result.append(frozenset(subset))
    return result


def find_bad_terminal_set(
    graph: Graph,
    ordering: Sequence[Vertex],
    terminal_sets: Optional[Iterable[Iterable[Vertex]]] = None,
    max_size: Optional[int] = None,
) -> Optional[FrozenSet[Vertex]]:
    """Return a terminal set on which the ordering is not good, or ``None``.

    ``terminal_sets`` defaults to every feasible subset (with optional size
    cap) -- exponential, so pass an explicit collection on larger graphs.
    """
    if terminal_sets is None:
        terminal_sets = candidate_terminal_sets(graph, max_size=max_size)
    minimum_cache: Dict[FrozenSet[Vertex], int] = {}
    for terminals in terminal_sets:
        terminal_set = frozenset(terminals)
        cover = fast_greedy_cover(graph, terminal_set, ordering)
        if terminal_set not in minimum_cache:
            minimum_cache[terminal_set] = minimum_cover_size(graph, terminal_set)
        if len(cover) > minimum_cache[terminal_set]:
            return terminal_set
    return None


def is_good_ordering(
    graph: Graph,
    ordering: Sequence[Vertex],
    terminal_sets: Optional[Iterable[Iterable[Vertex]]] = None,
    max_size: Optional[int] = None,
) -> bool:
    """Check Definition 11 for one ordering (w.r.t. the given terminal sets)."""
    return (
        find_bad_terminal_set(
            graph, ordering, terminal_sets=terminal_sets, max_size=max_size
        )
        is None
    )


# ----------------------------------------------------------------------
# Theorem 6: case-based exhaustive verification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OrderingCase:
    """One case of the Theorem 6 argument.

    ``pivot`` is the hub vertex assumed to appear first among ``hubs`` in
    the ordering, and ``witness`` is the terminal set on which every such
    ordering fails to be good.
    """

    pivot: Vertex
    hubs: FrozenSet[Vertex]
    witness: FrozenSet[Vertex]


def verify_case_exhaustively(graph: Graph, case: OrderingCase) -> bool:
    """Exhaustively verify one Theorem 6 case.

    Every relative order of the non-terminal vertices in which ``pivot``
    precedes the other hubs is checked; the case holds when greedy
    elimination yields a non-minimum cover for the witness terminal set in
    *all* of them.  (Terminal vertices are never eliminated, so their
    positions in the full ordering are irrelevant.)
    """
    witness = set(case.witness)
    hubs = set(case.hubs)
    if case.pivot not in hubs:
        raise ValidationError("the pivot must be one of the hub vertices")
    if not hubs <= graph.vertices() or not witness <= graph.vertices():
        raise ValidationError("hub and witness vertices must belong to the graph")
    if hubs & witness:
        raise ValidationError("hub vertices must not be terminals of the witness set")
    optimum = minimum_cover_size(graph, witness)
    movable = sorted(graph.vertices() - witness, key=repr)
    others = hubs - {case.pivot}
    for order in permutations(movable):
        pivot_position = order.index(case.pivot)
        if any(order.index(h) < pivot_position for h in others):
            continue
        cover = fast_greedy_cover(graph, witness, order)
        if len(cover) <= optimum:
            return False
    return True


def verify_no_good_ordering(graph: Graph, cases: Sequence[OrderingCase]) -> bool:
    """Verify Theorem 6 for ``graph`` through a complete case decomposition.

    The cases must share the same hub set and provide one case per hub
    (every ordering of the vertices puts *some* hub first, so the cases are
    exhaustive); each case is then verified exhaustively.  Returns ``True``
    when the decomposition proves that no ordering of the graph is good.
    """
    if not cases:
        return False
    hub_sets = {case.hubs for case in cases}
    if len(hub_sets) != 1:
        raise ValidationError("all cases must share the same hub set")
    hubs = set(next(iter(hub_sets)))
    pivots = {case.pivot for case in cases}
    if pivots != hubs:
        raise ValidationError("there must be exactly one case per hub vertex")
    return all(verify_case_exhaustively(graph, case) for case in cases)


def sample_orderings_not_good(
    graph: Graph,
    cases: Sequence[OrderingCase],
    samples: int = 200,
    rng: RandomLike = None,
) -> bool:
    """Randomised spot-check of Theorem 6 (used by the fast unit tests).

    ``samples`` random orderings are drawn; for each, the case whose pivot
    comes first among the hubs supplies the witness terminal set, and the
    ordering must fail on it.  Returns ``True`` when every sampled ordering
    fails (as Theorem 6 predicts).
    """
    generator = ensure_rng(rng)
    by_pivot = {case.pivot: case for case in cases}
    hubs = set(next(iter(cases)).hubs)
    vertices = graph.sorted_vertices()
    minimum_cache: Dict[FrozenSet[Vertex], int] = {}
    for _ in range(samples):
        order = list(vertices)
        generator.shuffle(order)
        first_hub = next(v for v in order if v in hubs)
        case = by_pivot[first_hub]
        witness = frozenset(case.witness)
        if witness not in minimum_cache:
            minimum_cache[witness] = minimum_cover_size(graph, witness)
        cover = fast_greedy_cover(graph, witness, order)
        if len(cover) <= minimum_cache[witness]:
            return False
    return True


def every_ordering_good_sampled(
    graph: Graph,
    orderings: int = 20,
    terminal_sets: Optional[Iterable[Iterable[Vertex]]] = None,
    max_terminal_size: int = 4,
    rng: RandomLike = None,
) -> bool:
    """Randomised check of Corollary 5 on one graph.

    ``orderings`` random orderings are each tested against the provided (or
    enumerated, size-capped) terminal sets; returns ``True`` when every
    sampled ordering is good.
    """
    generator = ensure_rng(rng)
    if terminal_sets is None:
        terminal_sets = candidate_terminal_sets(graph, max_size=max_terminal_size)
    terminal_sets = [frozenset(t) for t in terminal_sets]
    vertices = graph.sorted_vertices()
    for _ in range(orderings):
        order = list(vertices)
        generator.shuffle(order)
        if not is_good_ordering(graph, order, terminal_sets=terminal_sets):
            return False
    return True
