"""Top-level minimal-connection API.

The paper's motivating scenario (Section 1): a user states a query as a set
of object names over a conceptual schema; the system must propose the
connection among those objects that requires the fewest auxiliary concepts,
and possibly enumerate further connections in order of increasing size for
interactive disambiguation.

:class:`MinimalConnectionFinder` packages that scenario over a bipartite
schema graph.  It classifies the graph once (using
:mod:`repro.core.classification`) and then dispatches every request to the
strongest applicable algorithm:

* (6,2)-chordal graphs -> Algorithm 2 (exact, polynomial);
* ``V_i``-chordal + conformal graphs -> Algorithm 1 for pseudo-Steiner
  requests w.r.t. ``V_i``;
* small instances -> exact solvers (Dreyfus-Wagner / brute force);
* everything else -> the KMB heuristic, with the result flagged as not
  guaranteed optimal.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, List, Optional

from repro.core.classification import ChordalityReport, classify_bipartite_graph
from repro.exceptions import NotApplicableError, ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph, Vertex
from repro.graphs.spanning import spanning_tree
from repro.graphs.traversal import component_containing, vertices_in_same_component
from repro.steiner.algorithm1 import pseudo_steiner_algorithm1
from repro.steiner.algorithm2 import steiner_algorithm2
from repro.steiner.exact import steiner_tree_bruteforce, steiner_tree_dreyfus_wagner
from repro.steiner.heuristics import kou_markowsky_berman
from repro.steiner.problem import (
    SteinerInstance,
    SteinerSolution,
    prune_non_terminal_leaves,
)
from repro.steiner.pseudo import pseudo_steiner_bruteforce


class MinimalConnectionFinder:
    """Find minimal conceptual connections over a bipartite schema graph.

    Parameters
    ----------
    graph:
        The schema graph (a :class:`BipartiteGraph`).
    exact_terminal_limit:
        Terminal-set sizes up to this limit fall back to the Dreyfus-Wagner
        exact solver when no polynomial class applies (default 8).
    exact_vertex_limit:
        Graphs with at most this many optional vertices may use the
        brute-force solver as a last exact resort (default 18).

    Examples
    --------
    >>> from repro.graphs import BipartiteGraph
    >>> g = BipartiteGraph(left=["A", "B"], right=[1], edges=[("A", 1), ("B", 1)])
    >>> finder = MinimalConnectionFinder(g)
    >>> finder.minimal_connection(["A", "B"]).vertex_count()
    3
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        exact_terminal_limit: int = 8,
        exact_vertex_limit: int = 18,
    ) -> None:
        if not isinstance(graph, BipartiteGraph):
            raise ValidationError("MinimalConnectionFinder requires a BipartiteGraph")
        self._graph = graph
        self._exact_terminal_limit = exact_terminal_limit
        self._exact_vertex_limit = exact_vertex_limit
        self._report: Optional[ChordalityReport] = None
        self._engine = None  # lazily built by batch(), then reused

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def graph(self) -> BipartiteGraph:
        """The schema graph this finder operates on."""
        return self._graph

    @property
    def report(self) -> ChordalityReport:
        """The (lazily computed, cached) chordality classification."""
        if self._report is None:
            self._report = classify_bipartite_graph(self._graph)
        return self._report

    # ------------------------------------------------------------------
    # Steiner (minimise total number of objects)
    # ------------------------------------------------------------------
    def minimal_connection(self, terminals: Iterable[Vertex]) -> SteinerSolution:
        """Return a connection (tree) over ``terminals`` minimising total objects.

        The solver is chosen from the graph's chordality class; the returned
        solution's ``optimal`` flag tells the caller whether the answer is
        guaranteed minimal.
        """
        terminal_list = sorted(set(terminals), key=repr)
        if self.report.steiner_tractable():
            # the cached report already answers Algorithm 2's precondition
            # (this branch is gated on it), so skip the per-query
            # (6,2)-chordality re-classification
            return steiner_algorithm2(
                self._graph, terminal_list, check=False, applicable=True
            )
        if len(terminal_list) <= self._exact_terminal_limit:
            return steiner_tree_dreyfus_wagner(self._graph, terminal_list)
        optional = self._graph.number_of_vertices() - len(terminal_list)
        if optional <= self._exact_vertex_limit:
            return steiner_tree_bruteforce(self._graph, terminal_list)
        return kou_markowsky_berman(self._graph, terminal_list)

    # ------------------------------------------------------------------
    # pseudo-Steiner (minimise objects of one side, e.g. relations)
    # ------------------------------------------------------------------
    def minimal_side_connection(
        self, terminals: Iterable[Vertex], side: int = 2
    ) -> SteinerSolution:
        """Return a connection minimising the number of ``V_side`` objects.

        In the database reading with relations on ``V_2``, this is "answer
        the query with as few relations as possible", which Algorithm 1
        solves in polynomial time on alpha-acyclic schemas.
        """
        terminal_list = sorted(set(terminals), key=repr)
        if self.report.pseudo_steiner_tractable(side):
            try:
                return pseudo_steiner_algorithm1(
                    self._graph,
                    terminal_list,
                    side=side,
                    check=True,
                    applicable=True if getattr(self.report, f"v{side}_alpha") else None,
                )
            except NotApplicableError:
                # the global class test passed but the terminals' component is
                # degenerate; fall through to the exact solver below.
                pass
        optional_side = len(self._graph.side(side) - set(terminal_list))
        if optional_side <= self._exact_vertex_limit:
            return pseudo_steiner_bruteforce(self._graph, terminal_list, side)
        solution = kou_markowsky_berman(self._graph, terminal_list)
        solution.side = side
        return solution

    # ------------------------------------------------------------------
    # batched interpretation (delegates to repro.engine)
    # ------------------------------------------------------------------
    def batch(
        self,
        queries: Iterable[Iterable[Vertex]],
        objective: str = "steiner",
        side: int = 2,
    ) -> List[SteinerSolution]:
        """Answer many queries at once through the batched engine.

        The engine reuses this finder's cached classification and builds
        the schema-level precomputations (indexed backend, BFS rows,
        elimination orderings) once, so the per-query cost collapses to the
        elimination inner loop.  Results carry the same objective values as
        the corresponding per-query calls (:meth:`minimal_connection` /
        :meth:`minimal_side_connection`).
        """
        from repro.engine.batch import InterpretationEngine

        if self._engine is None:
            self._engine = InterpretationEngine(
                exact_terminal_limit=self._exact_terminal_limit,
                exact_vertex_limit=self._exact_vertex_limit,
            )
            self._engine.seed_report(self._graph, self.report)
        return self._engine.batch_interpret(
            self._graph, queries, objective=objective, side=side
        )

    # ------------------------------------------------------------------
    # ranked enumeration (interactive disambiguation)
    # ------------------------------------------------------------------
    def ranked_connections(
        self, terminals: Iterable[Vertex], limit: int = 5, max_extra: Optional[int] = None
    ) -> List[SteinerSolution]:
        """Enumerate distinct connections in order of increasing total size.

        This is the "progressively disclose as few concepts as possible"
        interaction of the introduction: the first entry is a minimal
        connection, later entries are alternative interpretations using
        more auxiliary objects.  Enumeration is exhaustive over auxiliary
        subsets and therefore meant for schema-sized graphs (tens of
        vertices), not arbitrary inputs.
        """
        terminal_set = frozenset(terminals)
        instance = SteinerInstance(self._graph, terminal_set)
        instance.require_feasible()
        optional = sorted(self._graph.vertices() - terminal_set, key=repr)
        bound = len(optional) if max_extra is None else min(max_extra, len(optional))
        found: List[SteinerSolution] = []
        seen_vertex_sets = set()
        for extra in range(bound + 1):
            for subset in combinations(optional, extra):
                kept = terminal_set | set(subset)
                induced = self._graph.subgraph(kept)
                if not vertices_in_same_component(induced, terminal_set):
                    continue
                component = component_containing(induced, next(iter(terminal_set)))
                # only report connections that use exactly the chosen objects
                # (otherwise the same connection reappears for every superset
                # of its auxiliary vertices)
                if frozenset(component) != frozenset(kept):
                    continue
                tree = spanning_tree(induced.subgraph(component))
                key = frozenset(tree.vertices())
                if key in seen_vertex_sets:
                    continue
                seen_vertex_sets.add(key)
                found.append(
                    SteinerSolution(
                        tree=tree,
                        instance=instance,
                        method="ranked-enumeration",
                        optimal=not found,
                    )
                )
                if len(found) >= limit:
                    return found
        return found
