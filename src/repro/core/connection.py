"""Legacy per-query minimal-connection API (thin wrapper over ``repro.api``).

The paper's motivating scenario (Section 1): a user states a query as a set
of object names over a conceptual schema; the system must propose the
connection among those objects that requires the fewest auxiliary concepts,
and possibly enumerate further connections in order of increasing size for
interactive disambiguation.

.. deprecated:: 1.2.0
    :class:`MinimalConnectionFinder` is kept for backwards compatibility
    only.  It no longer contains any solver dispatch of its own: every call
    delegates to a :class:`~repro.api.service.ConnectionService`, whose
    planner/registry/cache (:mod:`repro.engine`) is the library's single
    dispatch path.  New code should use :class:`~repro.api.service.ConnectionService`
    directly -- it returns :class:`~repro.api.result.ConnectionResult`
    objects with optimality guarantees and provenance instead of bare
    :class:`~repro.steiner.problem.SteinerSolution` objects.  See the README
    migration guide.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.core.classification import ChordalityReport
from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Vertex
from repro.steiner.problem import SteinerSolution

if TYPE_CHECKING:  # imported lazily at runtime (repro.api depends on repro.core)
    from repro.api.service import ConnectionService


class MinimalConnectionFinder:
    """Find minimal conceptual connections over a bipartite schema graph.

    .. deprecated:: 1.2.0
        Thin back-compat wrapper; use
        :class:`~repro.api.service.ConnectionService` for new code.

    Parameters
    ----------
    graph:
        The schema graph (a :class:`BipartiteGraph`).
    exact_terminal_limit:
        Terminal-set sizes up to this limit fall back to the Dreyfus-Wagner
        exact solver when no polynomial class applies (default 8).
    exact_vertex_limit:
        Graphs with at most this many optional vertices may use the
        brute-force solver as a last exact resort (default 18).
    service:
        Advanced: an existing :class:`~repro.api.service.ConnectionService`
        to delegate to (shares its engine/cache); the limit arguments are
        ignored when given.

    Examples
    --------
    >>> from repro.graphs import BipartiteGraph
    >>> g = BipartiteGraph(left=["A", "B"], right=[1], edges=[("A", 1), ("B", 1)])
    >>> finder = MinimalConnectionFinder(g)
    >>> finder.minimal_connection(["A", "B"]).vertex_count()
    3
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        exact_terminal_limit: int = 8,
        exact_vertex_limit: int = 18,
        service: Optional["ConnectionService"] = None,
    ) -> None:
        from repro.api.config import ServiceConfig
        from repro.api.service import ConnectionService

        if not isinstance(graph, BipartiteGraph):
            raise ValidationError("MinimalConnectionFinder requires a BipartiteGraph")
        warnings.warn(
            "MinimalConnectionFinder is deprecated since 1.2.0; use "
            "repro.api.ConnectionService (typed results with guarantees and "
            "provenance) -- see docs/migration.md for the call-site table",
            DeprecationWarning,
            stacklevel=2,
        )
        self._graph = graph
        if service is None:
            service = ConnectionService(
                schema=graph,
                config=ServiceConfig(
                    exact_terminal_limit=exact_terminal_limit,
                    exact_vertex_limit=exact_vertex_limit,
                ),
            )
        self._service = service

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def graph(self) -> BipartiteGraph:
        """The schema graph this finder operates on."""
        return self._graph

    @property
    def service(self) -> "ConnectionService":
        """The :class:`~repro.api.service.ConnectionService` doing the work."""
        return self._service

    @property
    def report(self) -> ChordalityReport:
        """The (lazily computed, engine-cached) chordality classification."""
        return self._service.classification(self._graph)

    # ------------------------------------------------------------------
    # Steiner (minimise total number of objects)
    # ------------------------------------------------------------------
    def minimal_connection(self, terminals: Iterable[Vertex]) -> SteinerSolution:
        """Return a connection (tree) over ``terminals`` minimising total objects.

        Delegates to :meth:`ConnectionService.connect`; the returned
        solution's ``optimal`` flag tells the caller whether the answer is
        guaranteed minimal (the service's richer
        :class:`~repro.api.result.ConnectionResult` carries the same fact
        as a typed guarantee plus provenance).
        """
        return self._service.connect(terminals, schema=self._graph).solution

    # ------------------------------------------------------------------
    # pseudo-Steiner (minimise objects of one side, e.g. relations)
    # ------------------------------------------------------------------
    def minimal_side_connection(
        self, terminals: Iterable[Vertex], side: int = 2
    ) -> SteinerSolution:
        """Return a connection minimising the number of ``V_side`` objects.

        In the database reading with relations on ``V_2``, this is "answer
        the query with as few relations as possible", which Algorithm 1
        solves in polynomial time on alpha-acyclic schemas.
        """
        return self._service.connect(
            terminals, objective="side", side=side, schema=self._graph
        ).solution

    # ------------------------------------------------------------------
    # batched interpretation
    # ------------------------------------------------------------------
    def batch(
        self,
        queries: Iterable[Iterable[Vertex]],
        objective: str = "steiner",
        side: int = 2,
    ) -> List[SteinerSolution]:
        """Answer many queries at once through the service's batched path.

        The engine reuses the cached schema context (classification,
        indexed backend, BFS rows, elimination orderings), so the per-query
        cost collapses to the elimination inner loop.  Results carry the
        same objective values as the corresponding per-query calls.
        """
        return [
            result.solution
            for result in self._service.batch(
                queries, schema=self._graph, objective=objective, side=side
            )
        ]

    # ------------------------------------------------------------------
    # ranked enumeration (interactive disambiguation)
    # ------------------------------------------------------------------
    def ranked_connections(
        self, terminals: Iterable[Vertex], limit: int = 5, max_extra: Optional[int] = None
    ) -> List[SteinerSolution]:
        """Enumerate distinct connections in order of increasing total size.

        This is the "progressively disclose as few concepts as possible"
        interaction of the introduction, now served by the resumable
        :class:`~repro.api.stream.EnumerationStream`; use
        :meth:`ConnectionService.enumerate` directly to page through
        results interactively instead of materialising a list.
        """
        stream = self._service.enumerate(
            terminals, schema=self._graph, budget=limit, max_extra=max_extra
        )
        return [result.solution for result in stream]
