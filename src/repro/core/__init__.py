"""Core layer: covers, good orderings, classification, connection finding."""

from repro.core.classification import (
    ChordalityReport,
    chordality_class,
    classify_bipartite_graph,
    schema_acyclicity_degree,
)
from repro.core.connection import MinimalConnectionFinder
from repro.core.covers import (
    greedy_elimination_cover,
    is_cover,
    is_minimum_cover,
    is_nonredundant_cover,
    is_side_minimum_cover,
    minimum_cover_size,
    minimum_side_cover_size,
    nonredundant_covers,
)
from repro.core.good_ordering import (
    OrderingCase,
    candidate_terminal_sets,
    every_ordering_good_sampled,
    fast_greedy_cover,
    find_bad_terminal_set,
    is_good_ordering,
    sample_orderings_not_good,
    verify_case_exhaustively,
    verify_no_good_ordering,
)

__all__ = [
    "ChordalityReport",
    "MinimalConnectionFinder",
    "OrderingCase",
    "candidate_terminal_sets",
    "chordality_class",
    "classify_bipartite_graph",
    "every_ordering_good_sampled",
    "fast_greedy_cover",
    "find_bad_terminal_set",
    "greedy_elimination_cover",
    "is_cover",
    "is_good_ordering",
    "is_minimum_cover",
    "is_nonredundant_cover",
    "is_side_minimum_cover",
    "minimum_cover_size",
    "minimum_side_cover_size",
    "nonredundant_covers",
    "sample_orderings_not_good",
    "schema_acyclicity_degree",
    "verify_case_exhaustively",
    "verify_no_good_ordering",
]
