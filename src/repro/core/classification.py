"""Classification of bipartite graphs by chordality / acyclicity class.

The paper's results attach a different algorithmic status to each class:

========================  =======================================  =========================
bipartite graph class     associated schema class (Theorem 1)      minimal-connection status
========================  =======================================  =========================
(4,1)-chordal (forest)    Berge-acyclic                            trivial (unique paths)
(6,2)-chordal             gamma-acyclic                            Steiner in P (Algorithm 2)
(6,1)-chordal             beta-acyclic                             pseudo-Steiner in P (both
                                                                   sides); Steiner open
``V_i``-chordal+conformal alpha-acyclic (w.r.t. that side)         pseudo-Steiner w.r.t.
                                                                   ``V_i`` in P (Algorithm 1);
                                                                   Steiner NP-complete
general bipartite         cyclic                                   Steiner NP-complete
========================  =======================================  =========================

:func:`classify_bipartite_graph` evaluates every membership; the resulting
:class:`ChordalityReport` is what :class:`repro.core.connection.MinimalConnectionFinder`
uses to pick an algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chordality.mn_chordal import (
    is_41_chordal_bipartite,
    is_61_chordal_bipartite,
    is_62_chordal_bipartite,
)
from repro.chordality.side_chordal import (
    is_side_chordal,
    is_side_conformal,
)
from repro.exceptions import BipartitenessError
from repro.graphs.bipartite import BipartiteGraph, is_bipartite
from repro.graphs.graph import Graph
from repro.hypergraphs.acyclicity import acyclicity_degree
from repro.hypergraphs.conversions import hypergraph_of_side


@dataclass(frozen=True)
class ChordalityReport:
    """Membership of one bipartite graph in every class used by the paper."""

    chordal_41: bool
    chordal_61: bool
    chordal_62: bool
    v1_chordal: bool
    v1_conformal: bool
    v2_chordal: bool
    v2_conformal: bool

    @property
    def v1_alpha(self) -> bool:
        """``V_1``-chordal and ``V_1``-conformal (``H_1`` alpha-acyclic)."""
        return self.v1_chordal and self.v1_conformal

    @property
    def v2_alpha(self) -> bool:
        """``V_2``-chordal and ``V_2``-conformal (``H_2`` alpha-acyclic)."""
        return self.v2_chordal and self.v2_conformal

    @property
    def strongest_class(self) -> str:
        """Name of the strongest symmetric class the graph belongs to."""
        if self.chordal_41:
            return "(4,1)-chordal"
        if self.chordal_62:
            return "(6,2)-chordal"
        if self.chordal_61:
            return "(6,1)-chordal"
        if self.v1_alpha and self.v2_alpha:
            return "V1- and V2-alpha"
        if self.v1_alpha:
            return "V1-alpha"
        if self.v2_alpha:
            return "V2-alpha"
        return "general"

    def steiner_tractable(self) -> bool:
        """Is the full Steiner problem known to be polynomial on this graph?"""
        return self.chordal_62 or self.chordal_41

    def pseudo_steiner_tractable(self, side: int) -> bool:
        """Is the pseudo-Steiner problem w.r.t. ``V_side`` known polynomial?"""
        if side == 1:
            return self.v1_alpha or self.chordal_61 or self.chordal_62 or self.chordal_41
        if side == 2:
            return self.v2_alpha or self.chordal_61 or self.chordal_62 or self.chordal_41
        raise ValueError(f"side must be 1 or 2, got {side!r}")


def classify_bipartite_graph(graph: Graph) -> ChordalityReport:
    """Return the :class:`ChordalityReport` of a bipartite graph.

    A plain :class:`Graph` is accepted as long as it is bipartite (a
    2-colouring is computed); otherwise :class:`BipartitenessError` is
    raised.
    """
    if isinstance(graph, BipartiteGraph):
        bipartite = graph
    else:
        if not is_bipartite(graph):
            raise BipartitenessError("classification requires a bipartite graph")
        bipartite = BipartiteGraph.from_graph(graph)
    return ChordalityReport(
        chordal_41=is_41_chordal_bipartite(bipartite),
        chordal_61=is_61_chordal_bipartite(bipartite),
        chordal_62=is_62_chordal_bipartite(bipartite),
        v1_chordal=is_side_chordal(bipartite, 1),
        v1_conformal=is_side_conformal(bipartite, 1),
        v2_chordal=is_side_chordal(bipartite, 2),
        v2_conformal=is_side_conformal(bipartite, 2),
    )


def chordality_class(graph: Graph) -> str:
    """Return the name of the strongest class (see :class:`ChordalityReport`)."""
    return classify_bipartite_graph(graph).strongest_class


def schema_acyclicity_degree(graph: BipartiteGraph, side: int = 2) -> str:
    """Return the acyclicity degree of the schema hypergraph ``H_side(G)``.

    Convenience bridge between the graph view and the database view: the
    answer is one of ``"berge"``, ``"gamma"``, ``"beta"``, ``"alpha"`` or
    ``"cyclic"``.
    """
    hypergraph = hypergraph_of_side(graph, side=side)
    if hypergraph.number_of_edges() == 0:
        return "berge"
    return acyclicity_degree(hypergraph)
