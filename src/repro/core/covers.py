"""Covers of a terminal set (Definition 10) and greedy elimination.

For a bipartite graph ``G = (V1, V2, A)``, an induced subgraph ``G'`` is a
*cover* of a terminal set ``P`` when it is connected and contains ``P``;
it is *nonredundant* when no single vertex can be dropped while remaining a
cover, *minimum* when no cover uses fewer vertices, and the ``V_i``
variants count only the vertices of one side.

The *greedy elimination* procedure -- scan the vertices in a given order
and drop each one whose removal leaves a cover -- always produces a
nonredundant cover; Definition 11 calls an ordering *good* when greedy
elimination along it produces a **minimum** cover for *every* terminal set.
Lemma 5 shows that on (6,2)-chordal graphs every nonredundant cover is
minimum (hence every ordering is good, Corollary 5), while Theorem 6
exhibits a (6,1)-chordal graph where no ordering is good.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Set

from repro.exceptions import DisconnectedTerminalsError, ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.backend import is_indexed
from repro.graphs.graph import Graph, Vertex
from repro.graphs.indexed import indexed_elimination_cover
from repro.graphs.traversal import (
    component_containing,
    is_connected,
    vertices_in_same_component,
)


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------
def is_cover(graph: Graph, vertices: Iterable[Vertex], terminals: Iterable[Vertex]) -> bool:
    """Return ``True`` when the subgraph induced by ``vertices`` covers ``terminals``.

    (Definition 10: connected and containing every terminal.)
    """
    kept = {v for v in vertices if v in graph}
    terminal_list = list(terminals)
    if any(t not in kept for t in terminal_list):
        return False
    induced = graph.subgraph(kept)
    return is_connected(induced)


def connects_terminals(
    graph: Graph, vertices: Iterable[Vertex], terminals: Iterable[Vertex]
) -> bool:
    """Return ``True`` when ``terminals`` lie in one component of the induced subgraph.

    This is the notion of "``v`` is redundant with respect to the
    connection of ``P``" used by the elimination procedures (Definition 11,
    Step 1 of Algorithm 2, Step 2 of Algorithm 1): a vertex may be dropped
    when the *terminals* remain connected, even if some other vertex --
    typically a pendant that will itself be dropped later -- becomes
    temporarily isolated.  The final cover reported by those procedures is
    the terminals' component, which is connected and therefore a cover in
    the sense of :func:`is_cover`.
    """
    kept = {v for v in vertices if v in graph}
    terminal_list = list(terminals)
    if any(t not in kept for t in terminal_list):
        return False
    induced = graph.subgraph(kept)
    return vertices_in_same_component(induced, terminal_list)


def terminal_component(
    graph: Graph, vertices: Iterable[Vertex], terminals: Iterable[Vertex]
) -> Set[Vertex]:
    """Return the vertex set of the terminals' component inside the induced subgraph."""
    kept = {v for v in vertices if v in graph}
    induced = graph.subgraph(kept)
    return component_containing(induced, next(iter(set(terminals))))


def is_nonredundant_cover(
    graph: Graph, vertices: Iterable[Vertex], terminals: Iterable[Vertex]
) -> bool:
    """Return ``True`` when the vertex set is a cover and no vertex can be dropped."""
    kept = set(vertices)
    terminal_set = set(terminals)
    if not is_cover(graph, kept, terminal_set):
        return False
    for vertex in kept:
        if vertex in terminal_set:
            continue
        if is_cover(graph, kept - {vertex}, terminal_set):
            return False
    return True


def minimum_cover_size(graph: Graph, terminals: Iterable[Vertex]) -> int:
    """Return the size of a minimum cover of ``terminals`` (exhaustive search).

    Exponential in the number of non-terminal vertices; intended for ground
    truth on small instances (every vertex count claimed by the fast
    algorithms is validated against this in the tests).
    """
    terminal_set = set(terminals)
    if not vertices_in_same_component(graph, terminal_set):
        raise DisconnectedTerminalsError("the terminals cannot be covered")
    optional = sorted(graph.vertices() - terminal_set, key=repr)
    for extra in range(len(optional) + 1):
        for subset in combinations(optional, extra):
            if is_cover(graph, terminal_set | set(subset), terminal_set):
                return len(terminal_set) + extra
    raise DisconnectedTerminalsError("the terminals cannot be covered")


def is_minimum_cover(
    graph: Graph, vertices: Iterable[Vertex], terminals: Iterable[Vertex]
) -> bool:
    """Return ``True`` when the vertex set is a cover of minimum cardinality."""
    kept = set(vertices)
    terminal_set = set(terminals)
    if not is_cover(graph, kept, terminal_set):
        return False
    return len(kept) == minimum_cover_size(graph, terminal_set)


def minimum_side_cover_size(
    graph: BipartiteGraph, terminals: Iterable[Vertex], side: int
) -> int:
    """Return the minimum number of ``V_side`` vertices over all covers.

    This is the ``V_i``-minimum cover objective of Definition 10 and the
    pseudo-Steiner optimum of Definition 9 (exhaustive; small instances).
    """
    if side not in (1, 2):
        raise ValueError(f"side must be 1 or 2, got {side!r}")
    terminal_set = set(terminals)
    if not vertices_in_same_component(graph, terminal_set):
        raise DisconnectedTerminalsError("the terminals cannot be covered")
    side_vertices = graph.side(side)
    other_vertices = graph.side(3 - side)
    mandatory = terminal_set & side_vertices
    optional = sorted(side_vertices - terminal_set, key=repr)
    for extra in range(len(optional) + 1):
        for subset in combinations(optional, extra):
            kept = set(subset) | mandatory | other_vertices | terminal_set
            induced = graph.subgraph(kept)
            if vertices_in_same_component(induced, terminal_set):
                return len(mandatory) + extra
    raise DisconnectedTerminalsError("the terminals cannot be covered")


def is_side_minimum_cover(
    graph: BipartiteGraph,
    vertices: Iterable[Vertex],
    terminals: Iterable[Vertex],
    side: int,
) -> bool:
    """Return ``True`` when the cover minimises the number of ``V_side`` vertices."""
    kept = set(vertices)
    terminal_set = set(terminals)
    if not is_cover(graph, kept, terminal_set):
        return False
    used = sum(1 for v in kept if graph.side_of(v) == side)
    return used == minimum_side_cover_size(graph, terminal_set, side)


# ----------------------------------------------------------------------
# greedy elimination
# ----------------------------------------------------------------------
def greedy_elimination_cover(
    graph: Graph,
    terminals: Iterable[Vertex],
    ordering: Optional[Sequence[Vertex]] = None,
    removal_batches: bool = False,
) -> Set[Vertex]:
    """Greedily eliminate redundant vertices along ``ordering``.

    Starting from the connected component containing the terminals, each
    vertex of the ordering is removed when the remainder is still a cover
    of the terminals.  The result is always a nonredundant cover.

    Parameters
    ----------
    ordering:
        The elimination order (vertices missing from it are never removed);
        defaults to the deterministic sorted order.
    removal_batches:
        When ``True``, a removed vertex drags along its private neighbours
        ``Adj*(v)`` as in Step 2 of Algorithm 1; when ``False`` (default)
        vertices are removed one at a time as in Algorithm 2 / Definition 11.

    Notes
    -----
    A vertex is considered redundant when the *terminals* remain connected
    without it (see :func:`connects_terminals`); the returned vertex set is
    the terminals' component of the final graph, which is always a
    nonredundant cover in the sense of Definition 10.

    An :class:`~repro.graphs.indexed.IndexedGraph` input (vertices are
    integer ids) is routed to the array-based fast lane, which avoids the
    per-step subgraph objects.  Its default elimination order is ascending
    ids; for graphs converted through :func:`~repro.graphs.indexed.to_indexed`
    (ids assigned in repr-sorted label order) that coincides with this
    function's repr-sorted default, so the two backends return the
    identical cover.  For hand-built id assignments the default orders may
    differ and the lanes can return different -- equally nonredundant --
    covers; pass ``ordering`` explicitly to pin one.
    """
    if is_indexed(graph):
        return indexed_elimination_cover(
            graph, terminals, ordering=ordering, removal_batches=removal_batches
        )
    terminal_set = set(terminals)
    if not terminal_set:
        raise ValidationError("the terminal set must be non-empty")
    if not vertices_in_same_component(graph, terminal_set):
        raise DisconnectedTerminalsError("the terminals cannot be covered")
    component = component_containing(graph, next(iter(terminal_set)))
    current = graph.subgraph(component)
    if ordering is None:
        ordering = current.sorted_vertices()
    for vertex in ordering:
        if vertex not in current or vertex in terminal_set:
            continue
        removal = {vertex}
        if removal_batches:
            removal |= current.private_neighbors(vertex)
            if removal & terminal_set:
                continue
        candidate_vertices = current.vertices() - removal
        if connects_terminals(graph, candidate_vertices, terminal_set):
            current = current.subgraph(candidate_vertices)
    return terminal_component(graph, current.vertices(), terminal_set)


def nonredundant_covers(
    graph: Graph, terminals: Iterable[Vertex], limit: Optional[int] = None
) -> List[Set[Vertex]]:
    """Enumerate the nonredundant covers of ``terminals`` (small instances only).

    Every subset of vertices containing the terminals is tested; the result
    is a list of vertex sets.  Used by the Lemma 5 experiments, which need
    "every nonredundant cover is minimum" checked literally.
    """
    terminal_set = set(terminals)
    optional = sorted(graph.vertices() - terminal_set, key=repr)
    found: List[Set[Vertex]] = []
    for size in range(len(optional) + 1):
        for subset in combinations(optional, size):
            candidate = terminal_set | set(subset)
            if is_nonredundant_cover(graph, candidate, terminal_set):
                found.append(candidate)
                if limit is not None and len(found) >= limit:
                    return found
    return found
