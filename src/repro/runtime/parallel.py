"""Sharded parallel execution of connection batches over a process pool.

The engine (PR 1) amortises schema-level precomputation and the facade
(PR 2) types the traffic, but every query still runs on one core.
:class:`ParallelExecutor` removes that ceiling for batch traffic: it
splits a batch into shards, ships each shard to a
:class:`concurrent.futures.ProcessPoolExecutor` worker, and merges the
answers back **in request order** with provenance identical to a serial
:meth:`~repro.api.service.ConnectionService.batch` call (the differential
suite pins byte-identity).

How a shard travels
-------------------
* The parent resolves the schema once and transports the context's
  *shard state* -- the :class:`~repro.graphs.indexed.IndexedGraph` CSR
  backend, the label index and the classification report
  (:meth:`~repro.engine.cache.SchemaContext.shard_state`).  Workers
  rebuild an equivalent context in milliseconds instead of re-running
  the Theorem 1 recognition (tens of seconds on large schemas).
* On POSIX the default transport is **zero-copy shared memory**
  (:mod:`repro.kernels.shm`): the CSR arrays live in one named segment
  per schema version, workers attach ``memoryview`` casts over the
  segment buffer, and each shard submission carries only the segment
  name -- constant-size dispatch no matter how large the schema or how
  many shards a batch produces.  ``transport="pickle"`` forces the
  legacy per-submission pickled blob (the benchmark baseline);
  ``transport="auto"`` (default) picks shared memory when available.
* Transport is memoised per schema and keyed on
  :attr:`~repro.graphs.graph.Graph.mutation_version`: mutating the
  schema between batches re-keys the transport (unlinking the stale
  segment) automatically, so a worker can never answer from a stale
  structure.
* The parent owns every segment it created:
  :meth:`ParallelExecutor.close` unlinks them all after the pool has
  drained, so neither worker errors nor crashes can leak shared memory.
* Workers keep a tiny LRU of rebuilt services keyed by ``(schema digest,
  config)``, so a long-lived pool answers alternating schemas without
  rebuilding -- and with shared memory, a warm worker never even reads
  the transport payload again.
* Results come back as schema-free payloads
  (:func:`~repro.runtime.codec.encode_result`) and are re-materialised
  against the parent's graph -- the schema is never pickled per answer.

Error semantics match the serial batch: all-or-nothing, and the raised
error is the one the *earliest* failing request produces (shards are
joined in order, and within a shard the worker fails at its first
failing request).

Vertex labels must be picklable (true for every type the library's
generators produce).  Use the executor as a context manager, or call
:meth:`ParallelExecutor.close` to release the pool.

Examples
--------
>>> from repro.datasets.generators import random_62_chordal_graph, random_terminals
>>> graph = random_62_chordal_graph(6, rng=7)
>>> queries = [random_terminals(graph, 3, rng=i) for i in range(8)]
>>> with ParallelExecutor(workers=2) as executor:
...     results = executor.batch(queries, schema=graph)
>>> len(results)
8
"""

from __future__ import annotations

import os
import pickle
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from math import ceil
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.api.config import ServiceConfig
from repro.api.request import ConnectionRequest
from repro.api.result import ConnectionResult
from repro.api.service import ConnectionService
from repro.engine.cache import SchemaContext, schema_digest
from repro.exceptions import ValidationError
from repro.faults.plan import ACTIVE as _FAULTS
from repro.kernels.shm import (
    attach_segment,
    create_segment,
    shared_memory_available,
    sweep_orphans,
)
from repro.runtime.codec import decode_result, encode_result
from repro.steiner.problem import SteinerSolution

#: Transport payload: ``("shm", segment name)`` or ``("pickle", blob)``.
TransportPayload = Tuple[str, Any]


def _release_segments(segments: Dict[str, Any]) -> None:
    """Unlink and close every parent-owned segment (idempotent, best-effort).

    Module-level so a :func:`weakref.finalize` on the executor can call
    it without keeping the executor alive; failures are swallowed because
    double-unlinks (close + finalizer, or two close calls) are expected.
    """
    while segments:
        _, segment = segments.popitem()
        for release in (segment.unlink, segment.close):
            try:
                release()
            except Exception:
                pass


class ParallelExecutor:
    """Shard :meth:`ConnectionService.batch` traffic across a process pool.

    Parameters
    ----------
    workers:
        Number of pool processes.  ``None`` uses :func:`os.cpu_count`;
        ``workers=1`` short-circuits to the serial in-process path (same
        results, no pool).
    shard_size:
        Requests per dispatched shard.  ``None`` targets two shards per
        worker, which balances straggler tolerance against dispatch
        overhead for the library's millisecond-scale queries.
    service:
        An existing :class:`~repro.api.service.ConnectionService` to
        shard for (its engine cache, config and persistent cache are
        reused).  Built from ``config``/``schema`` when omitted.
    config / schema:
        Forwarded to the internally constructed service when ``service``
        is not given.
    transport:
        ``"auto"`` (default: shared memory where available, else
        pickle), ``"shm"`` (force the zero-copy shared-memory CSR
        transport) or ``"pickle"`` (force the per-submission pickled
        blob).  Answers are byte-identical either way; only dispatch
        cost differs.

    Examples
    --------
    >>> from repro.graphs import BipartiteGraph
    >>> g = BipartiteGraph(left=["A", "B"], right=[1], edges=[("A", 1), ("B", 1)])
    >>> with ParallelExecutor(workers=2, schema=g) as executor:
    ...     [r.cost for r in executor.batch([["A", "B"], ["A"]])]
    [3, 1]
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        shard_size: Optional[int] = None,
        service: Optional[ConnectionService] = None,
        config: Optional[ServiceConfig] = None,
        schema: Any = None,
        transport: str = "auto",
    ) -> None:
        if service is not None and (config is not None or schema is not None):
            raise ValidationError(
                "pass either an existing service or config/schema to build "
                "one, not both"
            )
        if service is None:
            service = ConnectionService(schema=schema, config=config)
        self._service = service
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValidationError("workers must be >= 1")
        if shard_size is not None and shard_size < 1:
            raise ValidationError("shard_size must be >= 1 (or None)")
        if transport not in ("auto", "shm", "pickle"):
            raise ValidationError(
                f"transport must be 'auto', 'shm' or 'pickle', got {transport!r}"
            )
        if transport == "shm" and not shared_memory_available():
            raise ValidationError(
                "transport='shm' requires POSIX multiprocessing.shared_memory"
            )
        if transport == "auto":
            transport = "shm" if shared_memory_available() else "pickle"
        self._workers = workers
        self._shard_size = shard_size
        self._transport_kind = transport
        self._pool: Optional[ProcessPoolExecutor] = None
        # (schema handle, mutation_version, digest, transport payload)
        self._transport: Optional[Tuple[Any, Optional[int], str, TransportPayload]] = None
        # parent-owned shared-memory segments, by name; released on
        # close(), on transport re-key, and -- as a last resort -- by the
        # GC finalizer (so an executor dropped without close() cannot
        # leak segments for the life of the machine)
        self._segments: Dict[str, Any] = {}
        self._segment_finalizer = weakref.finalize(
            self, _release_segments, self._segments
        )
        # observability: instruments share the parent service's registry;
        # the shm inventory is exported by a snapshot collector at render
        # time, so dispatch pays only the two fan-out instruments
        self._metrics = service.metrics
        self._shards_total = self._metrics.counter(
            "repro_shards_total",
            "Shards dispatched to pool workers.",
        )
        self._shard_fanout = self._metrics.histogram(
            "repro_shard_fanout",
            "Shards per parallel batch.",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        )
        self._orphans_reaped = self._metrics.counter(
            "repro_shm_orphans_reaped_total",
            "Orphaned repro-shm segments reclaimed by the recovery sweep.",
        )
        self._serial_fallbacks = self._metrics.counter(
            "repro_shard_serial_fallbacks_total",
            "Batches recomputed serially after a pool worker died mid-shard.",
        )
        self._metrics.register_collector(self._collect_shm_metrics)
        # recover segments stranded by SIGKILLed predecessors before this
        # executor starts minting its own
        self.reap_orphans()

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """The configured pool size."""
        return self._workers

    @property
    def service(self) -> ConnectionService:
        """The parent-side service this executor shards for."""
        return self._service

    @property
    def transport(self) -> str:
        """The resolved transport kind (``"shm"`` or ``"pickle"``)."""
        return self._transport_kind

    def active_segments(self) -> Tuple[str, ...]:
        """Return the names of the shared-memory segments currently owned."""
        return tuple(self._segments)

    def reap_orphans(self) -> Tuple[str, ...]:
        """Unlink ``repro-shm`` segments whose creator process is dead.

        Runs :func:`~repro.kernels.shm.sweep_orphans` -- the recovery
        path for segments stranded by a SIGKILLed parent, which neither
        the GC finalizer nor the atexit hook could reach -- and counts
        the reclaimed segments in ``repro_shm_orphans_reaped_total``.
        Called automatically at construction and on :meth:`close`; safe
        to call any time (live processes' segments are never touched).
        """
        reaped = sweep_orphans()
        if reaped:
            self._orphans_reaped.inc(len(reaped))
        return tuple(reaped)

    def _collect_shm_metrics(self) -> None:
        """Export the shared-memory inventory as gauges (snapshot collector)."""
        self._metrics.gauge(
            "repro_shm_segments",
            "Parent-owned shared-memory transport segments.",
        ).set(len(self._segments))
        self._metrics.gauge(
            "repro_shm_bytes",
            "Total bytes of parent-owned shared-memory segments.",
        ).set(sum(segment.size for segment in self._segments.values()))

    def close(self) -> None:
        """Shut the worker pool down and release the shared-memory segments.

        Idempotent; the executor stays usable (the pool is recreated and
        the transport re-derived lazily on the next batch).  Segments are
        unlinked only *after* the pool has drained, so no in-flight shard
        can lose its mapping -- and they are unlinked unconditionally,
        including after worker errors or crashes (the parent owns them;
        workers never do).
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        _release_segments(self._segments)
        self._transport = None
        self.reap_orphans()

    def __enter__(self) -> "ParallelExecutor":
        """Return ``self`` (the pool is created lazily on first use)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Release the pool on scope exit."""
        self.close()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def batch(
        self,
        requests: Iterable,
        *,
        schema: Any = None,
        objective: str = "steiner",
        side: Optional[int] = None,
        policy: str = "auto",
    ) -> List[ConnectionResult]:
        """Answer a batch in parallel; mirror of :meth:`ConnectionService.batch`.

        Results are returned in request order and are byte-identical (tree,
        cost, guarantee, provenance minus wall time) to the serial batch.
        When the service has a persistent cache, stored answers are
        replayed in the parent and only the misses are dispatched.
        """
        materialised = self._service._materialise_batch(
            requests, objective=objective, side=side, policy=policy
        )
        batch_schema = self._service._batch_schema(materialised, schema)
        if self._workers == 1 or len(materialised) <= 1:
            return self._service.batch(materialised, schema=batch_schema)
        return self._parallel_batch(materialised, batch_schema)

    def batch_interpret(
        self,
        schema: Any,
        queries: Iterable[Iterable],
        objective: str = "steiner",
        side: int = 2,
    ) -> List[SteinerSolution]:
        """Parallel drop-in for :meth:`InterpretationEngine.batch_interpret`.

        Returns bare :class:`~repro.steiner.problem.SteinerSolution`
        objects in query order, with the same objective values as the
        serial engine.
        """
        results = self.batch(
            list(queries), schema=schema, objective=objective, side=side
        )
        return [result.solution for result in results]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _parallel_batch(
        self, materialised: List[ConnectionRequest], batch_schema: Any
    ) -> List[ConnectionResult]:
        service = self._service
        resolved = service.engine.resolve_schema(batch_schema)

        disk, digest = service._persistent_layer(batch_schema)
        replayed = (
            service._disk_replay_scan(disk, materialised, digest)
            if disk is not None
            else {}
        )

        pending = [
            (position, request)
            for position, request in enumerate(materialised)
            if position not in replayed
        ]
        payloads = {}
        context = None
        parent_hit = False
        if pending:
            # the context (and the pickled transport blob derived from it)
            # is only needed when something actually dispatches -- a fully
            # replayed batch never builds either
            context, parent_hit = service._context(batch_schema, digest)
            digest, payload = self._transport_for(
                batch_schema, resolved, context, digest
            )
            shards = self._shard(pending)
            self._shards_total.inc(len(shards))
            self._shard_fanout.observe(len(shards))
            # workers never ship the parent's disk cache or its metrics
            # registry (registries hold callables and do not pickle); the
            # kernel_backend / memory_budget_bytes fields DO ride along --
            # the lane is a plain string, so each worker re-resolves the
            # same backend after fork or spawn (numpy-lane workers adopt
            # the shm segment's bytes zero-copy via np.frombuffer)
            worker_config = service.config.with_overrides(
                cache_dir=None, metrics=None
            )
            pool = self._ensure_pool()
            # the worker-crash decision is made parent-side (workers do
            # not share the parent's injector) and shipped as a flag the
            # doomed worker acts on mid-shard
            injector = _FAULTS.injector  # no-op default: one check
            futures = [
                pool.submit(
                    _solve_shard,
                    digest,
                    payload,
                    worker_config,
                    [replace(request, schema=None) for _, request in shard],
                    crash=injector is not None
                    and injector.fire("worker-crash") is not None,
                )
                for shard in shards
            ]
            # joining in shard order makes the propagated error the one the
            # earliest failing request raises -- exactly the serial batch's
            # all-or-nothing contract
            for index, (shard, future) in enumerate(zip(shards, futures)):
                try:
                    shard_payloads, metrics_delta = future.result()
                except BrokenProcessPool:
                    # a killed worker poisons the whole pool: discard it
                    # and recompute every not-yet-joined shard serially
                    # on the parent's own service, which already holds
                    # the schema context (retry-once-serial) -- same
                    # answers, degraded throughput, no error surfaces.
                    # The encode round-trip keeps the downstream decode
                    # pipeline identical to the worker path.
                    pool.shutdown(wait=True)
                    self._pool = None
                    self._serial_fallbacks.inc()
                    for retry_shard in shards[index:]:
                        retry_results = service.batch(
                            [request for _, request in retry_shard],
                            schema=batch_schema,
                        )
                        for (position, _), result in zip(
                            retry_shard, retry_results
                        ):
                            payloads[position] = encode_result(result)
                    break
                # fold the worker-side instruments (queries, latency,
                # solver outcomes) into the parent registry: per-batch
                # deltas, so reused workers never double-count
                self._metrics.merge_snapshot(metrics_delta)
                for (position, _), encoded in zip(shard, shard_payloads):
                    payloads[position] = encoded

        results: List[ConnectionResult] = []
        first_solved = True
        for position, request in enumerate(materialised):
            if position in replayed:
                results.append(replayed[position])
                continue
            result = decode_result(
                payloads[position],
                graph=resolved,
                request=request,
                # stamp the parent's schema-cache status, matching what a
                # serial batch on this service would have reported
                cache_hit=parent_hit if first_solved else True,
            )
            first_solved = False
            results.append(result)
            if disk is not None:
                service._disk_store(disk, request, digest, result)
        if disk is not None and context is not None:
            disk.store_report(digest, context.report)
        return results

    def _transport_for(
        self,
        schema: Any,
        resolved,
        context: SchemaContext,
        digest: Optional[str] = None,
    ) -> Tuple[str, TransportPayload]:
        """Return ``(digest, transport payload)``, memoised per schema.

        The memo is keyed on the schema handle's identity plus its
        ``mutation_version`` (``None`` for the immutable Relational/ER
        handles): a structural mutation bumps the version, so the stale
        transport -- including its shared-memory segment, which is
        unlinked on the spot -- is rebuilt before the next shard is
        dispatched.  A caller that already computed the schema ``digest``
        passes it in.

        With the shared-memory transport the payload is just the segment
        name; with the pickle transport it is the full shard-state blob,
        re-shipped inside every submission.  An open
        :class:`~repro.dynamic.editor.SchemaEditor` transaction holds the
        version, so it cannot key the memo: mid-transaction dispatches
        fall back to an unmemoised pickle payload built from the live
        structure (a segment without a memo would have no owner slot).
        """
        version = getattr(schema, "mutation_version", None)
        held = getattr(schema, "_version_hold", False)
        memo = self._transport
        if not held and memo is not None and memo[0] is schema and memo[1] == version:
            return memo[2], memo[3]
        if digest is None:
            digest = schema_digest(resolved)
        if held or self._transport_kind == "pickle":
            payload: TransportPayload = (
                "pickle",
                pickle.dumps(
                    context.shard_state(), protocol=pickle.HIGHEST_PROTOCOL
                ),
            )
        else:
            indexed, index, report = context.shard_state()
            segment = create_segment(indexed, index, report)
            self._segments[segment.name] = segment
            payload = ("shm", segment.name)
        if not held:
            if memo is not None and memo[3][0] == "shm":
                # the stale version's segment: no future submission can
                # name it, so reclaim it now rather than at close()
                stale = self._segments.pop(memo[3][1], None)
                if stale is not None:
                    _release_segments({memo[3][1]: stale})
            self._transport = (schema, version, digest, payload)
        return digest, payload

    def _shard(self, pending: List) -> List[List]:
        size = self._shard_size
        if size is None:
            size = max(1, ceil(len(pending) / (self._workers * 2)))
        return [pending[start: start + size] for start in range(0, len(pending), size)]

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        return self._pool


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Per-process LRU of rebuilt services keyed by (schema digest, config);
#: each entry also pins the attached SharedMemory handle (when the shard
#: arrived over shared memory) because the service's graph holds
#: zero-copy views into its buffer.
_WORKER_SERVICES: "OrderedDict[Tuple[str, ServiceConfig], Tuple[ConnectionService, Any]]" = (
    OrderedDict()
)
_WORKER_SERVICE_LIMIT = 4


def _worker_service(
    digest: str, payload: TransportPayload, config: ServiceConfig
) -> ConnectionService:
    """Return this worker's service for a schema, rebuilding it on first use.

    A warm worker never reads ``payload`` at all -- with the
    shared-memory transport that makes the steady-state dispatch cost
    independent of the schema size.  Cold rebuilds attach the segment
    (zero-copy CSR views) or unpickle the legacy blob.  Evicting an
    entry drops the last references to its service and its pinned
    SharedMemory holder, which unmaps the segment in this worker;
    *unlinking* remains the parent's job.
    """
    key = (digest, config)
    entry = _WORKER_SERVICES.get(key)
    if entry is None:
        kind, data = payload
        holder: Any = None
        if kind == "shm":
            holder, indexed, index, report = attach_segment(data)
        else:
            indexed, index, report = pickle.loads(data)
        context = SchemaContext.from_shard_state(indexed, index, report)
        service = ConnectionService(schema=context.graph, config=config)
        service.engine.adopt_context(context)
        _WORKER_SERVICES[key] = (service, holder)
        while len(_WORKER_SERVICES) > _WORKER_SERVICE_LIMIT:
            _WORKER_SERVICES.popitem(last=False)
    else:
        _WORKER_SERVICES.move_to_end(key)
        service = entry[0]
    return service


def _solve_shard(
    digest: str,
    payload: TransportPayload,
    config: ServiceConfig,
    requests: List[ConnectionRequest],
    crash: bool = False,
) -> Tuple[List[dict], dict]:
    """Answer one shard in a pool worker.

    Returns ``(encoded result payloads, metrics snapshot delta)``.  The
    worker's registry is long-lived (services are LRU-cached across
    batches), so the envelope carries only the counters and histograms
    this shard moved (:func:`~repro.metrics.snapshot_delta`) -- the
    parent merges them instead of dropping the worker's registry on the
    floor.

    ``crash=True`` is the parent-scheduled ``worker-crash`` fault: the
    worker dies via :func:`os._exit` (no unwinding, no atexit -- a real
    SIGKILL-shaped death) before answering, which breaks the pool and
    exercises the parent's retry-once-serial fallback.
    """
    from repro.metrics import snapshot_delta

    if crash:  # pragma: no cover - the exiting worker reports no coverage
        os._exit(3)
    service = _worker_service(digest, payload, config)
    additive = ("counter", "histogram")
    before = service.metrics.snapshot(kinds=additive)
    results = service.batch(requests)
    delta = snapshot_delta(service.metrics.snapshot(kinds=additive), before)
    return [encode_result(result) for result in results], delta
