"""`repro.runtime`: parallel execution and persistence for the service layer.

The runtime takes the engine/facade stack from single-process, in-memory
execution to sharded-parallel, persistent operation:

* :class:`~repro.runtime.parallel.ParallelExecutor` shards
  :meth:`~repro.api.service.ConnectionService.batch` traffic across a
  process pool with a deterministic, provenance-preserving merge;
* :class:`~repro.runtime.diskcache.DiskCache` persists classification
  reports and connection results across processes (opt-in via
  ``ServiceConfig(cache_dir=...)``);
* :class:`~repro.runtime.workload.WorkloadSpec` /
  :func:`~repro.runtime.workload.run_workload` describe and execute whole
  workloads (serial vs parallel, cold vs warm), reported by
  :class:`~repro.runtime.workload.WorkloadReport`;
* ``python -m repro run`` (:mod:`repro.runtime.cli`) is the command-line
  face of it all.

See ``docs/runtime.md`` for the caching/parallelism guide.
"""

from repro.runtime.codec import (
    PAYLOAD_VERSION,
    PayloadError,
    decode_result,
    encode_result,
    request_key,
)
from repro.runtime.diskcache import FORMAT_VERSION, DiskCache
from repro.runtime.parallel import ParallelExecutor
from repro.runtime.workload import (
    GENERATORS,
    PhaseResult,
    QueryMix,
    WorkloadReport,
    WorkloadSpec,
    canonical_checksum,
    run_workload,
)

__all__ = [
    "DiskCache",
    "FORMAT_VERSION",
    "GENERATORS",
    "PAYLOAD_VERSION",
    "ParallelExecutor",
    "PayloadError",
    "PhaseResult",
    "QueryMix",
    "WorkloadReport",
    "WorkloadSpec",
    "canonical_checksum",
    "decode_result",
    "encode_result",
    "request_key",
    "run_workload",
]
