"""Command-line entry point: ``python -m repro run <spec.json>``.

The CLI executes a :class:`~repro.runtime.workload.WorkloadSpec` through
the full phase matrix -- serial cold, serial warm, parallel, (with
``--cache-dir``) disk-populate and disk-warm, and (with a ``churn`` mix
in the spec) the schema-evolution phases churn-incremental and
churn-oracle -- prints a human-readable summary, and optionally writes
the complete :class:`~repro.runtime.workload.WorkloadReport` as JSON.
The process exits non-zero when any phase disagrees with its checksum
group on the canonical answers, so the CLI doubles as a deterministic
end-to-end check (including "incremental churn answers == fresh-context
oracle answers").

Subcommands::

    python -m repro run spec.json --workers 4 --cache-dir .repro-cache
    python -m repro spec-template          # print a starter spec
    python -m repro serve --port 7463      # multi-tenant connection server
    python -m repro load --smoke           # open-loop load & soak harness
    python -m repro load spec-template     # print a starter load spec

``serve`` starts the :class:`~repro.server.app.ReproServer` (see
``docs/server.md``) and drains gracefully on SIGTERM/SIGINT: it stops
accepting, finishes in-flight requests, flushes the disk cache, then
exits 0.

``load`` executes a :class:`~repro.load.spec.LoadSpec` (see
``docs/load.md``): by default it spawns a ``serve`` subprocess and
drives it over the wire; ``--connect HOST:PORT`` targets a server you
already run, and ``--in-process`` skips sockets entirely.  The exit
code follows the report verdict -- 0 when every budget held and the
verify checksum matched, 1 otherwise, 2 for an invalid spec.

See ``docs/runtime.md`` for the caching/parallelism guide.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.exceptions import ValidationError
from repro.runtime.workload import WorkloadReport, WorkloadSpec, run_workload

#: The starter spec printed by ``spec-template``: the 515-vertex
#: (6,2)-chordal acceptance workload, including a schema-churn phase
#: (``verify`` is off because the fresh-context oracle would re-run the
#: full Theorem 1 recognition after every edit at this schema size; the
#: CI smoke spec runs a smaller schema with the oracle on).
TEMPLATE = {
    "name": "chordal-515",
    "schema": {"generator": "random_62_chordal_graph",
               "params": {"blocks": 170, "rng": 1985}},
    "queries": [{"count": 2000, "terminals": 3, "objective": "steiner", "seed": 7}],
    "workers": 4,
    "shard_size": None,
    "batch_size": None,
    "seed": 0,
    "churn": {"edits": 25, "queries_per_edit": 8, "terminals": 3,
              "seed": 11, "verify": False},
}


def _build_parser() -> argparse.ArgumentParser:
    """Return the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Run declarative minimal-connection workloads "
            "(serial vs parallel, cold vs warm, optionally disk-cached)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="execute a workload spec and report phase timings"
    )
    run.add_argument("spec", help="path to a workload spec JSON file ('-' = stdin)")
    run.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (overrides the spec; 1 = serial only)",
    )
    run.add_argument(
        "--shard-size", type=int, default=None,
        help="requests per dispatched shard (default: two shards per worker)",
    )
    run.add_argument(
        "--cache-dir", default=None,
        help="enable the persistent result cache and run the disk phases",
    )
    run.add_argument(
        "--no-cold", action="store_true",
        help="skip the serial-cold phase (classification + first solves)",
    )
    run.add_argument(
        "--json", dest="json_path", default=None,
        help="write the full report as JSON to this path ('-' = stdout)",
    )
    run.add_argument(
        "--metrics-out", dest="metrics_path", default=None,
        help=(
            "write the run's metrics in Prometheus text exposition format "
            "to this path (e.g. metrics.prom)"
        ),
    )

    commands.add_parser(
        "spec-template", help="print a starter workload spec to stdout"
    )

    serve = commands.add_parser(
        "serve", help="start the multi-tenant connection server"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default: loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="RPC port (default: 0 = pick a free port and print it)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=0,
        help="HTTP port for GET /metrics (default: 0 = pick a free port)",
    )
    serve.add_argument(
        "--capacity", type=int, default=8,
        help="tenants kept bound in memory before LRU eviction (default: 8)",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help="persistent result cache shared by all tenants (disk-warm rebinds)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds to wait for in-flight requests on shutdown (default: 10)",
    )

    load = commands.add_parser(
        "load", help="open-loop load & soak harness against the server"
    )
    load.add_argument(
        "spec", nargs="?", default=None,
        help=(
            "path to a load spec JSON file ('-' = stdin, "
            "'spec-template' = print a starter load spec)"
        ),
    )
    load.add_argument(
        "--smoke", action="store_true",
        help="run the built-in CI acceptance spec instead of a spec file",
    )
    load.add_argument(
        "--in-process", action="store_true",
        help="drive a fresh in-process registry (no sockets, no subprocess)",
    )
    load.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help=(
            "drive an already-running server "
            "(default: spawn a `serve` subprocess for the run)"
        ),
    )
    load.add_argument(
        "--clients", type=int, default=None,
        help="concurrent simulated clients (overrides the spec)",
    )
    load.add_argument(
        "--no-soak", action="store_true",
        help="skip the spec's soak section (burst phase only)",
    )
    load.add_argument(
        "--chaos", action="store_true",
        help=(
            "chaos mode: SIGKILL and restart the spawned server at "
            "scheduled points mid-run; pass requires the answer checksum "
            "to still match the serial oracle (query-only specs; "
            "with --smoke, runs the committed chaos spec)"
        ),
    )
    load.add_argument(
        "--kills", type=int, default=2,
        help="scheduled server kills in chaos mode (default: 2)",
    )
    load.add_argument(
        "--json", dest="json_path", default=None,
        help="write the full LoadReport as JSON to this path ('-' = stdout)",
    )
    return parser


def _load_spec(path: str) -> WorkloadSpec:
    """Read and validate the spec file (``-`` reads stdin)."""
    if path == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise ValidationError(f"cannot read spec {path!r}: {error}") from error
    return WorkloadSpec.from_json(text)


def _print_summary(report: WorkloadReport) -> None:
    """Print the human-readable phase table and headline ratios."""
    print(f"workload  : {report.spec['name']}")
    print(
        f"schema    : {report.vertices} vertices / {report.edges} edges "
        f"({report.spec['schema']['generator']})"
    )
    print(f"queries   : {report.queries}")
    print()
    print(f"{'phase':<18} {'workers':>7} {'seconds':>10} {'q/s':>10}")
    for phase in report.phases:
        rate = phase.queries / phase.seconds if phase.seconds > 0 else float("inf")
        print(
            f"{phase.name:<18} {phase.workers:>7} {phase.seconds:>10.3f} "
            f"{rate:>10.1f}"
        )
    print()
    if report.parallel_speedup is not None:
        print(f"parallel speedup (serial-warm / parallel-warm): "
              f"{report.parallel_speedup:.2f}x")
    if report.disk_warm_ratio is not None:
        print(f"disk-warm / serial-warm ratio                 : "
              f"{report.disk_warm_ratio:.2f}")
    if report.churn_speedup is not None:
        print(f"churn speedup (oracle / incremental)          : "
              f"{report.churn_speedup:.2f}x")
    solvers = ", ".join(f"{name}={count}" for name, count in report.solver_histogram)
    guarantees = ", ".join(
        f"{name}={count}" for name, count in report.guarantee_histogram
    )
    print(f"solvers   : {solvers}")
    print(f"guarantees: {guarantees}")
    oracle = report.cache_stats.get("distance_oracle")
    if oracle:
        print(
            "oracle    : "
            f"hits={oracle.get('hits', 0)} misses={oracle.get('misses', 0)} "
            f"evictions={oracle.get('evictions', 0)} "
            f"invalidated={oracle.get('invalidated', 0)}"
        )
    _print_metrics(report.metrics_summary)
    status = "CONSISTENT" if report.checksums_consistent else "MISMATCH"
    print(f"answers   : {status} (checksum {report.checksum[:16]}...)")


def _print_metrics(summary: dict) -> None:
    """Print the metrics roll-up section (omitted for a NullRegistry run)."""
    if not summary:
        return
    print()
    print("metrics")
    line = f"  queries observed : {summary.get('queries_observed', 0)}"
    if "latency_p50_ms" in summary:
        line += (
            f"  (p50 {summary['latency_p50_ms']:.3f} ms, "
            f"p99 {summary['latency_p99_ms']:.3f} ms)"
        )
    print(line)
    for key, label in (
        ("schema_cache_hit_rate", "schema-cache hit rate"),
        ("oracle_hit_rate", "oracle hit rate"),
    ):
        if key in summary:
            print(f"  {label:<17}: {summary[key]:.1%}")
    if "rebinds" in summary:
        outcomes = ", ".join(
            f"{outcome}={int(count)}"
            for outcome, count in sorted(summary["rebinds"].items())
        )
        print(f"  rebinds          : {outcomes}")
    if "shards_dispatched" in summary:
        print(f"  shards dispatched: {int(summary['shards_dispatched'])}")
    if "disk_replays" in summary:
        print(f"  disk replays     : {int(summary['disk_replays'])}")


def _serve(args: argparse.Namespace) -> int:
    """Run the connection server until SIGTERM/SIGINT, then drain."""
    import asyncio
    import signal

    from repro.server.app import ReproServer

    server = ReproServer(
        host=args.host,
        port=args.port,
        metrics_port=args.metrics_port,
        capacity=args.capacity,
        cache_dir=args.cache_dir,
        drain_grace=args.drain_grace,
    )

    async def _run() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, server.request_drain)
        print(
            f"repro-server listening on {server.host}:{server.port} "
            f"(metrics: http://{server.host}:{server.metrics_port}/metrics)",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # signal raced the handler installation
        pass
    print("repro-server drained cleanly", flush=True)
    return 0


def _load_cmd(args: argparse.Namespace) -> int:
    """Run the ``load`` subcommand; returns the process exit code."""
    from repro.load import LoadSpec, run_load
    from repro.load.runner import TEMPLATE as LOAD_TEMPLATE
    from repro.load.runner import smoke_spec, spawn_server, stop_server

    if args.spec == "spec-template":
        try:
            print(json.dumps(LOAD_TEMPLATE, indent=2))
        except BrokenPipeError:
            pass
        return 0

    try:
        if args.smoke:
            if args.chaos:
                from repro.load.chaos import chaos_spec

                spec = chaos_spec()
            else:
                spec = smoke_spec()
        elif args.spec == "-":
            spec = LoadSpec.from_json(sys.stdin.read())
        elif args.spec is not None:
            try:
                with open(args.spec, "r", encoding="utf-8") as handle:
                    spec = LoadSpec.from_json(handle.read())
            except OSError as error:
                raise ValidationError(
                    f"cannot read load spec {args.spec!r}: {error}"
                ) from error
        else:
            raise ValidationError(
                "provide a load spec path, '-', 'spec-template', or --smoke"
            )
        if args.in_process and args.connect:
            raise ValidationError("--in-process and --connect are exclusive")

        if args.chaos:
            from repro.load.chaos import run_chaos

            if args.connect:
                raise ValidationError(
                    "--chaos must own the server process it kills; "
                    "it cannot target --connect"
                )
            report = run_chaos(
                spec,
                mode="in-process" if args.in_process else "wire",
                kills=args.kills,
                clients=args.clients,
            )
        elif args.in_process:
            report = run_load(
                spec, mode="in-process",
                clients=args.clients, soak=not args.no_soak,
            )
        elif args.connect:
            host, _, port_text = args.connect.rpartition(":")
            if not host or not port_text.isdigit():
                raise ValidationError(
                    f"--connect expects HOST:PORT, got {args.connect!r}"
                )
            report = run_load(
                spec, mode="wire", host=host, port=int(port_text),
                clients=args.clients, soak=not args.no_soak,
            )
        else:
            process, host, port = spawn_server()
            try:
                report = run_load(
                    spec, mode="wire", host=host, port=port,
                    clients=args.clients, soak=not args.no_soak,
                )
            finally:
                stop_server(process)
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.json_path == "-":
        print(report.to_json())
    else:
        print(report.render_text())
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
                handle.write("\n")
            print(f"report: {args.json_path}")
    return 0 if report.ok() else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "serve":
        return _serve(args)

    if args.command == "load":
        return _load_cmd(args)

    if args.command == "spec-template":
        try:
            print(json.dumps(TEMPLATE, indent=2))
        except BrokenPipeError:  # `python -m repro spec-template | head`
            pass
        return 0

    try:
        spec = _load_spec(args.spec)
        report = run_workload(
            spec,
            workers=args.workers,
            shard_size=args.shard_size,
            cache_dir=args.cache_dir,
            include_cold=not args.no_cold,
        )
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.json_path == "-":
        print(report.to_json())
    else:
        _print_summary(report)
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
                handle.write("\n")
            print(f"report    : {args.json_path}")
    if args.metrics_path:
        with open(args.metrics_path, "w", encoding="utf-8") as handle:
            handle.write(report.metrics_text)
        if args.json_path != "-":
            print(f"metrics   : {args.metrics_path}")

    return 0 if report.checksums_consistent else 1
