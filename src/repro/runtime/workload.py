"""Declarative workloads: specs, the phase runner, and provenance-rich reports.

A :class:`WorkloadSpec` is a JSON-friendly description of a complete
experiment: which schema to generate (generator name + parameters), what
query traffic to run against it (one or more :class:`QueryMix` entries:
count, terminals per query, objective, seeds), how to execute it
(workers, shard size, batch size), and optionally a *churn* phase
(:class:`ChurnMix`): interleaved schema mutations and queries that
exercise the incremental dynamic-schema machinery of ``repro.dynamic``.
:func:`run_workload` executes a spec through every interesting
configuration -- serial cold, serial warm, parallel, (with a cache
directory) disk-populate and disk-warm, and (with a churn mix) the
mutation phases -- and returns a :class:`WorkloadReport` with per-phase
wall times, speedups, a solver/guarantee histogram, and determinism
checksums asserting that every phase of a group produced identical
answers (the churn phases answer *mutated* schemas, so they form their
own checksum group, verified against a fresh-context oracle).

This is the workload layer behind the ``python -m repro run`` CLI
(:mod:`repro.runtime.cli`).

Examples
--------
>>> spec = WorkloadSpec.from_dict({
...     "name": "tiny",
...     "schema": {"generator": "random_62_chordal_graph",
...                "params": {"blocks": 4, "rng": 11}},
...     "queries": {"count": 6, "terminals": 3},
...     "workers": 2,
... })
>>> report = run_workload(spec)
>>> report.queries, report.checksums_consistent
(6, True)
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.config import ServiceConfig
from repro.api.request import ConnectionRequest
from repro.api.result import ConnectionResult
from repro.api.service import ConnectionService
from repro.datasets.generators import (
    random_62_chordal_graph,
    random_alpha_schema_graph,
    random_beta_schema_graph,
    random_gamma_schema_graph,
    random_terminals,
)
from repro.dynamic.editor import SchemaEditor
from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.metrics import MetricsRegistry, NullRegistry
from repro.runtime.parallel import ParallelExecutor

#: Schema generators a spec may name (an allowlist: specs are data, and
#: data must not execute arbitrary callables).
GENERATORS = {
    "random_62_chordal_graph": random_62_chordal_graph,
    "random_alpha_schema_graph": random_alpha_schema_graph,
    "random_beta_schema_graph": random_beta_schema_graph,
    "random_gamma_schema_graph": random_gamma_schema_graph,
}


@dataclass(frozen=True)
class QueryMix:
    """One homogeneous slice of a workload's query traffic.

    Attributes
    ----------
    count:
        Number of queries drawn for this mix.
    terminals:
        Terminal-set size per query (sampled from the schema's largest
        connected component, so every query is feasible).
    objective:
        ``"steiner"`` or ``"side"`` (Definition 8 vs. Definition 9).
    side:
        The minimised side for ``"side"`` queries (``None`` defers to the
        service's default).
    seed:
        Optional per-mix RNG seed; defaults to a value derived from the
        spec-level seed and the mix position.
    """

    count: int
    terminals: int = 3
    objective: str = "steiner"
    side: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValidationError("query mix count must be >= 1")
        if self.terminals < 1:
            raise ValidationError("query mix terminals must be >= 1")
        if self.objective not in ("steiner", "side"):
            raise ValidationError(
                f"query mix objective must be 'steiner' or 'side', got "
                f"{self.objective!r}"
            )
        if self.side is not None and self.side not in (1, 2):
            raise ValidationError("query mix side must be 1 or 2")


#: Mutation kinds a churn mix may request (an allowlist, like GENERATORS).
CHURN_KINDS = ("grow-leaf", "prune-leaf", "drop-edge", "attach-block")


@dataclass(frozen=True)
class ChurnMix:
    """The schema-evolution slice of a workload: edits interleaved with queries.

    Attributes
    ----------
    edits:
        Number of mutation steps.  Each step applies one editor
        transaction (a single-edge edit or a small block attachment,
        drawn from ``kinds``) and then answers ``queries_per_edit``
        fresh queries against the mutated schema.
    kinds:
        Allowed mutation kinds, a subset of :data:`CHURN_KINDS`:
        ``grow-leaf`` (new pendant concept), ``prune-leaf`` (drop a
        degree-1 concept), ``drop-edge`` (remove an association),
        ``attach-block`` (glue a small complete bipartite block onto an
        existing concept, as one multi-edit transaction).
    queries_per_edit / terminals:
        Query traffic per mutation step (terminal sets are sampled from
        the mutated schema's largest component, so they stay feasible).
    seed:
        Optional churn RNG seed; defaults to a value derived from the
        spec-level seed.
    verify:
        When ``True`` (default) the churn traffic is answered twice --
        once by an incremental service, once by a fresh-context oracle
        that fully rebuilds after every mutation -- and the two answer
        streams must agree checksum-for-checksum.  Disable for very
        large schemas where the oracle's per-step Theorem 1 recognition
        is prohibitive.
    """

    edits: int
    kinds: Tuple[str, ...] = CHURN_KINDS
    queries_per_edit: int = 4
    terminals: int = 3
    seed: Optional[int] = None
    verify: bool = True

    def __post_init__(self) -> None:
        if self.edits < 1:
            raise ValidationError("churn edits must be >= 1")
        if self.queries_per_edit < 1:
            raise ValidationError("churn queries_per_edit must be >= 1")
        if self.terminals < 1:
            raise ValidationError("churn terminals must be >= 1")
        object.__setattr__(self, "kinds", tuple(self.kinds))
        if not self.kinds:
            raise ValidationError("churn kinds must not be empty")
        unknown = sorted(set(self.kinds) - set(CHURN_KINDS))
        if unknown:
            raise ValidationError(
                f"unknown churn kind(s) {unknown}; known: {list(CHURN_KINDS)}"
            )


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete, JSON-serialisable workload description.

    Attributes
    ----------
    name:
        Free-form label, echoed into the report.
    generator:
        Key into :data:`GENERATORS`.
    params:
        Keyword arguments for the generator (e.g. ``{"blocks": 170,
        "rng": 1985}``); must be JSON-representable.
    mixes:
        The query traffic, as a tuple of :class:`QueryMix`.
    workers / shard_size:
        Parallel-execution defaults (overridable per run).
    batch_size:
        Split the traffic into batches of this size (``None`` = one
        batch), modelling paged arrival of requests.
    seed:
        Base RNG seed for query sampling.
    churn:
        Optional :class:`ChurnMix` describing the schema-evolution phase
        (``None`` = static schema, no churn phases).
    """

    name: str
    generator: str
    params: Tuple[Tuple[str, Any], ...]
    mixes: Tuple[QueryMix, ...]
    workers: int = 1
    shard_size: Optional[int] = None
    batch_size: Optional[int] = None
    seed: int = 0
    churn: Optional[ChurnMix] = None

    def __post_init__(self) -> None:
        if self.generator not in GENERATORS:
            raise ValidationError(
                f"unknown schema generator {self.generator!r}; known: "
                f"{sorted(GENERATORS)}"
            )
        try:
            # bind (without calling) so a typo'd or missing parameter is a
            # spec validation error, not a TypeError mid-run
            inspect.signature(GENERATORS[self.generator]).bind(**dict(self.params))
        except TypeError as error:
            raise ValidationError(
                f"invalid params for generator {self.generator!r}: {error}"
            ) from error
        if not self.mixes:
            raise ValidationError("a workload needs at least one query mix")
        if self.workers < 1:
            raise ValidationError("workers must be >= 1")
        if self.shard_size is not None and self.shard_size < 1:
            raise ValidationError("shard_size must be >= 1 (or None)")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValidationError("batch_size must be >= 1 (or None)")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        """Build a spec from its dict/JSON form (validating everything).

        Expected shape::

            {"name": str,
             "schema": {"generator": str, "params": {...}},
             "queries": {...} | [{...}, ...],   # QueryMix fields
             "workers": int, "shard_size": int|null,
             "batch_size": int|null, "seed": int}
        """
        if not isinstance(data, dict):
            raise ValidationError("a workload spec must be a JSON object")
        unknown = set(data) - {
            "name", "schema", "queries", "workers", "shard_size",
            "batch_size", "seed", "churn",
        }
        if unknown:
            raise ValidationError(f"unknown spec field(s): {sorted(unknown)}")
        schema = data.get("schema")
        if not isinstance(schema, dict) or "generator" not in schema:
            raise ValidationError(
                "spec needs a 'schema' object with a 'generator' name"
            )
        params = schema.get("params", {})
        if not isinstance(params, dict):
            raise ValidationError("'schema.params' must be an object")
        queries = data.get("queries")
        if isinstance(queries, dict):
            queries = [queries]
        if not isinstance(queries, list) or not queries:
            raise ValidationError(
                "spec needs 'queries': a query-mix object or non-empty list"
            )
        mixes = []
        for entry in queries:
            if not isinstance(entry, dict):
                raise ValidationError("each query mix must be an object")
            mix_unknown = set(entry) - {"count", "terminals", "objective", "side", "seed"}
            if mix_unknown:
                raise ValidationError(
                    f"unknown query-mix field(s): {sorted(mix_unknown)}"
                )
            mixes.append(QueryMix(**entry))
        churn_data = data.get("churn")
        churn: Optional[ChurnMix] = None
        if churn_data is not None:
            if not isinstance(churn_data, dict):
                raise ValidationError("'churn' must be an object (or omitted)")
            churn_unknown = set(churn_data) - {
                "edits", "kinds", "queries_per_edit", "terminals", "seed",
                "verify",
            }
            if churn_unknown:
                raise ValidationError(
                    f"unknown churn field(s): {sorted(churn_unknown)}"
                )
            churn = ChurnMix(**churn_data)
        return cls(
            name=str(data.get("name", "workload")),
            generator=schema["generator"],
            params=tuple(sorted(params.items())),
            mixes=tuple(mixes),
            workers=int(data.get("workers", 1)),
            shard_size=data.get("shard_size"),
            batch_size=data.get("batch_size"),
            seed=int(data.get("seed", 0)),
            churn=churn,
        )

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        """Parse a spec from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(f"spec is not valid JSON: {error}") from error
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        """Return the canonical dict form (round-trips through ``from_dict``)."""
        data = {
            "name": self.name,
            "schema": {"generator": self.generator, "params": dict(self.params)},
            "queries": [
                {
                    "count": mix.count,
                    "terminals": mix.terminals,
                    "objective": mix.objective,
                    "side": mix.side,
                    "seed": mix.seed,
                }
                for mix in self.mixes
            ],
            "workers": self.workers,
            "shard_size": self.shard_size,
            "batch_size": self.batch_size,
            "seed": self.seed,
        }
        if self.churn is not None:
            data["churn"] = {
                "edits": self.churn.edits,
                "kinds": list(self.churn.kinds),
                "queries_per_edit": self.churn.queries_per_edit,
                "terminals": self.churn.terminals,
                "seed": self.churn.seed,
                "verify": self.churn.verify,
            }
        return data

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def build_schema(self):
        """Generate the schema graph this spec describes (deterministic)."""
        return GENERATORS[self.generator](**dict(self.params))

    def build_requests(self, graph) -> List[ConnectionRequest]:
        """Sample the spec's query traffic against a generated schema."""
        requests: List[ConnectionRequest] = []
        for position, mix in enumerate(self.mixes):
            seed = mix.seed if mix.seed is not None else self.seed * 1000003 + position
            rng = random.Random(seed)
            for _ in range(mix.count):
                terminals = random_terminals(graph, mix.terminals, rng=rng)
                requests.append(
                    ConnectionRequest.of(
                        terminals, objective=mix.objective, side=mix.side
                    )
                )
        return requests


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseResult:
    """Wall time and context for one executed phase of a workload run.

    ``group`` scopes the determinism contract: phases of the same group
    must agree on the answer checksum.  The static phases all answer the
    same schema and share group ``"main"``; the churn phases answer a
    *mutating* schema and form group ``"churn"`` of their own.
    """

    name: str
    seconds: float
    queries: int
    workers: int
    checksum: str
    group: str = "main"

    def to_dict(self) -> dict:
        """Return the JSON form of this phase."""
        return {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "queries": self.queries,
            "workers": self.workers,
            "checksum": self.checksum,
            "group": self.group,
        }


@dataclass(frozen=True)
class WorkloadReport:
    """Everything one workload run produced, ready for JSON serialisation.

    ``checksum`` is a digest over the canonical answers (trees, costs,
    guarantees, solvers -- no timings, no cache flags); every phase of a
    checksum group must reproduce its group's digest, and
    ``checksums_consistent`` says whether they all did.  The speedup
    fields compare warm phases only, so they measure the steady-state
    effect of parallelism / persistence rather than the one-off
    classification cost (which ``cold_seconds`` reports);
    ``churn_speedup`` compares the incremental churn phase against the
    fresh-context oracle (``None`` without churn or with
    ``verify=false``).
    """

    spec: dict
    vertices: int
    edges: int
    queries: int
    phases: Tuple[PhaseResult, ...]
    checksum: str
    checksums_consistent: bool
    solver_histogram: Tuple[Tuple[str, int], ...]
    guarantee_histogram: Tuple[Tuple[str, int], ...]
    parallel_speedup: Optional[float] = None
    disk_warm_ratio: Optional[float] = None
    churn_speedup: Optional[float] = None
    cache_stats: dict = field(default_factory=dict)
    metrics_summary: dict = field(default_factory=dict)
    metrics_text: str = field(default="", repr=False)

    def phase(self, name: str) -> Optional[PhaseResult]:
        """Return the named phase (``None`` when it was not run)."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        return None

    def to_dict(self) -> dict:
        """Return the JSON form of the full report."""
        return {
            "spec": self.spec,
            "schema": {"vertices": self.vertices, "edges": self.edges},
            "queries": self.queries,
            "phases": [phase.to_dict() for phase in self.phases],
            "checksum": self.checksum,
            "checksums_consistent": self.checksums_consistent,
            "solver_histogram": dict(self.solver_histogram),
            "guarantee_histogram": dict(self.guarantee_histogram),
            "parallel_speedup": self.parallel_speedup,
            "disk_warm_ratio": self.disk_warm_ratio,
            "churn_speedup": self.churn_speedup,
            "cache_stats": self.cache_stats,
            # the full exposition text ships separately (--metrics-out);
            # the report carries the condensed roll-up only
            "metrics": self.metrics_summary,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Return the report as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)


def canonical_checksum(results: Sequence[ConnectionResult]) -> str:
    """Digest the *answers* of a result sequence, ignoring run conditions.

    Covers terminals, objective, tree vertices and edges, cost, guarantee,
    rank, solver, instance class and plan reason; excludes wall times and
    cache flags, which legitimately differ between cold/warm/parallel/disk
    phases.  Two runs of the same workload must agree on this digest --
    :func:`run_workload` asserts it across every phase.
    """
    hasher = hashlib.sha256()
    for result in results:
        record = result.to_dict(include_timing=False)
        provenance = record.get("provenance", {})
        provenance.pop("cache_hit", None)
        provenance.pop("result_cache", None)
        # the kernel lane is a run condition, not an answer: both lanes
        # return byte-identical trees (the backend-differential suite
        # pins it), so the stamp must not split the digest
        provenance.pop("backend", None)
        record["tree_vertices"] = sorted(repr(v) for v in result.tree.vertices())
        record["tree_edges"] = sorted(
            "|".join(sorted((repr(u), repr(v)))) for u, v in result.tree.edges()
        )
        hasher.update(
            json.dumps(record, sort_keys=True, default=repr).encode("utf-8")
        )
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# churn: deterministic schema mutations interleaved with queries
# ----------------------------------------------------------------------
def _opposite_side(graph, vertex) -> Optional[int]:
    """Side for a fresh neighbour of ``vertex`` (``None`` on plain graphs)."""
    if isinstance(graph, BipartiteGraph):
        return 3 - graph.side_of(vertex)
    return None


def _churn_step(graph, rng: random.Random, kinds: Sequence[str], fresh_ids) -> str:
    """Apply one mutation transaction to ``graph``; return the kind applied.

    The kind is drawn from ``kinds``; inapplicable draws (no leaf to
    prune, no edge to drop) fall through to the next candidate.  When
    *no* allowed kind applies -- possible only for allowlists without a
    growth kind, e.g. pure ``drop-edge`` churn on a schema that ran out
    of edges -- the step raises instead of silently mutating outside the
    allowlist.  All choices go through repr-sorted orderings and the
    supplied RNG, so replaying the same seed against an equal graph
    reproduces the same evolution -- which is how the churn oracle
    re-derives the exact schema history.
    """
    candidates = list(kinds)
    rng.shuffle(candidates)
    for kind in candidates:
        if kind == "grow-leaf":
            anchor = rng.choice(graph.sorted_vertices())
            vertex = ("churn", next(fresh_ids))
            with SchemaEditor(graph) as tx:
                tx.add_vertex(vertex, side=_opposite_side(graph, anchor))
                tx.add_edge(vertex, anchor)
            return kind
        if kind == "prune-leaf":
            leaves = [v for v in graph.sorted_vertices() if graph.degree(v) == 1]
            if not leaves:
                continue
            with SchemaEditor(graph) as tx:
                tx.remove_vertex(rng.choice(leaves))
            return kind
        if kind == "drop-edge":
            edges = sorted(
                (tuple(sorted(edge, key=repr)) for edge in graph.edges()), key=repr
            )
            if not edges:
                continue
            u, v = rng.choice(edges)
            with SchemaEditor(graph) as tx:
                tx.remove_edge(u, v)
            return kind
        if kind == "attach-block":
            anchor = rng.choice(graph.sorted_vertices())
            partner = ("churn", next(fresh_ids))
            first = ("churn", next(fresh_ids))
            second = ("churn", next(fresh_ids))
            anchor_side = (
                graph.side_of(anchor) if isinstance(graph, BipartiteGraph) else None
            )
            with SchemaEditor(graph) as tx:
                tx.add_vertex(partner, side=anchor_side)
                tx.add_vertex(first, side=_opposite_side(graph, anchor))
                tx.add_vertex(second, side=_opposite_side(graph, anchor))
                for hub in (anchor, partner):
                    for spoke in (first, second):
                        tx.add_edge(hub, spoke)
            return kind
    raise ValidationError(
        f"no churn kind of {sorted(set(kinds))} is applicable to the current "
        "schema (nothing left to prune or drop); include 'grow-leaf' or "
        "'attach-block' for an always-applicable mutation mix"
    )


def _run_churn_side(
    base_graph, churn: ChurnMix, seed: int, config: ServiceConfig
) -> Tuple[List[ConnectionResult], float]:
    """Answer the churn traffic once; return ``(results, seconds)``.

    Both churn phases call this with an equal starting graph and the same
    seed -- only ``config.incremental`` differs -- so they replay the
    identical mutation/query history.  The service is warmed (context
    built, first query answered) before the clock starts: what the phase
    measures is the steady-state cost of *keeping up with mutations*, not
    the one-off cold classification every other phase also pays.
    """
    graph = base_graph.copy()
    service = ConnectionService(
        schema=graph, config=config.with_overrides(cache_dir=None)
    )
    rng = random.Random(seed)
    fresh_ids = itertools.count(1)
    service.connect(random_terminals(graph, churn.terminals, rng=rng))
    results: List[ConnectionResult] = []
    started = perf_counter()
    for _ in range(churn.edits):
        _churn_step(graph, rng, churn.kinds, fresh_ids)
        requests = [
            ConnectionRequest.of(
                random_terminals(graph, churn.terminals, rng=rng)
            )
            for _ in range(churn.queries_per_edit)
        ]
        results.extend(service.batch(requests))
    return results, perf_counter() - started


# ----------------------------------------------------------------------
# the phase runner
# ----------------------------------------------------------------------
def _run_batches(execute, requests: List[ConnectionRequest], batch_size: Optional[int]):
    """Run ``execute`` over the request list in ``batch_size`` chunks."""
    if batch_size is None:
        return list(execute(requests))
    results: List[ConnectionResult] = []
    for start in range(0, len(requests), batch_size):
        results.extend(execute(requests[start: start + batch_size]))
    return results


def run_workload(
    spec: WorkloadSpec,
    *,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    cache_dir: Optional[str] = None,
    include_cold: bool = True,
    base_config: Optional[ServiceConfig] = None,
) -> WorkloadReport:
    """Execute a workload spec through every configuration and report.

    Phases (each over the full request list, in ``batch_size`` chunks):

    1. ``serial-cold`` -- fresh service, empty caches: pays classification
       plus every solve (skipped with ``include_cold=False``).
    2. ``serial-warm`` -- same service again: the in-memory steady state.
    3. ``parallel-warm`` -- a :class:`~repro.runtime.parallel.ParallelExecutor`
       sharing the warm service, with the requested worker count.
    4. ``disk-populate`` / ``disk-warm`` -- only with ``cache_dir``: a
       caching service computes-and-stores, then a *fresh* service replays
       everything from disk (no classification, no solving).
    5. ``churn-incremental`` / ``churn-oracle`` -- only with a churn mix:
       interleaved mutation+query traffic answered by an incremental
       service, then (``verify=true``) replayed by a fresh-context oracle
       that fully rebuilds after every mutation.  The two churn phases
       answer mutated schemas, so they form their own checksum group.

    Every phase's answers are digested with :func:`canonical_checksum`;
    the report flags any in-group disagreement.  ``parallel_speedup`` is
    serial-warm over parallel-warm; ``disk_warm_ratio`` is disk-warm over
    serial-warm (< 1 means the disk replay beats in-memory solving);
    ``churn_speedup`` is churn-oracle over churn-incremental (how much
    faster the incremental service keeps up with schema evolution).
    """
    overridden_workers = workers if workers is not None else spec.workers
    overridden_shard = shard_size if shard_size is not None else spec.shard_size
    config = base_config if base_config is not None else ServiceConfig()
    if config.metrics is None:
        # one per-run registry shared by every phase's services, so the
        # report's metrics section describes this run alone (an injected
        # registry -- including a NullRegistry -- is honoured as-is)
        config = config.with_overrides(metrics=MetricsRegistry())
    registry = config.metrics

    graph = spec.build_schema()
    requests = spec.build_requests(graph)
    phases: List[PhaseResult] = []
    checksums: List[str] = []
    by_solver: Dict[str, int] = {}
    by_guarantee: Dict[str, int] = {}

    churn_checksums: List[str] = []

    phase_seconds = registry.gauge(
        "repro_phase_seconds", "Wall time of each workload phase.", ("phase",)
    )
    phase_queries = registry.gauge(
        "repro_phase_queries", "Queries answered by each workload phase.", ("phase",)
    )
    phases_total = registry.counter(
        "repro_phases_total", "Workload phases executed.", ("group",)
    )

    def record_phase(name, seconds, results, phase_workers=1, group="main"):
        phase_seconds.labels(phase=name).set(seconds)
        phase_queries.labels(phase=name).set(len(results))
        phases_total.labels(group=group).inc()
        checksum = canonical_checksum(results)
        (checksums if group == "main" else churn_checksums).append(checksum)
        phases.append(
            PhaseResult(
                name=name,
                seconds=seconds,
                queries=len(results),
                workers=phase_workers,
                checksum=checksum,
                group=group,
            )
        )
        return results

    service = ConnectionService(schema=graph, config=config)

    if include_cold:
        started = perf_counter()
        cold = _run_batches(service.batch, requests, spec.batch_size)
        record_phase("serial-cold", perf_counter() - started, cold)

    started = perf_counter()
    warm = _run_batches(service.batch, requests, spec.batch_size)
    record_phase("serial-warm", perf_counter() - started, warm)
    for result in warm:
        by_solver[result.provenance.solver] = (
            by_solver.get(result.provenance.solver, 0) + 1
        )
        by_guarantee[result.guarantee.value] = (
            by_guarantee.get(result.guarantee.value, 0) + 1
        )

    parallel_speedup = None
    if overridden_workers > 1:
        with ParallelExecutor(
            overridden_workers, shard_size=overridden_shard, service=service
        ) as executor:
            started = perf_counter()
            parallel = _run_batches(executor.batch, requests, spec.batch_size)
            parallel_seconds = perf_counter() - started
        record_phase(
            "parallel-warm", parallel_seconds, parallel, overridden_workers
        )
        warm_phase = next(p for p in phases if p.name == "serial-warm")
        if parallel_seconds > 0:
            parallel_speedup = warm_phase.seconds / parallel_seconds

    disk_warm_ratio = None
    disk_stats = None
    if cache_dir is not None:
        caching_config = config.with_overrides(cache_dir=cache_dir)
        populate_service = ConnectionService(schema=graph, config=caching_config)
        started = perf_counter()
        populated = _run_batches(populate_service.batch, requests, spec.batch_size)
        record_phase("disk-populate", perf_counter() - started, populated)

        replay_service = ConnectionService(schema=graph, config=caching_config)
        started = perf_counter()
        replayed = _run_batches(replay_service.batch, requests, spec.batch_size)
        disk_seconds = perf_counter() - started
        record_phase("disk-warm", disk_seconds, replayed)
        disk_stats = replay_service.cache_stats().get("disk")
        warm_phase = next(p for p in phases if p.name == "serial-warm")
        if warm_phase.seconds > 0:
            disk_warm_ratio = disk_seconds / warm_phase.seconds

    churn_speedup = None
    if spec.churn is not None:
        churn = spec.churn
        churn_seed = (
            churn.seed if churn.seed is not None else spec.seed * 2000003 + 17
        )
        incremental_results, incremental_seconds = _run_churn_side(
            graph, churn, churn_seed, config.with_overrides(incremental=True)
        )
        record_phase(
            "churn-incremental", incremental_seconds, incremental_results,
            group="churn",
        )
        if churn.verify:
            # cache_size=1 makes "fresh context per mutation" literal:
            # every step changes the structure, so consecutive lookups
            # can never hit a one-slot LRU -- without it, an edit that
            # restores a recently-seen structure could be served from
            # the oracle's context cache, skipping the rebuild the
            # oracle exists to pay
            oracle_results, oracle_seconds = _run_churn_side(
                graph, churn, churn_seed,
                config.with_overrides(incremental=False, cache_size=1),
            )
            record_phase(
                "churn-oracle", oracle_seconds, oracle_results, group="churn"
            )
            if incremental_seconds > 0:
                churn_speedup = oracle_seconds / incremental_seconds

    # final snapshot: the serving service's engine counters (schema
    # cache + distance oracle) cover every static phase it answered; the
    # disk replay service contributes only its "disk" counters
    cache_stats = dict(service.cache_stats())
    if disk_stats is not None:
        cache_stats["disk"] = disk_stats

    # rendering runs the snapshot collectors, so the exposition text and
    # the condensed summary both see final cache/oracle/shm counters
    metrics_text = registry.render_text()
    metrics_summary = _metrics_summary(registry, cache_stats)

    return WorkloadReport(
        spec=spec.to_dict(),
        vertices=graph.number_of_vertices(),
        edges=graph.number_of_edges(),
        queries=len(requests),
        phases=tuple(phases),
        checksum=checksums[0] if checksums else "",
        checksums_consistent=(
            len(set(checksums)) <= 1 and len(set(churn_checksums)) <= 1
        ),
        solver_histogram=tuple(sorted(by_solver.items())),
        guarantee_histogram=tuple(sorted(by_guarantee.items())),
        parallel_speedup=parallel_speedup,
        disk_warm_ratio=disk_warm_ratio,
        churn_speedup=churn_speedup,
        cache_stats=cache_stats,
        metrics_summary=metrics_summary,
        metrics_text=metrics_text,
    )


def _metrics_summary(registry: MetricsRegistry, cache_stats: dict) -> dict:
    """Condense a run's registry and cache counters for the CLI report.

    Latency quantiles come from the family-level roll-up of the query
    histogram (:meth:`~repro.metrics.Histogram.merged`); hit rates from
    the final ``cache_stats`` snapshot.  Keys are omitted rather than
    reported as zero when a subsystem saw no traffic, and a
    :class:`~repro.metrics.NullRegistry` yields an empty summary.
    """
    summary: Dict[str, Any] = {}
    if isinstance(registry, NullRegistry):
        return summary
    latency = registry.get("repro_query_latency_seconds")
    if latency is not None:
        merged = latency.merged()
        summary["queries_observed"] = merged.count
        if merged.count:
            summary["latency_p50_ms"] = round(merged.quantile(0.5) * 1000.0, 4)
            summary["latency_p99_ms"] = round(merged.quantile(0.99) * 1000.0, 4)
    hits = cache_stats.get("hits", 0)
    misses = cache_stats.get("misses", 0)
    if hits + misses:
        summary["schema_cache_hit_rate"] = round(hits / (hits + misses), 4)
    oracle = cache_stats.get("distance_oracle", {})
    lookups = oracle.get("hits", 0) + oracle.get("misses", 0)
    if lookups:
        summary["oracle_hit_rate"] = round(oracle.get("hits", 0) / lookups, 4)
    rebinds = registry.get("repro_rebind_total")
    if rebinds is not None:
        outcomes = {
            key[0]: child.value
            for key, child in rebinds.children()
            if child.value
        }
        if outcomes:
            summary["rebinds"] = outcomes
    shards = registry.get("repro_shards_total")
    if shards is not None and shards.value:
        summary["shards_dispatched"] = shards.value
    replays = registry.get("repro_disk_replays_total")
    if replays is not None and replays.value:
        summary["disk_replays"] = replays.value
    return summary
