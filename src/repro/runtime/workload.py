"""Declarative workloads: specs, the phase runner, and provenance-rich reports.

A :class:`WorkloadSpec` is a JSON-friendly description of a complete
experiment: which schema to generate (generator name + parameters), what
query traffic to run against it (one or more :class:`QueryMix` entries:
count, terminals per query, objective, seeds), and how to execute it
(workers, shard size, batch size).  :func:`run_workload` executes a spec
through every interesting configuration -- serial cold, serial warm,
parallel, and (with a cache directory) disk-populate and disk-warm -- and
returns a :class:`WorkloadReport` with per-phase wall times, speedups, a
solver/guarantee histogram, and a determinism checksum asserting that
every phase produced identical answers.

This is the workload layer behind the ``python -m repro run`` CLI
(:mod:`repro.runtime.cli`).

Examples
--------
>>> spec = WorkloadSpec.from_dict({
...     "name": "tiny",
...     "schema": {"generator": "random_62_chordal_graph",
...                "params": {"blocks": 4, "rng": 11}},
...     "queries": {"count": 6, "terminals": 3},
...     "workers": 2,
... })
>>> report = run_workload(spec)
>>> report.queries, report.checksums_consistent
(6, True)
"""

from __future__ import annotations

import hashlib
import inspect
import json
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.config import ServiceConfig
from repro.api.request import ConnectionRequest
from repro.api.result import ConnectionResult
from repro.api.service import ConnectionService
from repro.datasets.generators import (
    random_62_chordal_graph,
    random_alpha_schema_graph,
    random_beta_schema_graph,
    random_gamma_schema_graph,
    random_terminals,
)
from repro.exceptions import ValidationError
from repro.runtime.parallel import ParallelExecutor

#: Schema generators a spec may name (an allowlist: specs are data, and
#: data must not execute arbitrary callables).
GENERATORS = {
    "random_62_chordal_graph": random_62_chordal_graph,
    "random_alpha_schema_graph": random_alpha_schema_graph,
    "random_beta_schema_graph": random_beta_schema_graph,
    "random_gamma_schema_graph": random_gamma_schema_graph,
}


@dataclass(frozen=True)
class QueryMix:
    """One homogeneous slice of a workload's query traffic.

    Attributes
    ----------
    count:
        Number of queries drawn for this mix.
    terminals:
        Terminal-set size per query (sampled from the schema's largest
        connected component, so every query is feasible).
    objective:
        ``"steiner"`` or ``"side"`` (Definition 8 vs. Definition 9).
    side:
        The minimised side for ``"side"`` queries (``None`` defers to the
        service's default).
    seed:
        Optional per-mix RNG seed; defaults to a value derived from the
        spec-level seed and the mix position.
    """

    count: int
    terminals: int = 3
    objective: str = "steiner"
    side: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValidationError("query mix count must be >= 1")
        if self.terminals < 1:
            raise ValidationError("query mix terminals must be >= 1")
        if self.objective not in ("steiner", "side"):
            raise ValidationError(
                f"query mix objective must be 'steiner' or 'side', got "
                f"{self.objective!r}"
            )
        if self.side is not None and self.side not in (1, 2):
            raise ValidationError("query mix side must be 1 or 2")


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete, JSON-serialisable workload description.

    Attributes
    ----------
    name:
        Free-form label, echoed into the report.
    generator:
        Key into :data:`GENERATORS`.
    params:
        Keyword arguments for the generator (e.g. ``{"blocks": 170,
        "rng": 1985}``); must be JSON-representable.
    mixes:
        The query traffic, as a tuple of :class:`QueryMix`.
    workers / shard_size:
        Parallel-execution defaults (overridable per run).
    batch_size:
        Split the traffic into batches of this size (``None`` = one
        batch), modelling paged arrival of requests.
    seed:
        Base RNG seed for query sampling.
    """

    name: str
    generator: str
    params: Tuple[Tuple[str, Any], ...]
    mixes: Tuple[QueryMix, ...]
    workers: int = 1
    shard_size: Optional[int] = None
    batch_size: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.generator not in GENERATORS:
            raise ValidationError(
                f"unknown schema generator {self.generator!r}; known: "
                f"{sorted(GENERATORS)}"
            )
        try:
            # bind (without calling) so a typo'd or missing parameter is a
            # spec validation error, not a TypeError mid-run
            inspect.signature(GENERATORS[self.generator]).bind(**dict(self.params))
        except TypeError as error:
            raise ValidationError(
                f"invalid params for generator {self.generator!r}: {error}"
            ) from error
        if not self.mixes:
            raise ValidationError("a workload needs at least one query mix")
        if self.workers < 1:
            raise ValidationError("workers must be >= 1")
        if self.shard_size is not None and self.shard_size < 1:
            raise ValidationError("shard_size must be >= 1 (or None)")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValidationError("batch_size must be >= 1 (or None)")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        """Build a spec from its dict/JSON form (validating everything).

        Expected shape::

            {"name": str,
             "schema": {"generator": str, "params": {...}},
             "queries": {...} | [{...}, ...],   # QueryMix fields
             "workers": int, "shard_size": int|null,
             "batch_size": int|null, "seed": int}
        """
        if not isinstance(data, dict):
            raise ValidationError("a workload spec must be a JSON object")
        unknown = set(data) - {
            "name", "schema", "queries", "workers", "shard_size",
            "batch_size", "seed",
        }
        if unknown:
            raise ValidationError(f"unknown spec field(s): {sorted(unknown)}")
        schema = data.get("schema")
        if not isinstance(schema, dict) or "generator" not in schema:
            raise ValidationError(
                "spec needs a 'schema' object with a 'generator' name"
            )
        params = schema.get("params", {})
        if not isinstance(params, dict):
            raise ValidationError("'schema.params' must be an object")
        queries = data.get("queries")
        if isinstance(queries, dict):
            queries = [queries]
        if not isinstance(queries, list) or not queries:
            raise ValidationError(
                "spec needs 'queries': a query-mix object or non-empty list"
            )
        mixes = []
        for entry in queries:
            if not isinstance(entry, dict):
                raise ValidationError("each query mix must be an object")
            mix_unknown = set(entry) - {"count", "terminals", "objective", "side", "seed"}
            if mix_unknown:
                raise ValidationError(
                    f"unknown query-mix field(s): {sorted(mix_unknown)}"
                )
            mixes.append(QueryMix(**entry))
        return cls(
            name=str(data.get("name", "workload")),
            generator=schema["generator"],
            params=tuple(sorted(params.items())),
            mixes=tuple(mixes),
            workers=int(data.get("workers", 1)),
            shard_size=data.get("shard_size"),
            batch_size=data.get("batch_size"),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        """Parse a spec from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(f"spec is not valid JSON: {error}") from error
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        """Return the canonical dict form (round-trips through ``from_dict``)."""
        return {
            "name": self.name,
            "schema": {"generator": self.generator, "params": dict(self.params)},
            "queries": [
                {
                    "count": mix.count,
                    "terminals": mix.terminals,
                    "objective": mix.objective,
                    "side": mix.side,
                    "seed": mix.seed,
                }
                for mix in self.mixes
            ],
            "workers": self.workers,
            "shard_size": self.shard_size,
            "batch_size": self.batch_size,
            "seed": self.seed,
        }

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def build_schema(self):
        """Generate the schema graph this spec describes (deterministic)."""
        return GENERATORS[self.generator](**dict(self.params))

    def build_requests(self, graph) -> List[ConnectionRequest]:
        """Sample the spec's query traffic against a generated schema."""
        requests: List[ConnectionRequest] = []
        for position, mix in enumerate(self.mixes):
            seed = mix.seed if mix.seed is not None else self.seed * 1000003 + position
            rng = random.Random(seed)
            for _ in range(mix.count):
                terminals = random_terminals(graph, mix.terminals, rng=rng)
                requests.append(
                    ConnectionRequest.of(
                        terminals, objective=mix.objective, side=mix.side
                    )
                )
        return requests


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseResult:
    """Wall time and context for one executed phase of a workload run."""

    name: str
    seconds: float
    queries: int
    workers: int
    checksum: str

    def to_dict(self) -> dict:
        """Return the JSON form of this phase."""
        return {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "queries": self.queries,
            "workers": self.workers,
            "checksum": self.checksum,
        }


@dataclass(frozen=True)
class WorkloadReport:
    """Everything one workload run produced, ready for JSON serialisation.

    ``checksum`` is a digest over the canonical answers (trees, costs,
    guarantees, solvers -- no timings, no cache flags); every phase must
    reproduce it, and ``checksums_consistent`` says whether they did.
    The speedup fields compare warm phases only, so they measure the
    steady-state effect of parallelism / persistence rather than the
    one-off classification cost (which ``cold_seconds`` reports).
    """

    spec: dict
    vertices: int
    edges: int
    queries: int
    phases: Tuple[PhaseResult, ...]
    checksum: str
    checksums_consistent: bool
    solver_histogram: Tuple[Tuple[str, int], ...]
    guarantee_histogram: Tuple[Tuple[str, int], ...]
    parallel_speedup: Optional[float] = None
    disk_warm_ratio: Optional[float] = None
    cache_stats: dict = field(default_factory=dict)

    def phase(self, name: str) -> Optional[PhaseResult]:
        """Return the named phase (``None`` when it was not run)."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        return None

    def to_dict(self) -> dict:
        """Return the JSON form of the full report."""
        return {
            "spec": self.spec,
            "schema": {"vertices": self.vertices, "edges": self.edges},
            "queries": self.queries,
            "phases": [phase.to_dict() for phase in self.phases],
            "checksum": self.checksum,
            "checksums_consistent": self.checksums_consistent,
            "solver_histogram": dict(self.solver_histogram),
            "guarantee_histogram": dict(self.guarantee_histogram),
            "parallel_speedup": self.parallel_speedup,
            "disk_warm_ratio": self.disk_warm_ratio,
            "cache_stats": self.cache_stats,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Return the report as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)


def canonical_checksum(results: Sequence[ConnectionResult]) -> str:
    """Digest the *answers* of a result sequence, ignoring run conditions.

    Covers terminals, objective, tree vertices and edges, cost, guarantee,
    rank, solver, instance class and plan reason; excludes wall times and
    cache flags, which legitimately differ between cold/warm/parallel/disk
    phases.  Two runs of the same workload must agree on this digest --
    :func:`run_workload` asserts it across every phase.
    """
    hasher = hashlib.sha256()
    for result in results:
        record = result.to_dict(include_timing=False)
        provenance = record.get("provenance", {})
        provenance.pop("cache_hit", None)
        provenance.pop("result_cache", None)
        record["tree_vertices"] = sorted(repr(v) for v in result.tree.vertices())
        record["tree_edges"] = sorted(
            "|".join(sorted((repr(u), repr(v)))) for u, v in result.tree.edges()
        )
        hasher.update(
            json.dumps(record, sort_keys=True, default=repr).encode("utf-8")
        )
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# the phase runner
# ----------------------------------------------------------------------
def _run_batches(execute, requests: List[ConnectionRequest], batch_size: Optional[int]):
    """Run ``execute`` over the request list in ``batch_size`` chunks."""
    if batch_size is None:
        return list(execute(requests))
    results: List[ConnectionResult] = []
    for start in range(0, len(requests), batch_size):
        results.extend(execute(requests[start: start + batch_size]))
    return results


def run_workload(
    spec: WorkloadSpec,
    *,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    cache_dir: Optional[str] = None,
    include_cold: bool = True,
    base_config: Optional[ServiceConfig] = None,
) -> WorkloadReport:
    """Execute a workload spec through every configuration and report.

    Phases (each over the full request list, in ``batch_size`` chunks):

    1. ``serial-cold`` -- fresh service, empty caches: pays classification
       plus every solve (skipped with ``include_cold=False``).
    2. ``serial-warm`` -- same service again: the in-memory steady state.
    3. ``parallel-warm`` -- a :class:`~repro.runtime.parallel.ParallelExecutor`
       sharing the warm service, with the requested worker count.
    4. ``disk-populate`` / ``disk-warm`` -- only with ``cache_dir``: a
       caching service computes-and-stores, then a *fresh* service replays
       everything from disk (no classification, no solving).

    Every phase's answers are digested with :func:`canonical_checksum`;
    the report flags any disagreement.  ``parallel_speedup`` is
    serial-warm over parallel-warm; ``disk_warm_ratio`` is disk-warm over
    serial-warm (< 1 means the disk replay beats in-memory solving).
    """
    overridden_workers = workers if workers is not None else spec.workers
    overridden_shard = shard_size if shard_size is not None else spec.shard_size
    config = base_config if base_config is not None else ServiceConfig()

    graph = spec.build_schema()
    requests = spec.build_requests(graph)
    phases: List[PhaseResult] = []
    checksums: List[str] = []
    by_solver: Dict[str, int] = {}
    by_guarantee: Dict[str, int] = {}
    cache_stats: dict = {}

    def record_phase(name, seconds, results, phase_workers=1):
        checksum = canonical_checksum(results)
        checksums.append(checksum)
        phases.append(
            PhaseResult(
                name=name,
                seconds=seconds,
                queries=len(results),
                workers=phase_workers,
                checksum=checksum,
            )
        )
        return results

    service = ConnectionService(schema=graph, config=config)

    if include_cold:
        started = perf_counter()
        cold = _run_batches(service.batch, requests, spec.batch_size)
        record_phase("serial-cold", perf_counter() - started, cold)

    started = perf_counter()
    warm = _run_batches(service.batch, requests, spec.batch_size)
    record_phase("serial-warm", perf_counter() - started, warm)
    for result in warm:
        by_solver[result.provenance.solver] = (
            by_solver.get(result.provenance.solver, 0) + 1
        )
        by_guarantee[result.guarantee.value] = (
            by_guarantee.get(result.guarantee.value, 0) + 1
        )

    parallel_speedup = None
    if overridden_workers > 1:
        with ParallelExecutor(
            overridden_workers, shard_size=overridden_shard, service=service
        ) as executor:
            started = perf_counter()
            parallel = _run_batches(executor.batch, requests, spec.batch_size)
            parallel_seconds = perf_counter() - started
        record_phase(
            "parallel-warm", parallel_seconds, parallel, overridden_workers
        )
        warm_phase = next(p for p in phases if p.name == "serial-warm")
        if parallel_seconds > 0:
            parallel_speedup = warm_phase.seconds / parallel_seconds

    disk_warm_ratio = None
    if cache_dir is not None:
        caching_config = config.with_overrides(cache_dir=cache_dir)
        populate_service = ConnectionService(schema=graph, config=caching_config)
        started = perf_counter()
        populated = _run_batches(populate_service.batch, requests, spec.batch_size)
        record_phase("disk-populate", perf_counter() - started, populated)

        replay_service = ConnectionService(schema=graph, config=caching_config)
        started = perf_counter()
        replayed = _run_batches(replay_service.batch, requests, spec.batch_size)
        disk_seconds = perf_counter() - started
        record_phase("disk-warm", disk_seconds, replayed)
        cache_stats = replay_service.cache_stats()
        warm_phase = next(p for p in phases if p.name == "serial-warm")
        if warm_phase.seconds > 0:
            disk_warm_ratio = disk_seconds / warm_phase.seconds

    return WorkloadReport(
        spec=spec.to_dict(),
        vertices=graph.number_of_vertices(),
        edges=graph.number_of_edges(),
        queries=len(requests),
        phases=tuple(phases),
        checksum=checksums[0] if checksums else "",
        checksums_consistent=len(set(checksums)) <= 1,
        solver_histogram=tuple(sorted(by_solver.items())),
        guarantee_histogram=tuple(sorted(by_guarantee.items())),
        parallel_speedup=parallel_speedup,
        disk_warm_ratio=disk_warm_ratio,
        cache_stats=cache_stats,
    )
