"""Result payloads and request keys: the runtime's wire/storage format.

Both runtime transports -- process-pool workers shipping answers back to
the parent (:mod:`repro.runtime.parallel`) and the persistent result store
(:mod:`repro.runtime.diskcache`) -- need a representation of a
:class:`~repro.api.result.ConnectionResult` that does not drag the whole
schema graph along: a solution object references its host graph through
:class:`~repro.steiner.problem.SteinerInstance`, so naively pickling a
result would copy the schema once per answer.

:func:`encode_result` strips a result down to the tree (vertex labels and
edges), the guarantee, and the provenance scalars; :func:`decode_result`
re-materialises a full result against the *receiver's* copy of the schema
graph.  The round trip preserves everything
:meth:`~repro.api.result.ConnectionResult.to_dict` reports, which is what
the differential suite pins.

:func:`request_key` gives every request a stable content address (used
with the schema digest from
:func:`~repro.engine.cache.schema_digest` as the persistent cache key).

Examples
--------
>>> from repro.graphs import BipartiteGraph
>>> from repro.api import ConnectionService
>>> g = BipartiteGraph(left=["A"], right=[1], edges=[("A", 1)])
>>> service = ConnectionService(schema=g)
>>> result = service.connect(["A", 1])
>>> payload = encode_result(result)
>>> clone = decode_result(payload, graph=g, request=result.request)
>>> clone.cost == result.cost and clone.guarantee is result.guarantee
True
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.api.config import ServiceConfig
from repro.api.request import ConnectionRequest
from repro.api.result import ConnectionResult, Guarantee, Provenance
from repro.graphs.graph import Graph
from repro.steiner.problem import SteinerInstance, SteinerSolution

#: Version stamp embedded in every payload.  Decoders refuse payloads with
#: a different version, which lets the on-disk format evolve safely: a new
#: library simply recomputes (and overwrites) entries written by an old one.
PAYLOAD_VERSION = 1


class PayloadError(ValueError):
    """Raised by :func:`decode_result` on malformed or mismatched payloads."""


#: Memo of label ``repr`` strings.  Every encoded result repr-sorts its
#: tree vertices and edges, and labels are drawn from a small per-schema
#: universe, so caching the strings takes the sort keys off the
#: per-result hot path (pool transport and the server wire alike).
_REPR_MEMO: dict = {}
_REPR_MEMO_MAX = 65536


def _label_repr(label) -> str:
    """``repr(label)``, memoised for hashable labels."""
    try:
        return _REPR_MEMO[label]
    except KeyError:
        text = repr(label)
        if len(_REPR_MEMO) < _REPR_MEMO_MAX:
            _REPR_MEMO[label] = text
        return text
    except TypeError:  # unhashable label; legal, just not memoisable
        return repr(label)


def request_key(request: ConnectionRequest, config: Optional[ServiceConfig] = None) -> str:
    """Return a stable content address for one request.

    The key covers every request field that can change the answer --
    terminals, objective, effective side, pinned solver, policy, and the
    *effective* dispatch limits (per-request overrides resolved against
    ``config``, so a config change cannot serve a plan computed under
    different thresholds).  Free-form ``tags`` are excluded: they annotate
    provenance but never influence the computation.

    Examples
    --------
    >>> req = ConnectionRequest.of(["A", "B"])
    >>> key = request_key(req)
    >>> len(key), key == request_key(ConnectionRequest.of(["B", "A"]))
    (64, True)
    """
    if config is None:
        config = ServiceConfig()
    side = request.side if request.side is not None else config.default_side
    terminal_limit = (
        request.exact_terminal_limit
        if request.exact_terminal_limit is not None
        else config.exact_terminal_limit
    )
    vertex_limit = (
        request.exact_vertex_limit
        if request.exact_vertex_limit is not None
        else config.exact_vertex_limit
    )
    parts = "\n".join(
        [
            "terminals=" + "\x1f".join(repr(t) for t in request.terminals),
            f"objective={request.objective}",
            f"side={side}",
            f"solver={request.solver!r}",
            f"policy={request.policy}",
            f"terminal_limit={terminal_limit}",
            f"vertex_limit={vertex_limit}",
        ]
    )
    return hashlib.sha256(parts.encode("utf-8", "backslashreplace")).hexdigest()


def encode_result(result: ConnectionResult) -> dict:
    """Return a compact, schema-free payload for one result.

    The payload carries the tree by *vertex labels and edges* (not as a
    graph object), the solution scalars, and the provenance record minus
    the request tags (the receiver re-attaches its own request).  Labels
    must be picklable -- true for every vertex type the library's
    generators and figures produce.
    """
    solution = result.solution
    tree = solution.tree
    return {
        "version": PAYLOAD_VERSION,
        "tree_vertices": sorted(tree.vertices(), key=_label_repr),
        # each edge oriented low-repr-first (inlined two-element sort --
        # this is the per-result hot path for both pool transport and
        # the server wire), then the edge list repr-sorted as a whole
        "tree_edges": sorted(
            (
                (u, v) if _label_repr(u) <= _label_repr(v) else (v, u)
                for u, v in tree.edges()
            ),
            key=_label_repr,
        ),
        "method": solution.method,
        "side": solution.side,
        "optimal": solution.optimal,
        "metadata": dict(solution.metadata),
        "guarantee": result.guarantee.value,
        "rank": result.rank,
        "provenance": {
            "solver": result.provenance.solver,
            "instance_class": result.provenance.instance_class,
            "plan": result.provenance.plan,
            "cache_hit": result.provenance.cache_hit,
            "fallback_from": result.provenance.fallback_from,
            "wall_time_ms": result.provenance.wall_time_ms,
            "request_id": result.provenance.request_id,
            "tenant": result.provenance.tenant,
            "phases": result.provenance.phases,
            "backend": result.provenance.backend,
        },
    }


def decode_result(
    payload: dict,
    *,
    graph: Graph,
    request: ConnectionRequest,
    cache_hit: Optional[bool] = None,
    result_cache: Optional[str] = None,
) -> ConnectionResult:
    """Re-materialise a :class:`ConnectionResult` from a payload.

    Parameters
    ----------
    payload:
        A dict produced by :func:`encode_result`.
    graph:
        The receiver's copy of the schema graph; the rebuilt solution's
        :class:`~repro.steiner.problem.SteinerInstance` points at it.
    request:
        The receiver's request object; it becomes the result's ``request``
        and its ``tags`` are echoed into provenance, exactly as on the
        direct path.
    cache_hit:
        Optional override of the stored ``cache_hit`` flag.  The parallel
        executor stamps the *parent's* schema-cache status here so merged
        batches report the same provenance as a serial batch would.
    result_cache:
        Set to ``"disk"`` when replaying from the persistent store.

    Raises
    ------
    PayloadError
        When the payload is not a dict, has a different
        :data:`PAYLOAD_VERSION`, or misses required fields.
    """
    if not isinstance(payload, dict):
        raise PayloadError(f"payload must be a dict, got {type(payload).__name__}")
    if payload.get("version") != PAYLOAD_VERSION:
        raise PayloadError(
            f"payload version {payload.get('version')!r} != {PAYLOAD_VERSION}"
        )
    try:
        tree = Graph(
            vertices=payload["tree_vertices"], edges=payload["tree_edges"]
        )
        solution = SteinerSolution(
            tree=tree,
            instance=SteinerInstance(graph, request.terminals),
            method=payload["method"],
            side=payload["side"],
            optimal=payload["optimal"],
            metadata=dict(payload["metadata"]),
        )
        stored = payload["provenance"]
        provenance = Provenance(
            solver=stored["solver"],
            instance_class=stored["instance_class"],
            plan=stored["plan"],
            cache_hit=stored["cache_hit"] if cache_hit is None else cache_hit,
            fallback_from=stored["fallback_from"],
            wall_time_ms=stored["wall_time_ms"],
            tags=dict(request.tags),
            result_cache=result_cache,
            # .get(): payloads written before the request-context fields
            # existed decode to None, same as an un-scoped computation
            request_id=stored.get("request_id"),
            tenant=stored.get("tenant"),
            phases=stored.get("phases"),
            backend=stored.get("backend"),
        )
        return ConnectionResult(
            request=request,
            solution=solution,
            guarantee=Guarantee(payload["guarantee"]),
            provenance=provenance,
            rank=payload["rank"],
        )
    except PayloadError:
        raise
    except Exception as error:
        raise PayloadError(f"malformed result payload: {error}") from error
