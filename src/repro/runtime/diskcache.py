"""Persistent, content-addressed store for classification reports and results.

The engine's in-memory :class:`~repro.engine.cache.SchemaCache` dies with
the interpreter, and on production schemas the lost work is substantial:
re-classifying a 500-vertex chordal schema costs tens of seconds before
the first query can be planned.  :class:`DiskCache` persists the two
artifacts worth keeping across processes:

* the **classification report** of a schema
  (:class:`~repro.core.classification.ChordalityReport`), keyed by the
  schema's structural digest -- a cold process warm-starts in
  milliseconds instead of re-running the Theorem 1 recognition;
* individual **connection results**, keyed by ``(schema digest, request
  key)`` -- repeat requests are replayed without solving at all.

Layout and safety
-----------------
Everything lives under ``cache_dir/v<FORMAT_VERSION>/<digest>/``: a
``report.pkl`` plus one ``results/<request key>.pkl`` per answered
request.  Every file embeds its format version and kind; readers treat
*any* anomaly -- unreadable file, wrong version, wrong kind, wrong key,
truncated pickle -- as a miss and rebuild, never crash.  Writes go to a
temporary file followed by an atomic :func:`os.replace`, so a crashed or
concurrent writer can leave at worst an orphaned temp file, never a
half-written entry.  Invalidation is structural: mutating a schema
changes its digest (see :func:`~repro.engine.cache.schema_digest`), so
stale entries are simply never addressed again.

The store is append-only (no eviction); :meth:`DiskCache.clear` drops
everything.  Cache files are pickles: share a cache directory only with
processes you trust, as with any pickle-based store.

Examples
--------
>>> import tempfile
>>> from repro.api import ConnectionService, ServiceConfig
>>> from repro.graphs import BipartiteGraph
>>> g = BipartiteGraph(left=["A", "B"], right=[1], edges=[("A", 1), ("B", 1)])
>>> with tempfile.TemporaryDirectory() as tmp:
...     service = ConnectionService(schema=g, config=ServiceConfig(cache_dir=tmp))
...     first = service.connect(["A", "B"])      # computed, stored
...     replay = service.connect(["A", "B"])     # replayed from disk
...     (first.provenance.result_cache, replay.provenance.result_cache)
(None, 'disk')
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.core.classification import ChordalityReport
from repro.faults.plan import ACTIVE as _FAULTS

#: On-disk format version.  Bumping it retires every existing entry at
#: once (old files live under a ``v<old>/`` directory that is simply never
#: read again) -- the safe way to change the payload schema.
FORMAT_VERSION = 1


class DiskCache:
    """Content-addressed persistent cache under one directory.

    Parameters
    ----------
    cache_dir:
        Root directory; created on first write.  Entries live under a
        version subdirectory (``v1/`` for this format), so caches written
        by incompatible library versions coexist without interference.

    Notes
    -----
    Every method is best-effort and exception-free by contract: reads
    return ``None`` on any problem, writes silently count failures in
    :meth:`stats`.  A cache must never take the service down.
    """

    def __init__(self, cache_dir: Union[str, os.PathLike]) -> None:
        self._root = Path(cache_dir) / f"v{FORMAT_VERSION}"
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalid = 0
        self.store_errors = 0

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        """The versioned root directory of this cache."""
        return self._root

    def _report_path(self, digest: str) -> Path:
        return self._root / digest / "report.pkl"

    def _result_path(self, digest: str, key: str) -> Path:
        return self._root / digest / "results" / f"{key}.pkl"

    # ------------------------------------------------------------------
    # classification reports
    # ------------------------------------------------------------------
    def load_report(self, digest: str) -> Optional[ChordalityReport]:
        """Return the stored classification for a schema digest, or ``None``."""
        record = self._read(self._report_path(digest), kind="report")
        if record is None:
            return None
        report = record.get("data")
        if not isinstance(report, ChordalityReport):
            self.invalid += 1
            return None
        self.hits += 1
        return report

    def store_report(self, digest: str, report: ChordalityReport) -> None:
        """Persist a schema's classification (no-op when already stored)."""
        path = self._report_path(digest)
        try:
            if path.exists():
                return
        except OSError:
            return
        self._write(path, {"format": FORMAT_VERSION, "kind": "report", "data": report})

    # ------------------------------------------------------------------
    # connection results
    # ------------------------------------------------------------------
    def load_result(self, digest: str, key: str) -> Optional[dict]:
        """Return the stored result payload for ``(digest, key)``, or ``None``.

        The payload is the :func:`~repro.runtime.codec.encode_result` dict;
        decoding (and its own validation) is the caller's job.
        """
        record = self._read(self._result_path(digest, key), kind="result")
        if record is None:
            return None
        if record.get("key") != key or not isinstance(record.get("data"), dict):
            self.invalid += 1
            return None
        self.hits += 1
        return record["data"]

    def store_result(self, digest: str, key: str, payload: dict) -> None:
        """Persist one result payload under ``(digest, key)``."""
        self._write(
            self._result_path(digest, key),
            {"format": FORMAT_VERSION, "kind": "result", "key": key, "data": payload},
        )

    # ------------------------------------------------------------------
    # maintenance / observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Return observability counters (hits/misses/stores/invalid/errors)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
            "store_errors": self.store_errors,
            "root": str(self._root),
        }

    def size_bytes(self) -> int:
        """Total bytes stored under this cache's format version.

        Walks the store (0 when nothing was written yet); a *capacity*
        number for leak monitors (:mod:`repro.load.soak`) -- a
        content-addressed store replaying a fixed schema population must
        plateau, so monotonic growth here means entries are being minted
        that never repeat.
        """
        total = 0
        if not self._root.exists():
            return 0
        for path in self._root.rglob("*"):
            try:
                if path.is_file():
                    total += path.stat().st_size
            except OSError:  # racing a concurrent writer/clear is fine
                continue
        return total

    def clear(self) -> None:
        """Delete every entry of this cache's format version."""
        shutil.rmtree(self._root, ignore_errors=True)

    # ------------------------------------------------------------------
    # low-level record IO
    # ------------------------------------------------------------------
    def _read(self, path: Path, kind: str) -> Optional[dict]:
        """Load one record; any anomaly is a miss (``None``), never an error."""
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # truncated/corrupted pickle, permission problem, unpicklable
            # class from another library version: ignore and rebuild
            self.invalid += 1
            return None
        if (
            not isinstance(record, dict)
            or record.get("format") != FORMAT_VERSION
            or record.get("kind") != kind
        ):
            self.invalid += 1
            return None
        return record

    def _write(self, path: Path, record: dict) -> None:
        """Atomically write one record (temp file + ``os.replace``).

        The ``disk-write-tear`` fault site truncates the temp file to
        half its bytes before the rename -- the on-disk outcome of a
        process killed mid-write whose rename still landed.  Readers
        must treat the torn entry as a miss and rebuild (:meth:`_read`'s
        any-anomaly-is-a-miss contract), which the fault suite proves.
        """
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
                injector = _FAULTS.injector  # no-op default: one check
                if (
                    injector is not None
                    and injector.fire("disk-write-tear") is not None
                ):
                    size = os.path.getsize(tmp_name)
                    with open(tmp_name, "r+b") as handle:
                        handle.truncate(size // 2)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self.stores += 1
        except Exception:
            # a full disk or unwritable directory degrades the cache, not
            # the service
            self.store_errors += 1
