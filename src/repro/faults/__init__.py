"""Deterministic fault injection for chaos and crash-recovery testing.

``repro.faults`` is the seam every robustness test in this repository
pulls on: a :class:`FaultPlan` compiled from a JSON spec (the same
validate-then-freeze shape as ``repro.load.LoadSpec``) names *where*
faults fire -- typed site ids such as ``"disk-write-tear"`` or
``"wire-frame-drop"`` -- and *when* -- an explicit hit schedule, a
modulus, or a seeded probability.  :class:`FaultInjector` executes that
schedule with zero ambient randomness, so a chaos run that found a bug
replays bit-for-bit.

Production code pays one attribute check: the process-wide default is
``ACTIVE.injector is None`` and every instrumented site guards on that
before doing anything else.  Install a plan with :func:`injected` (a
context manager) in tests, or :func:`install`/:func:`clear` directly.

See ``docs/resilience.md`` for the fault taxonomy and the chaos-mode
load harness built on top (``python -m repro load --chaos``).
"""

from repro.faults.plan import (
    ACTIVE,
    SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    clear,
    injected,
    install,
)

__all__ = [
    "ACTIVE",
    "SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "clear",
    "injected",
    "install",
]
