"""Fault plans, the injector that executes them, and the process-wide slot.

A :class:`FaultPlan` is compiled from a JSON-shaped dict exactly the way
``repro.load.spec.LoadSpec`` is: every key is whitelisted, every value is
type- and range-checked up front, and the result is a frozen dataclass
whose behaviour is a pure function of its fields.  Each rule binds one
*site id* (where the fault fires) to one *trigger* (when it fires):

* ``at`` -- an explicit list of 0-based hit indices;
* ``every`` -- fire on every N-th hit (hit indices ``N-1, 2N-1, ...``);
* ``probability`` -- a Bernoulli draw per hit from a ``random.Random``
  seeded from ``plan.seed`` and the rule's position, never from ambient
  process state.

``limit`` caps the total number of firings per rule and ``delay_ms``
parameterises delay-style sites.  :meth:`FaultPlan.schedule` previews
the firing hit-indices for a site without touching any live state --
the determinism contract the hypothesis suite pins.

The hot-path contract: instrumented code does::

    injector = ACTIVE.injector
    if injector is not None and injector.fire("disk-write-tear"):
        ...

so with the plane disabled (the process-wide default) a site costs one
attribute load and one ``is None`` check.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.exceptions import ValidationError

#: The closed vocabulary of injection sites.  Adding a site means
#: instrumenting real code; the spec parser rejects names not listed
#: here so a typo'd plan fails loudly instead of silently never firing.
SITES: Tuple[str, ...] = (
    "wire-frame-delay",
    "wire-frame-drop",
    "worker-crash",
    "disk-write-tear",
    "deadline-exceeded",
    "server-kill",
)

_RULE_KEYS = ("site", "at", "every", "probability", "limit", "delay_ms")
_PLAN_KEYS = ("seed", "rules")


def _require(mapping: dict, key: str, kinds, context: str):
    """Fetch ``mapping[key]`` and type-check it (LoadSpec's idiom)."""
    if key not in mapping:
        raise ValidationError(f"{context}: missing required key {key!r}")
    value = mapping[key]
    if not isinstance(value, kinds) or isinstance(value, bool):
        names = (
            "/".join(k.__name__ for k in kinds)
            if isinstance(kinds, tuple)
            else kinds.__name__
        )
        raise ValidationError(
            f"{context}: {key!r} must be {names}, got {type(value).__name__}"
        )
    return value


def _check_unknown(mapping: dict, allowed, context: str) -> None:
    """Reject keys outside the whitelist, naming the offenders."""
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise ValidationError(
            f"{context}: unknown key(s) {unknown}; allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class FaultRule:
    """One compiled rule: a site id bound to exactly one trigger.

    Exactly one of ``at`` / ``every`` / ``probability`` is set; the
    parser enforces exclusivity so a rule's firing schedule is never
    ambiguous.
    """

    site: str
    at: Tuple[int, ...] = ()
    every: Optional[int] = None
    probability: Optional[float] = None
    limit: Optional[int] = None
    delay_ms: int = 0

    @staticmethod
    def from_dict(data: dict, index: int) -> "FaultRule":
        """Validate and freeze one rule mapping from a plan spec."""
        context = f"fault rule #{index}"
        if not isinstance(data, dict):
            raise ValidationError(f"{context}: must be an object")
        _check_unknown(data, _RULE_KEYS, context)
        site = _require(data, "site", str, context)
        if site not in SITES:
            raise ValidationError(
                f"{context}: unknown site {site!r}; known sites: {list(SITES)}"
            )
        triggers = [key for key in ("at", "every", "probability") if key in data]
        if len(triggers) != 1:
            raise ValidationError(
                f"{context}: exactly one trigger of 'at'/'every'/'probability' "
                f"is required, got {triggers or 'none'}"
            )
        at: Tuple[int, ...] = ()
        every = probability = None
        if "at" in data:
            raw = _require(data, "at", list, context)
            for position, hit in enumerate(raw):
                if not isinstance(hit, int) or isinstance(hit, bool) or hit < 0:
                    raise ValidationError(
                        f"{context}: at[{position}] must be a non-negative int"
                    )
            at = tuple(sorted(set(raw)))
        elif "every" in data:
            every = _require(data, "every", int, context)
            if every < 1:
                raise ValidationError(f"{context}: 'every' must be >= 1")
        else:
            probability = float(_require(data, "probability", (int, float), context))
            if not 0.0 <= probability <= 1.0:
                raise ValidationError(f"{context}: 'probability' must be in [0, 1]")
        limit = None
        if "limit" in data:
            limit = _require(data, "limit", int, context)
            if limit < 1:
                raise ValidationError(f"{context}: 'limit' must be >= 1")
        delay_ms = 0
        if "delay_ms" in data:
            delay_ms = _require(data, "delay_ms", int, context)
            if delay_ms < 0:
                raise ValidationError(f"{context}: 'delay_ms' must be >= 0")
        return FaultRule(
            site=site, at=at, every=every, probability=probability,
            limit=limit, delay_ms=delay_ms,
        )

    def to_dict(self) -> dict:
        """Round-trip the rule back to its spec mapping."""
        data: dict = {"site": self.site}
        if self.every is not None:
            data["every"] = self.every
        elif self.probability is not None:
            data["probability"] = self.probability
        else:
            data["at"] = list(self.at)
        if self.limit is not None:
            data["limit"] = self.limit
        if self.delay_ms:
            data["delay_ms"] = self.delay_ms
        return data


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, seeded fault schedule: rules compiled from a JSON spec.

    The plan is pure data; :meth:`injector` mints the mutable executor.
    Two plans with equal fields produce byte-identical schedules -- the
    replayability guarantee chaos mode is built on.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        """Reject duplicate sites: one rule per site keeps firing unambiguous."""
        sites = [rule.site for rule in self.rules]
        duplicates = sorted({site for site in sites if sites.count(site) > 1})
        if duplicates:
            raise ValidationError(
                f"fault plan: duplicate rule(s) for site(s) {duplicates}"
            )

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        """Validate and compile a JSON-shaped plan spec."""
        if not isinstance(data, dict):
            raise ValidationError("fault plan: spec must be an object")
        _check_unknown(data, _PLAN_KEYS, "fault plan")
        seed = 0
        if "seed" in data:
            seed = _require(data, "seed", int, "fault plan")
        raw_rules = _require(data, "rules", list, "fault plan")
        rules = tuple(
            FaultRule.from_dict(rule, index)
            for index, rule in enumerate(raw_rules)
        )
        return FaultPlan(seed=seed, rules=rules)

    def to_dict(self) -> dict:
        """Round-trip the plan back to its spec mapping."""
        return {"seed": self.seed, "rules": [r.to_dict() for r in self.rules]}

    def injector(self) -> "FaultInjector":
        """Mint a fresh executor with all hit counters at zero."""
        return FaultInjector(self)

    def schedule(self, site: str, hits: int) -> Tuple[int, ...]:
        """Preview which of the first ``hits`` hits at ``site`` fire.

        Pure: builds a throwaway injector, so calling this never
        perturbs a live run's counters or RNG streams.
        """
        probe = self.injector()
        return tuple(
            index for index in range(hits) if probe.fire(site) is not None
        )


class _RuleState:
    """Mutable per-rule execution state (hit counter, firings, RNG)."""

    __slots__ = ("rule", "hits", "fired", "rng")

    def __init__(self, rule: FaultRule, seed: int, index: int) -> None:
        """Derive the rule's private RNG from the plan seed and position."""
        self.rule = rule
        self.hits = 0
        self.fired = 0
        # same derivation idiom as repro.load.schedule: the stream
        # depends only on (plan seed, rule position), never on wall
        # clock or interpreter state
        self.rng = random.Random(seed * 1000003 + index * 101 + 7)

    def fire(self) -> bool:
        """Advance the hit counter and decide whether this hit fires."""
        rule = self.rule
        index = self.hits
        self.hits += 1
        if rule.limit is not None and self.fired >= rule.limit:
            return False
        if rule.at:
            firing = index in rule.at
        elif rule.every is not None:
            firing = (index + 1) % rule.every == 0
        else:
            # the draw happens on *every* hit so the stream position is
            # a function of the hit index alone
            firing = self.rng.random() < (rule.probability or 0.0)
        if firing:
            self.fired += 1
        return firing


class FaultInjector:
    """Executes a :class:`FaultPlan`: counts hits per site, fires on schedule.

    Thread-safe: sites are hit from server event loops, worker threads
    and load clients concurrently, so the counter update is taken under
    one lock.  Sites without a rule return ``None`` without locking.
    """

    def __init__(self, plan: FaultPlan) -> None:
        """Bind the plan and zero every rule's counters."""
        self.plan = plan
        self._lock = threading.Lock()
        self._states: Dict[str, _RuleState] = {
            rule.site: _RuleState(rule, plan.seed, index)
            for index, rule in enumerate(plan.rules)
        }
        self._log: List[Tuple[str, int]] = []

    def fire(self, site: str) -> Optional[FaultRule]:
        """Record one hit at ``site``; return the rule iff the fault fires."""
        state = self._states.get(site)
        if state is None:
            return None
        with self._lock:
            index = state.hits
            if not state.fire():
                return None
            self._log.append((site, index))
            return state.rule

    def hits(self, site: str) -> int:
        """Total hits recorded at ``site`` so far."""
        state = self._states.get(site)
        return state.hits if state is not None else 0

    def fired(self, site: str) -> int:
        """Total firings at ``site`` so far."""
        state = self._states.get(site)
        return state.fired if state is not None else 0

    def decisions(self) -> Tuple[Tuple[str, int], ...]:
        """The ordered ``(site, hit_index)`` log of every firing."""
        with self._lock:
            return tuple(self._log)


class _ActiveSlot:
    """The process-wide injector slot; ``injector is None`` means disabled."""

    __slots__ = ("injector",)

    def __init__(self) -> None:
        """Start disabled: production processes never pay more than the check."""
        self.injector: Optional[FaultInjector] = None


#: Process-wide slot every instrumented site reads.  Default ``None``:
#: the whole plane is one attribute check when disabled.
ACTIVE = _ActiveSlot()


def install(target: Union[FaultPlan, FaultInjector]) -> FaultInjector:
    """Activate a plan (minting a fresh injector) or an existing injector."""
    injector = target.injector() if isinstance(target, FaultPlan) else target
    ACTIVE.injector = injector
    return injector


def clear() -> None:
    """Deactivate the fault plane (restore the no-op default)."""
    ACTIVE.injector = None


@contextmanager
def injected(target: Union[FaultPlan, FaultInjector]) -> Iterator[FaultInjector]:
    """Scope an active injector to a ``with`` block (test idiom)."""
    injector = install(target)
    try:
        yield injector
    finally:
        clear()
