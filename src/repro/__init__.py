"""repro: chordality properties on bipartite graphs and minimal conceptual connections.

A from-scratch reproduction of

    G. Ausiello, A. D'Atri, M. Moscarini,
    "Chordality Properties on Graphs and Minimal Conceptual Connections in
    Semantic Data Models", PODS 1985 / JCSS 33(2), 1986.

The package provides:

* a graph and hypergraph substrate (``repro.graphs``, ``repro.hypergraphs``),
* the chordality and acyclicity machinery of Section 2
  (``repro.chordality``, Theorem 1 correspondences),
* the Steiner / pseudo-Steiner algorithms and hardness gadgets of Section 3
  (``repro.steiner``, ``repro.core``),
* the semantic-data-model layer of the motivation -- entity-relationship
  and relational schemas, query interpretation, join plans
  (``repro.semantic``),
* named figure instances and workload generators (``repro.datasets``),
* the batched interpretation engine -- solver registry, query planner,
  schema-level precomputation cache and ``batch_interpret`` -- built on
  the integer-indexed graph backend (``repro.engine``,
  ``repro.graphs.indexed``),
* the typed service façade (``repro.api``): ``ConnectionService`` with
  ``ConnectionRequest``/``ConnectionResult`` objects (optimality
  guarantees, provenance) and the resumable ``EnumerationStream`` for
  interactive disambiguation -- the recommended entry point,
* the parallel/persistent runtime (``repro.runtime``):
  ``ParallelExecutor`` shards batches across a process pool,
  ``DiskCache`` persists classifications and results across processes
  (``ServiceConfig(cache_dir=...)``), and ``WorkloadSpec`` +
  ``python -m repro run`` execute declarative workloads end to end,
* the incremental dynamic-schema subsystem (``repro.dynamic``):
  ``SchemaEditor`` batches schema edits into atomic transactions (one
  version bump, rollback on error, structured ``SchemaDelta``
  journals), and ``SchemaContext.apply_delta`` patches cached schema
  contexts blockwise instead of re-running the Theorem 1 recognition --
  schema churn as a first-class workload (the ``churn`` phase of
  ``python -m repro run``),
* the kernel layer (``repro.kernels``): batched BFS kernels over the
  CSR backend, the cross-query ``DistanceOracle`` attached to every
  schema context (component-granular invalidation under edits), and
  the zero-copy shared-memory transport the parallel runtime dispatches
  shards with (see ``docs/performance.md``),
* the observability layer (``repro.metrics``): zero-dependency
  counters/gauges/histograms with Prometheus text exposition, wired
  through the service, runtime and dynamic layers -- injectable per
  service via ``ServiceConfig(metrics=...)``, disabled wholesale with
  ``NullRegistry`` (see ``docs/observability.md``),
* the multi-tenant connection server (``repro.server``):
  ``python -m repro serve`` puts the whole API surface behind
  length-prefixed JSON frames over TCP -- a ``SchemaRegistry`` hosts
  many named schemas with per-tenant config, admission control and LRU
  eviction (disk-warm rebinds via the shared ``DiskCache``),
  enumeration pauses/resumes **across the wire** through opaque
  continuation tokens, and a sidecar HTTP listener serves
  ``GET /metrics`` (see ``docs/server.md``).

The most common entry points are re-exported here; see ``README.md`` for a
guided tour and the ``docs/`` site for the architecture, scenario and
runtime guides.
"""

from repro.api import (
    ConnectionRequest,
    ConnectionResult,
    ConnectionService,
    EnumerationStream,
    Guarantee,
    Provenance,
    ServiceConfig,
)
from repro.chordality import (
    is_41_chordal_bipartite,
    is_61_chordal_bipartite,
    is_62_chordal_bipartite,
    is_chordal,
    is_chordal_bipartite,
    is_mn_chordal,
    is_side_chordal,
    is_side_chordal_and_conformal,
    is_side_conformal,
)
from repro.core import (
    ChordalityReport,
    MinimalConnectionFinder,
    chordality_class,
    classify_bipartite_graph,
    is_cover,
    is_good_ordering,
    is_minimum_cover,
    is_nonredundant_cover,
    minimum_cover_size,
)
from repro.faults import FaultPlan
from repro.exceptions import (
    BipartitenessError,
    DisconnectedTerminalsError,
    GraphError,
    HypergraphError,
    MissingDependencyError,
    NotApplicableError,
    ReproError,
    ValidationError,
)
from repro.dynamic import BlockClassifier, EditOp, SchemaDelta, SchemaEditor
from repro.engine import InterpretationEngine, batch_interpret, schema_digest
from repro.kernels import DistanceOracle, grouped_bfs_levels, grouped_bfs_parents
from repro.load import LoadReport, LoadSpec, run_load
from repro.metrics import MetricsRegistry, NullRegistry, default_metrics
from repro.graphs import (
    BipartiteGraph,
    Graph,
    GraphIndex,
    IndexedGraph,
    from_indexed,
    to_indexed,
)
from repro.hypergraphs import (
    Hypergraph,
    acyclicity_degree,
    is_alpha_acyclic,
    is_berge_acyclic,
    is_beta_acyclic,
    is_gamma_acyclic,
)
from repro.semantic import (
    Database,
    ERSchema,
    QueryInterpreter,
    Relation,
    RelationalSchema,
)
from repro.runtime import (
    DiskCache,
    ParallelExecutor,
    WorkloadReport,
    WorkloadSpec,
    run_workload,
)
from repro.server import (
    RemoteError,
    ReproClient,
    ReproServer,
    RetryPolicy,
    SchemaRegistry,
    TenantLimits,
)
from repro.steiner import (
    SteinerInstance,
    SteinerSolution,
    pseudo_steiner_algorithm1,
    pseudo_steiner_bruteforce,
    steiner_algorithm2,
    steiner_tree_bruteforce,
    steiner_tree_dreyfus_wagner,
)

__version__ = "1.10.0"

__all__ = [
    "BipartiteGraph",
    "BipartitenessError",
    "BlockClassifier",
    "ChordalityReport",
    "ConnectionRequest",
    "ConnectionResult",
    "ConnectionService",
    "Database",
    "DisconnectedTerminalsError",
    "DiskCache",
    "DistanceOracle",
    "ERSchema",
    "EditOp",
    "EnumerationStream",
    "FaultPlan",
    "Graph",
    "GraphError",
    "GraphIndex",
    "Guarantee",
    "Hypergraph",
    "HypergraphError",
    "IndexedGraph",
    "InterpretationEngine",
    "LoadReport",
    "LoadSpec",
    "MetricsRegistry",
    "MinimalConnectionFinder",
    "MissingDependencyError",
    "NotApplicableError",
    "NullRegistry",
    "ParallelExecutor",
    "Provenance",
    "QueryInterpreter",
    "Relation",
    "RelationalSchema",
    "RemoteError",
    "ReproClient",
    "ReproError",
    "ReproServer",
    "RetryPolicy",
    "SchemaDelta",
    "SchemaEditor",
    "SchemaRegistry",
    "ServiceConfig",
    "TenantLimits",
    "SteinerInstance",
    "SteinerSolution",
    "ValidationError",
    "WorkloadReport",
    "WorkloadSpec",
    "acyclicity_degree",
    "batch_interpret",
    "chordality_class",
    "classify_bipartite_graph",
    "default_metrics",
    "from_indexed",
    "grouped_bfs_levels",
    "grouped_bfs_parents",
    "is_41_chordal_bipartite",
    "is_61_chordal_bipartite",
    "is_62_chordal_bipartite",
    "is_alpha_acyclic",
    "is_berge_acyclic",
    "is_beta_acyclic",
    "is_chordal",
    "is_chordal_bipartite",
    "is_cover",
    "is_gamma_acyclic",
    "is_good_ordering",
    "is_minimum_cover",
    "is_mn_chordal",
    "is_nonredundant_cover",
    "is_side_chordal",
    "is_side_chordal_and_conformal",
    "is_side_conformal",
    "minimum_cover_size",
    "pseudo_steiner_algorithm1",
    "pseudo_steiner_bruteforce",
    "run_load",
    "run_workload",
    "schema_digest",
    "steiner_algorithm2",
    "steiner_tree_bruteforce",
    "steiner_tree_dreyfus_wagner",
    "to_indexed",
    "__version__",
]
