"""Zero-copy schema transport over ``multiprocessing.shared_memory``.

The parallel runtime used to ship a pickled ``(IndexedGraph, GraphIndex,
report)`` blob *inside every shard submission*: cheap once, pure overhead
for every subsequent dispatch to an already-warm worker, and a full
unpickle-and-rebuild for every cold one.  This module replaces the blob
with one named shared-memory segment per schema version:

* the parent writes the CSR arrays (``indptr`` / ``indices`` / ``sides``)
  as raw bytes, followed by a small pickled sidecar carrying the label
  tuple and the classification report (both are hashable-object data that
  cannot live in shared memory unserialised);
* each shard submission then carries only the segment *name* -- a
  constant-size payload no matter how large the schema is;
* a cold worker attaches the segment and builds its
  :class:`~repro.graphs.indexed.IndexedGraph` through
  :meth:`~repro.graphs.indexed.IndexedGraph.from_csr` over zero-copy
  ``memoryview`` casts of the segment buffer -- the big arrays are never
  copied, the OS page cache shares them across every worker.

Lifecycle: the parent owns the segments.
:class:`~repro.runtime.parallel.ParallelExecutor` unlinks them when its
transport is re-keyed (schema mutation) and on
:meth:`~repro.runtime.parallel.ParallelExecutor.close`, *after* the pool
has drained -- crashed or errored workers cannot leak segments because
they never own any.  Workers deliberately keep their mapping open for the
life of the process (the attached views back live graph objects) and
unregister the attachment from :mod:`multiprocessing.resource_tracker`,
which would otherwise unlink the parent's segment when the first worker
exits (the well-known CPython attach-side tracking bug).
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import struct
import weakref
from array import array
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.graphs.indexed import GraphIndex, IndexedGraph

try:  # pragma: no cover - import guard exercised only on exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Header: magic, n, indptr bytes, indices bytes, sides bytes (-1 = no
#: bipartition), sidecar bytes.
_HEADER = struct.Struct("<8sqqqqq")
_MAGIC = b"RPROCSR1"

#: Every segment this module creates is named
#: ``<SEGMENT_PREFIX>-<creator pid>-<seq>``, so a recovery sweep can
#: tell (a) that a segment is ours and (b) whether its creator is still
#: alive -- the key the orphan reaper (:func:`sweep_orphans`) matches on.
SEGMENT_PREFIX = "repro-shm"

_SEGMENT_SEQ = itertools.count(1)

#: Segments created (owned) by this process, for the atexit unlink hook.
#: Weak: an executor that already unlinked and dropped its segments must
#: not be kept alive (double-unlink is swallowed either way).
_OWNED_SEGMENTS: "weakref.WeakSet" = weakref.WeakSet()


@atexit.register
def _unlink_owned_segments() -> None:
    """Unlink every still-owned segment at interpreter exit.

    The GC finalizer on :class:`~repro.runtime.parallel.ParallelExecutor`
    covers orderly teardown; this hook covers the *abnormal* exits that
    still unwind the interpreter -- an unhandled exception, ``sys.exit``
    from a signal handler (the ``python -m repro serve`` SIGTERM path) --
    so a dying parent does not strand segments in ``/dev/shm``.
    SIGKILL-class deaths bypass both; those are the orphan sweep's job.
    """
    for segment in list(_OWNED_SEGMENTS):
        for method in (segment.unlink, segment.close):
            try:
                method()
            except Exception:
                pass


def shared_memory_available() -> bool:
    """Return ``True`` when the zero-copy transport can be used here.

    Requires the :mod:`multiprocessing.shared_memory` module and POSIX
    unlink semantics (the executor's lifecycle contract -- explicit
    parent-side unlink -- is meaningless on Windows, where the pickle
    transport is used instead).
    """
    return _shared_memory is not None and os.name == "posix"


def _as_int64_bytes(values: Sequence[int]) -> bytes:
    """Return the 8-byte little-endian raw form of an integer array."""
    if isinstance(values, array) and values.itemsize == 8:
        return values.tobytes()
    return array("q", values).tobytes()


def create_segment(
    indexed: IndexedGraph, index: GraphIndex, report
) -> "_shared_memory.SharedMemory":
    """Write one schema's shard state into a fresh shared-memory segment.

    The caller (the executor's transport memo) owns the returned handle
    and is responsible for :meth:`~multiprocessing.shared_memory.SharedMemory.unlink`.
    """
    if _shared_memory is None:  # pragma: no cover - guarded by callers
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    indptr_bytes = _as_int64_bytes(indexed.indptr)
    indices_bytes = _as_int64_bytes(indexed.indices)
    sides_bytes = (
        indexed.sides.tobytes() if indexed.sides is not None else None
    )
    sidecar = pickle.dumps(
        (index.labels, report), protocol=pickle.HIGHEST_PROTOCOL
    )
    total = (
        _HEADER.size
        + len(indptr_bytes)
        + len(indices_bytes)
        + (len(sidecar))
        + (len(sides_bytes) if sides_bytes is not None else 0)
    )
    segment = None
    for _ in range(64):
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_SEGMENT_SEQ)}"
        try:
            segment = _shared_memory.SharedMemory(
                name=name, create=True, size=max(total, 1)
            )
            break
        except FileExistsError:  # stale orphan from a recycled pid
            continue
    if segment is None:  # pragma: no cover - 64 collisions in a row
        segment = _shared_memory.SharedMemory(create=True, size=max(total, 1))
    _OWNED_SEGMENTS.add(segment)
    buffer = segment.buf
    _HEADER.pack_into(
        buffer,
        0,
        _MAGIC,
        indexed.n,
        len(indptr_bytes),
        len(indices_bytes),
        len(sides_bytes) if sides_bytes is not None else -1,
        len(sidecar),
    )
    offset = _HEADER.size
    for blob in (indptr_bytes, indices_bytes, sides_bytes or b"", sidecar):
        buffer[offset: offset + len(blob)] = blob
        offset += len(blob)
    return segment


def attach_segment(
    name: str,
) -> Tuple["_shared_memory.SharedMemory", IndexedGraph, GraphIndex, object]:
    """Attach a segment and rebuild ``(shm, indexed, index, report)`` from it.

    The returned :class:`IndexedGraph` holds zero-copy ``memoryview``
    casts into the segment buffer for its CSR arrays, so the caller must
    keep the returned ``shm`` handle alive for as long as the graph is --
    the worker-side service cache does exactly that.
    """
    if _shared_memory is None:  # pragma: no cover - guarded by callers
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    segment = _shared_memory.SharedMemory(name=name)
    _untrack_attachment(segment)
    buffer = memoryview(segment.buf)
    magic, n, indptr_len, indices_len, sides_len, sidecar_len = _HEADER.unpack_from(
        buffer, 0
    )
    if magic != _MAGIC:
        raise ValueError(f"segment {name!r} does not hold a CSR payload")
    offset = _HEADER.size
    indptr = buffer[offset: offset + indptr_len].cast("q")
    offset += indptr_len
    indices = buffer[offset: offset + indices_len].cast("q")
    offset += indices_len
    sides: Optional[memoryview] = None
    if sides_len >= 0:
        sides = buffer[offset: offset + sides_len].cast("b")
        offset += sides_len
    labels, report = pickle.loads(buffer[offset: offset + sidecar_len])
    indexed = IndexedGraph.from_csr(n, indptr, indices, sides)
    return segment, indexed, GraphIndex(labels), report


def _untrack_attachment(segment) -> None:
    """Stop the resource tracker from unlinking an attached (not owned) segment.

    CPython's :mod:`multiprocessing.resource_tracker` registers POSIX
    shared memory on *attach* as well as on create (bpo-39959).  What
    that implies depends on how the worker was started:

    * ``spawn``: the worker runs its *own* tracker, which would unlink
      the parent's segment when the worker exits -- the attach-side
      registration must be undone here;
    * ``fork`` / ``forkserver``: the worker shares the parent's tracker
      (one deduplicating name set), so the attach-side registration was
      a no-op and unregistering would strip the *parent's* entry,
      producing a tracker error when the parent later unlinks.

    Best-effort either way: a failure here only means a harmless tracker
    warning at shutdown.
    """
    try:  # pragma: no cover - depends on interpreter internals
        import multiprocessing
        from multiprocessing import resource_tracker

        if multiprocessing.get_start_method(allow_none=True) == "spawn":
            resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover
        pass


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe; unknown (EPERM) counts as alive."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def sweep_orphans(shm_dir: str = "/dev/shm") -> List[str]:
    """Reap ``repro-shm`` segments whose creator process is dead.

    A SIGKILLed parent (or a worker killed mid-shard) can strand
    segments that neither the GC finalizer nor the atexit hook got to
    unlink.  Because :func:`create_segment` embeds the creator pid in
    the name, recovery is a directory scan: any
    ``<SEGMENT_PREFIX>-<pid>-<seq>`` entry whose pid no longer exists is
    unlinked.  Segments of live processes (this one included) are never
    touched.  Returns the reaped names; best-effort and POSIX-only
    (``[]`` elsewhere) -- the executor runs it at startup and on close.
    """
    if not shared_memory_available():
        return []
    root = Path(shm_dir)
    try:
        entries = list(root.iterdir())
    except OSError:
        return []
    reaped: List[str] = []
    marker = f"{SEGMENT_PREFIX}-"
    for entry in entries:
        name = entry.name
        if not name.startswith(marker):
            continue
        parts = name[len(marker):].split("-")
        if not parts or not parts[0].isdigit():
            continue
        if _pid_alive(int(parts[0])):
            continue
        try:
            entry.unlink()
        except OSError:
            continue
        reaped.append(name)
    return reaped
