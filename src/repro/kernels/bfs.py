"""Batched BFS kernels over the CSR arrays of :class:`~repro.graphs.indexed.IndexedGraph`.

The engine's per-query cost on warm schemas is dominated by breadth-first
searches: the metric closure of the KMB heuristic, the shortest-path seed
of the chordal-elimination solver and every feasibility check all start
from a single-source BFS.  This module is the one place those searches
are implemented for the indexed backend:

* :func:`bfs_levels_row` / :func:`bfs_parents_row` -- single-source
  kernels producing flat ``array('i')`` rows, with **exactly** the same
  values (including the discovery-order parent tie-breaks) as
  :meth:`~repro.graphs.indexed.IndexedGraph.bfs_levels` and
  :meth:`~repro.graphs.indexed.IndexedGraph.bfs_parents`;
* :func:`grouped_bfs_levels` / :func:`grouped_bfs_parents` -- the grouped
  (multi-source) entry points: one call fills one row per source, sharing
  a :class:`KernelScratch` so the per-call allocation churn (fresh
  ``[-1] * n`` lists, deque objects) disappears;
* :class:`KernelScratch` -- the reusable per-graph scratch state
  (a ``-1``-filled template the rows are memcpy'd from, and the frontier
  lists the level-synchronous loop swaps between).

A note on speed, recorded here so nobody re-learns it the hard way: a
*dense* distance row over ``n`` vertices requires one interpreted write
per reachable vertex, and CPython's list-based BFS already runs within a
small factor of that floor.  No pure-Python reformulation (bitset
frontiers, level-synchronous masks, block-tree preprocessing) produces
dense rows several times faster on the sparse, high-diameter schema
graphs this library targets -- the measured wins of the kernel layer come
from *not recomputing* rows (the
:class:`~repro.kernels.oracle.DistanceOracle` keeps them across queries)
and from sharing scratch buffers, not from a magically faster traversal.
The benchmarks in ``benchmarks/bench_kernels.py`` quantify both.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Sequence

from repro.graphs.indexed import IndexedGraph


class KernelScratch:
    """Reusable scratch buffers for the BFS kernels of one graph size.

    One scratch serves any number of kernel calls on graphs with ``n``
    vertices; the :class:`~repro.kernels.oracle.DistanceOracle` keeps one
    per schema context.  The template is a ``-1``-filled ``array('i')``
    whose raw bytes seed every produced row with a single C-level copy
    instead of a fresh ``[-1] * n`` list build per call.
    """

    __slots__ = ("n", "_template_bytes")

    def __init__(self, n: int) -> None:
        self.n = n
        self._template_bytes = array("i", [-1] * n).tobytes()

    def new_row(self) -> array:
        """Return a fresh ``array('i')`` of ``n`` entries, all ``-1``."""
        row = array("i")
        row.frombytes(self._template_bytes)
        return row


def bfs_levels_row(
    graph: IndexedGraph, source: int, scratch: KernelScratch = None
) -> array:
    """Return BFS distances from ``source`` as a flat ``array('i')`` row.

    Value-identical to
    :meth:`~repro.graphs.indexed.IndexedGraph.bfs_levels` (``-1`` =
    unreachable); the traversal is level-synchronous with list-swap
    frontiers, which drops the deque machinery from the inner loop.
    """
    if scratch is None:
        scratch = KernelScratch(graph.n)
    dist = scratch.new_row()
    dist[source] = 0
    rows = graph._rows
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        nxt: List[int] = []
        push = nxt.append
        for current in frontier:
            for neighbor in rows[current]:
                if dist[neighbor] < 0:
                    dist[neighbor] = level
                    push(neighbor)
        frontier = nxt
    return dist


def bfs_parents_row(
    graph: IndexedGraph, source: int, scratch: KernelScratch = None
) -> array:
    """Return a BFS parent row from ``source`` as a flat ``array('i')``.

    Value-identical to
    :meth:`~repro.graphs.indexed.IndexedGraph.bfs_parents` -- including
    the tie-breaks: the level-synchronous loop visits the previous level
    in discovery order and each level's vertices in ascending CSR row
    order, which is exactly the order the deque-based implementation
    assigns parents in.  Identity matters because the chordal-elimination
    solver's seed covers (and therefore the returned trees) are built
    from these parents, and the differential suites pin the trees.
    """
    if scratch is None:
        scratch = KernelScratch(graph.n)
    parents = scratch.new_row()
    parents[source] = source
    rows = graph._rows
    frontier = [source]
    while frontier:
        nxt: List[int] = []
        push = nxt.append
        for current in frontier:
            for neighbor in rows[current]:
                if parents[neighbor] < 0:
                    parents[neighbor] = current
                    push(neighbor)
        frontier = nxt
    return parents


def grouped_bfs_levels(
    graph: IndexedGraph,
    sources: Iterable[int],
    scratch: KernelScratch = None,
) -> List[array]:
    """Fill one BFS distance row per source, sharing one scratch.

    The grouped form is the kernel layer's batch entry point: callers
    with many sources (the KMB metric closure, the oracle's prefill pass)
    pay the scratch setup once and get ``array('i')`` rows whose values
    match per-source :meth:`~repro.graphs.indexed.IndexedGraph.bfs_levels`
    calls exactly.
    """
    if scratch is None:
        scratch = KernelScratch(graph.n)
    return [bfs_levels_row(graph, source, scratch) for source in sources]


def grouped_bfs_parents(
    graph: IndexedGraph,
    sources: Iterable[int],
    scratch: KernelScratch = None,
) -> List[array]:
    """Fill one BFS parent row per source, sharing one scratch."""
    if scratch is None:
        scratch = KernelScratch(graph.n)
    return [bfs_parents_row(graph, source, scratch) for source in sources]


def levels_to_dict(row: Sequence[int], labels: Sequence) -> dict:
    """Decode a distance row into the ``{label: distance}`` mapping.

    The shared decode step behind
    :meth:`~repro.engine.cache.SchemaContext.bfs_row`; unreachable
    vertices (``-1``) are absent, mirroring
    :func:`~repro.graphs.traversal.bfs_distances`.
    """
    return {labels[i]: d for i, d in enumerate(row) if d >= 0}
