"""The kernel-backend registry: pluggable compute lanes for the BFS kernels.

PR 5's write-bound analysis (see :mod:`repro.kernels.bfs`) proved the
pure-Python kernels are at their floor, so this module changes the
*substrate* instead of the loop: every BFS row the engine consumes is
produced by a :class:`KernelBackend`, and two lanes implement that
contract:

* **array** (:class:`ArrayBackend`) -- the zero-dependency default,
  delegating to the existing ``array('i')`` kernels of
  :mod:`repro.kernels.bfs`;
* **numpy** (:class:`~repro.kernels.np_lane.NumpyBackend`) -- the
  vectorized lane of :mod:`repro.kernels.np_lane`, adopting the graph's
  CSR buffers through ``np.frombuffer`` (the same bytes the shm
  transport ships zero-copy) and running frontier expansion and grouped
  multi-source BFS as batched array operations.

Both lanes return ``array('i')`` rows that are **byte-identical** --
including the discovery-order parent tie-breaks -- so the engine, the
differential suites and the golden fixtures cannot tell them apart.

Lane selection
--------------
* ``resolve_backend(None)`` (the default everywhere) honours the
  ``REPRO_KERNEL_BACKEND`` environment variable at import/call time and
  falls back to ``"array"``;
* ``ServiceConfig(kernel_backend="numpy")`` selects a lane per service --
  the name travels inside the config through ``fork``/``spawn`` to pool
  workers, so worker-side oracles resolve the same lane;
* ``"auto"`` picks numpy when it is importable and array otherwise.

Requesting ``"numpy"`` without numpy installed raises a typed
:class:`~repro.exceptions.MissingDependencyError`; probing
(:func:`available_backends`, ``"auto"``) never raises.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import MissingDependencyError, ValidationError
from repro.graphs.indexed import IndexedGraph
from repro.kernels.bfs import (
    KernelScratch,
    bfs_levels_row,
    bfs_parents_row,
)

#: Environment variable consulted when no explicit lane is configured.
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Every lane name the registry understands (``"auto"`` resolves to one).
KNOWN_BACKENDS: Tuple[str, ...] = ("array", "numpy")


class KernelBackend:
    """Contract every compute lane implements (and the array lane's base).

    A backend is a stateless strategy object: per-graph state (adopted
    CSR views, scratch buffers) lives in the object returned by
    :meth:`scratch`, which the :class:`~repro.kernels.oracle.DistanceOracle`
    keeps alongside the graph.  All four row producers must return
    ``array('i')`` rows byte-identical to the :mod:`repro.kernels.bfs`
    reference kernels.
    """

    #: Registry name of the lane.
    name = "abstract"

    def scratch(self, graph: IndexedGraph):
        """Return the reusable per-graph scratch state for this lane."""
        raise NotImplementedError

    def bfs_levels_row(self, graph: IndexedGraph, source: int, scratch=None) -> array:
        """Return the BFS distance row from ``source`` (``-1`` = unreachable)."""
        raise NotImplementedError

    def bfs_parents_row(self, graph: IndexedGraph, source: int, scratch=None) -> array:
        """Return the BFS parent row from ``source`` (discovery-order ties)."""
        raise NotImplementedError

    def grouped_bfs_levels(
        self, graph: IndexedGraph, sources: Sequence[int], scratch=None
    ) -> List[array]:
        """Fill one distance row per source in one batched call."""
        raise NotImplementedError

    def grouped_bfs_parents(
        self, graph: IndexedGraph, sources: Sequence[int], scratch=None
    ) -> List[array]:
        """Fill one parent row per source in one batched call."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelBackend {self.name!r}>"


class ArrayBackend(KernelBackend):
    """The zero-dependency ``array('i')`` lane (the default).

    Thin delegation to the reference kernels of :mod:`repro.kernels.bfs`;
    exists so the oracle and the engine talk to one interface whichever
    lane is active.
    """

    name = "array"

    def scratch(self, graph: IndexedGraph) -> KernelScratch:
        """Return a :class:`~repro.kernels.bfs.KernelScratch` for ``graph``."""
        return KernelScratch(graph.n)

    def _scratch(self, graph: IndexedGraph, scratch) -> KernelScratch:
        # foreign-lane (or missing) scratch objects are replaced, so a
        # caller switching lanes mid-flight cannot corrupt a traversal
        if isinstance(scratch, KernelScratch) and scratch.n == graph.n:
            return scratch
        return KernelScratch(graph.n)

    def bfs_levels_row(self, graph: IndexedGraph, source: int, scratch=None) -> array:
        """Return the distance row via :func:`repro.kernels.bfs.bfs_levels_row`."""
        return bfs_levels_row(graph, source, self._scratch(graph, scratch))

    def bfs_parents_row(self, graph: IndexedGraph, source: int, scratch=None) -> array:
        """Return the parent row via :func:`repro.kernels.bfs.bfs_parents_row`."""
        return bfs_parents_row(graph, source, self._scratch(graph, scratch))

    def grouped_bfs_levels(
        self, graph: IndexedGraph, sources: Sequence[int], scratch=None
    ) -> List[array]:
        """Run the single-source kernel per source, sharing one scratch."""
        scratch = self._scratch(graph, scratch)
        return [bfs_levels_row(graph, source, scratch) for source in sources]

    def grouped_bfs_parents(
        self, graph: IndexedGraph, sources: Sequence[int], scratch=None
    ) -> List[array]:
        """Run the single-source parent kernel per source, sharing one scratch."""
        scratch = self._scratch(graph, scratch)
        return [bfs_parents_row(graph, source, scratch) for source in sources]


def numpy_available() -> bool:
    """Return ``True`` when the numpy lane could be resolved (probe only)."""
    try:
        import importlib.util

        return importlib.util.find_spec("numpy") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic finders
        return False


def available_backends() -> Tuple[str, ...]:
    """Return the lane names resolvable right now (never raises)."""
    if numpy_available():
        return KNOWN_BACKENDS
    return ("array",)


#: Resolved singletons, one per lane (backends are stateless strategies).
_INSTANCES: dict = {}


def resolve_backend(name: Optional[str] = None) -> KernelBackend:
    """Return the :class:`KernelBackend` singleton for ``name``.

    ``None`` consults the ``REPRO_KERNEL_BACKEND`` environment variable
    and defaults to ``"array"``; ``"auto"`` picks numpy when importable.
    Unknown names raise :class:`~repro.exceptions.ValidationError`;
    requesting ``"numpy"`` without numpy installed raises
    :class:`~repro.exceptions.MissingDependencyError`.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or "array"
    if name == "auto":
        name = "numpy" if numpy_available() else "array"
    if name not in KNOWN_BACKENDS:
        raise ValidationError(
            f"unknown kernel backend {name!r}; known: "
            f"{', '.join(KNOWN_BACKENDS)} (or 'auto')"
        )
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    if name == "array":
        instance = ArrayBackend()
    else:
        try:
            from repro.kernels.np_lane import NumpyBackend
        except ImportError:
            raise MissingDependencyError(
                "numpy", "the 'numpy' kernel backend"
            ) from None
        instance = NumpyBackend()
    _INSTANCES[name] = instance
    return instance


def backend_name(backend: Optional[KernelBackend]) -> str:
    """Return the lane name of ``backend``, resolving the default for ``None``."""
    if backend is None:
        backend = resolve_backend(None)
    return backend.name


def grouped_bfs_levels(
    graph: IndexedGraph,
    sources: Iterable[int],
    scratch=None,
    backend: Optional[KernelBackend] = None,
) -> List[array]:
    """Grouped distance rows through the active (or given) lane.

    Backend-dispatching convenience over
    :meth:`KernelBackend.grouped_bfs_levels`; the rows are byte-identical
    whichever lane runs.  When ``scratch`` belongs to a different lane it
    is ignored (each lane builds its own).
    """
    if backend is None:
        backend = resolve_backend(None)
    return backend.grouped_bfs_levels(graph, list(sources), scratch)


def grouped_bfs_parents(
    graph: IndexedGraph,
    sources: Iterable[int],
    scratch=None,
    backend: Optional[KernelBackend] = None,
) -> List[array]:
    """Grouped parent rows through the active (or given) lane."""
    if backend is None:
        backend = resolve_backend(None)
    return backend.grouped_bfs_parents(graph, list(sources), scratch)
