"""The vectorized numpy kernel lane: CSR BFS as batched array operations.

This module is only imported when the ``"numpy"`` lane is resolved (see
:mod:`repro.kernels.backend`); importing it without numpy installed
raises ``ImportError``, which the registry converts into a typed
:class:`~repro.exceptions.MissingDependencyError`.  Nothing in the core
library imports it unconditionally, so ``import repro`` stays
dependency-free.

Storage adoption
----------------
:class:`NumpyScratch` adopts the graph's canonical CSR buffers through
``np.frombuffer`` -- zero-copy over whatever buffer-protocol storage the
graph holds: ``array('l')`` (fresh build), ``array('q')`` (unpickled) or
``memoryview`` casts over a shared-memory segment (the zero-copy worker
transport of :mod:`repro.kernels.shm`).  The lane therefore runs on the
exact bytes the shm transport ships, with no per-worker conversion pass.

Byte-identity contract
----------------------
Every row leaves this module as ``array('i')`` built from the int32
result buffer, so the engine, the oracle, the differential suites and
the golden fixtures see rows *byte-identical* to the array lane:

* distance rows are trivially order-independent;
* parent rows reproduce the discovery-order tie-breaks of
  :func:`repro.kernels.bfs.bfs_parents_row` exactly.  Per level, the
  reference kernel scans the frontier in discovery order and each CSR
  row ascending, first writer wins.  The vectorized form gathers the
  same (parent, child) pairs in the same flat order and assigns them
  *reversed* -- numpy fancy assignment keeps the last write, so the
  first claim in traversal order survives -- and orders the next
  frontier by first-occurrence position, which is exactly discovery
  order.

Grouped traversal runs all sources as **one batched operation** over
``uint64`` bitset frontiers: each vertex carries one bit per source,
frontier expansion OR-merges the masks of every parent edge in a single
sort + ``bitwise_or.reduceat`` sweep, and newly reached (vertex, source)
pairs are peeled per 64-source word.  Distance semantics are identical
to per-source BFS; grouped *parent* rows route through the per-source
vectorized kernel instead, because parent tie-breaks are defined by
per-source discovery order, which a shared bitset frontier does not
carry.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence

import numpy as np

from repro.graphs.indexed import IndexedGraph
from repro.kernels.backend import KernelBackend

#: dtype by buffer itemsize: every CSR storage this library produces is a
#: native little-endian signed integer buffer of one of these widths.
_DTYPES = {1: np.int8, 2: np.int16, 4: np.int32, 8: np.int64}


def _adopt(buf) -> "np.ndarray":
    """Zero-copy ``np.frombuffer`` view over any CSR integer storage."""
    view = memoryview(buf)
    try:
        dtype = _DTYPES[view.itemsize]
    except KeyError:  # pragma: no cover - no such storage exists here
        raise TypeError(f"unsupported CSR buffer itemsize {view.itemsize}") from None
    return np.frombuffer(view, dtype=dtype)


class NumpyScratch:
    """Per-graph state of the numpy lane: adopted CSR views + row template.

    Adoption happens once per graph (the oracle keeps the scratch for the
    context's lifetime); the views alias the graph's own bytes, so the
    scratch adds O(n) for the template and O(1) for the CSR.
    """

    __slots__ = ("n", "indptr", "indices", "_template")

    def __init__(self, graph: IndexedGraph) -> None:
        self.n = graph.n
        self.indptr = _adopt(graph.indptr).astype(np.int64, copy=False)
        self.indices = _adopt(graph.indices).astype(np.int64, copy=False)
        self._template = np.full(graph.n, -1, dtype=np.int32)

    def new_row(self) -> "np.ndarray":
        """Return a fresh int32 row of ``n`` entries, all ``-1``."""
        return self._template.copy()


def _to_row(values: "np.ndarray") -> array:
    """Convert an int32 result buffer to the canonical ``array('i')`` row."""
    row = array("i")
    row.frombytes(values.tobytes())
    return row


def _expand(indptr, indices, frontier):
    """Gather the neighbour lists of ``frontier`` in traversal order.

    Returns ``(parents, neighbours)``: for each frontier vertex in order,
    its CSR row (ascending), flattened -- the exact edge order the
    reference kernel scans.  Both arrays are empty when the frontier has
    no edges.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    # flat CSR positions: arange over the concatenation, rebased per row
    offsets = np.repeat(
        starts - np.concatenate(([np.int64(0)], np.cumsum(counts)[:-1])), counts
    )
    flat = np.arange(total, dtype=np.int64) + offsets
    return np.repeat(frontier, counts), indices[flat]


class NumpyBackend(KernelBackend):
    """The vectorized lane: frontier expansion as batched array operations."""

    name = "numpy"

    def scratch(self, graph: IndexedGraph) -> NumpyScratch:
        """Return (building) the adopted-CSR scratch for ``graph``."""
        return NumpyScratch(graph)

    def _scratch(self, graph: IndexedGraph, scratch) -> NumpyScratch:
        if isinstance(scratch, NumpyScratch) and scratch.n == graph.n:
            return scratch
        return NumpyScratch(graph)

    def bfs_levels_row(self, graph: IndexedGraph, source: int, scratch=None) -> array:
        """Vectorized single-source distance row (``-1`` = unreachable)."""
        scratch = self._scratch(graph, scratch)
        indptr, indices = scratch.indptr, scratch.indices
        dist = scratch.new_row()
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            _, neighbours = _expand(indptr, indices, frontier)
            if neighbours.size == 0:
                break
            fresh = neighbours[dist[neighbours] < 0]
            if fresh.size == 0:
                break
            frontier = np.unique(fresh)  # distance rows are order-free
            dist[frontier] = level
        return _to_row(dist)

    def bfs_parents_row(self, graph: IndexedGraph, source: int, scratch=None) -> array:
        """Vectorized parent row with exact discovery-order tie-breaks."""
        scratch = self._scratch(graph, scratch)
        indptr, indices = scratch.indptr, scratch.indices
        parents = scratch.new_row()
        parents[source] = source
        frontier = np.array([source], dtype=np.int64)
        while frontier.size:
            claimants, neighbours = _expand(indptr, indices, frontier)
            if neighbours.size == 0:
                break
            undiscovered = parents[neighbours] < 0
            children = neighbours[undiscovered]
            if children.size == 0:
                break
            claimants = claimants[undiscovered]
            # reversed write: numpy keeps the last assignment per index,
            # so the FIRST claimant in traversal order wins -- the exact
            # tie-break of the reference kernel
            parents[children[::-1]] = claimants[::-1]
            # next frontier in discovery order = first-occurrence order
            _, first = np.unique(children, return_index=True)
            frontier = children[np.sort(first)]
        return _to_row(parents)

    def grouped_bfs_levels(
        self, graph: IndexedGraph, sources: Sequence[int], scratch=None
    ) -> List[array]:
        """All sources as one batched traversal over uint64 bitset frontiers.

        Each vertex carries ``ceil(k / 64)`` uint64 words -- one bit per
        source.  A level expands every active vertex once (instead of
        once per source), OR-merging source masks edge-wise with a sort +
        ``bitwise_or.reduceat`` sweep; newly reached pairs are peeled per
        word into the per-source distance rows.  Values match per-source
        :meth:`bfs_levels_row` exactly.
        """
        sources = list(sources)
        if not sources:
            return []
        scratch = self._scratch(graph, scratch)
        indptr, indices = scratch.indptr, scratch.indices
        n, k = scratch.n, len(sources)
        words = (k + 63) >> 6
        src = np.array(sources, dtype=np.int64)
        word_of = np.arange(k, dtype=np.int64) >> 6
        mask_of = (np.uint64(1) << (np.arange(k, dtype=np.uint64) & np.uint64(63)))

        frontier_bits = np.zeros((n, words), dtype=np.uint64)
        # duplicate sources must OR, not overwrite -> ufunc.at (k writes)
        np.bitwise_or.at(frontier_bits, (src, word_of), mask_of)
        visited = frontier_bits.copy()
        dist = np.full((k, n), -1, dtype=np.int32)
        dist[np.arange(k), src] = 0

        level = 0
        while True:
            active = np.nonzero(frontier_bits.any(axis=1))[0]
            if active.size == 0:
                break
            level += 1
            parents_, neighbours = _expand(indptr, indices, active)
            if neighbours.size == 0:
                break
            # OR-merge the parent masks per distinct neighbour: sort the
            # edge list by neighbour, reduce each run in one C sweep
            order = np.argsort(neighbours, kind="stable")
            grouped = neighbours[order]
            bounds = np.nonzero(
                np.concatenate(([True], grouped[1:] != grouped[:-1]))
            )[0]
            targets = grouped[bounds]
            merged = np.bitwise_or.reduceat(
                frontier_bits[parents_[order]], bounds, axis=0
            )
            nxt = np.zeros_like(frontier_bits)
            nxt[targets] = merged
            nxt &= ~visited
            reached = np.nonzero(nxt.any(axis=1))[0]
            if reached.size == 0:
                break
            visited[reached] |= nxt[reached]
            # peel the reached (vertex, source) pairs per 64-source word
            for w in range(words):
                column = nxt[reached, w]
                hit = np.nonzero(column)[0]
                if hit.size == 0:
                    continue
                lo, hi = w << 6, min(k, (w + 1) << 6)
                for j in range(lo, hi):
                    bit = np.uint64(1) << np.uint64(j & 63)
                    rows = reached[hit[(column[hit] & bit) != 0]]
                    if rows.size:
                        dist[j, rows] = level
            frontier_bits = nxt
        return [_to_row(dist[j]) for j in range(k)]

    def grouped_bfs_parents(
        self, graph: IndexedGraph, sources: Sequence[int], scratch=None
    ) -> List[array]:
        """One parent row per source through the vectorized per-source kernel.

        Parent tie-breaks are defined by per-source discovery order,
        which the shared bitset frontier of the grouped distance kernel
        does not carry -- so parent batches share the adopted CSR views
        but traverse per source, preserving byte-identity.
        """
        scratch = self._scratch(graph, scratch)
        return [
            self.bfs_parents_row(graph, source, scratch) for source in sources
        ]


def bitset_frontier_words(k: int) -> int:
    """Return how many uint64 words a ``k``-source grouped frontier uses."""
    return (max(0, k) + 63) >> 6
