"""``repro.kernels``: batched BFS kernels, the distance oracle, zero-copy transport.

The kernel layer sits between the graph substrate and the engine.  It
owns the three mechanisms that make heavy multi-query traffic cheap:

* :mod:`repro.kernels.bfs` -- level-synchronous single- and multi-source
  BFS kernels over :class:`~repro.graphs.indexed.IndexedGraph` CSR rows,
  producing flat ``array('i')`` distance/parent rows from reusable
  scratch buffers;
* :mod:`repro.kernels.oracle` -- :class:`DistanceOracle`, the
  cross-query LRU of those rows attached to every
  :class:`~repro.engine.cache.SchemaContext`, with component-granular
  invalidation wired into ``apply_delta``;
* :mod:`repro.kernels.shm` -- the shared-memory CSR transport the
  parallel runtime uses to hand schemas to pool workers without
  per-dispatch pickling.

See ``docs/performance.md`` for the design rationale and the measured
numbers.
"""

from repro.kernels.bfs import (
    KernelScratch,
    bfs_levels_row,
    bfs_parents_row,
    grouped_bfs_levels,
    grouped_bfs_parents,
    levels_to_dict,
)
from repro.kernels.oracle import DistanceOracle, OracleStats
from repro.kernels.shm import (
    attach_segment,
    create_segment,
    shared_memory_available,
)

__all__ = [
    "KernelScratch",
    "bfs_levels_row",
    "bfs_parents_row",
    "grouped_bfs_levels",
    "grouped_bfs_parents",
    "levels_to_dict",
    "DistanceOracle",
    "OracleStats",
    "attach_segment",
    "create_segment",
    "shared_memory_available",
]
