"""``repro.kernels``: pluggable BFS kernel lanes, the distance oracle, zero-copy transport.

The kernel layer sits between the graph substrate and the engine.  It
owns the mechanisms that make heavy multi-query traffic cheap:

* :mod:`repro.kernels.backend` -- the **kernel-backend registry**: the
  zero-dependency ``array('i')`` lane and the optional vectorized numpy
  lane (:mod:`repro.kernels.np_lane`) behind one
  :class:`KernelBackend` contract, selected via ``REPRO_KERNEL_BACKEND``
  or ``ServiceConfig(kernel_backend=...)`` and pinned byte-identical by
  the differential suites;
* :mod:`repro.kernels.bfs` -- the reference level-synchronous single-
  and multi-source BFS kernels over
  :class:`~repro.graphs.indexed.IndexedGraph` CSR rows, producing flat
  ``array('i')`` distance/parent rows from reusable scratch buffers;
* :mod:`repro.kernels.oracle` -- :class:`DistanceOracle`, the
  cross-query LRU of those rows attached to every
  :class:`~repro.engine.cache.SchemaContext`, with component-granular
  invalidation wired into ``apply_delta`` and an optional byte budget
  under which it evicts instead of growing;
* :mod:`repro.kernels.shm` -- the shared-memory CSR transport the
  parallel runtime uses to hand schemas to pool workers without
  per-dispatch pickling (the numpy lane adopts the same bytes through
  ``np.frombuffer``).

See ``docs/backends.md`` for lane selection and the buffer layout
contract, and ``docs/performance.md`` for the measured numbers.
"""

from repro.kernels.backend import (
    ArrayBackend,
    KernelBackend,
    available_backends,
    backend_name,
    numpy_available,
    resolve_backend,
)
from repro.kernels.bfs import (
    KernelScratch,
    bfs_levels_row,
    bfs_parents_row,
    grouped_bfs_levels,
    grouped_bfs_parents,
    levels_to_dict,
)
from repro.kernels.oracle import DistanceOracle, OracleStats
from repro.kernels.shm import (
    attach_segment,
    create_segment,
    shared_memory_available,
)

__all__ = [
    "ArrayBackend",
    "KernelBackend",
    "KernelScratch",
    "available_backends",
    "backend_name",
    "bfs_levels_row",
    "bfs_parents_row",
    "grouped_bfs_levels",
    "grouped_bfs_parents",
    "levels_to_dict",
    "numpy_available",
    "resolve_backend",
    "DistanceOracle",
    "OracleStats",
    "attach_segment",
    "create_segment",
    "shared_memory_available",
]
