"""The cross-query distance oracle: BFS rows cached across queries and edits.

A schema serves streams of queries whose terminal sets overlap heavily;
every one of them used to re-run single-source BFS from each terminal.
:class:`DistanceOracle` ends that: it is a per-schema-context LRU of
distance and parent rows (flat ``array('i')``, produced by the kernels in
:mod:`repro.kernels.bfs`) keyed by source id.  Because a
:class:`~repro.engine.cache.SchemaContext` snapshots one immutable
structure per ``mutation_version``, a row cached here can never be stale
within its context -- the effective cache key is ``(source,
mutation_version)``.

Across versions the oracle is *inherited* rather than dropped:
:meth:`~repro.engine.cache.SchemaContext.apply_delta` calls
:meth:`DistanceOracle.inherit` with the edited edge set, and only the
rows whose source lies in a touched connected component are invalidated.
The granularity argument is the same separator-local one PR 4's
:class:`~repro.dynamic.blocks.BlockClassifier` rests on: an edge edit
lives inside one biconnected block, distances from a source only involve
the source's connected component, and the touched block's component is
exactly the set of sources whose rows the edit can change.  Every row in
any other component survives verbatim (the edit neither added nor removed
anything reachable from it).

Counters (``hits`` / ``misses`` / ``evictions`` / ``invalidated``) are
accumulated on a shared :class:`OracleStats` so
``InterpretationEngine.cache_stats()["distance_oracle"]`` reports the
whole engine's oracle behaviour, mirroring the ``rebind_fallbacks``
pattern of :class:`~repro.engine.cache.SchemaCache`.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from typing import Iterable, List, Optional, Set

from repro.graphs.indexed import IndexedGraph
from repro.kernels.backend import KernelBackend, resolve_backend


class OracleStats:
    """Shared mutable counters for every oracle of one engine cache.

    One instance travels with a :class:`~repro.engine.cache.SchemaCache`
    and is handed to each context's oracle, so the counters survive
    context eviction and ``apply_delta`` re-derivation -- exactly like
    the cache-level ``rebind_fallbacks`` counter.
    """

    __slots__ = ("hits", "misses", "evictions", "invalidated")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0

    def as_dict(self) -> dict:
        """Return the counters as a plain JSON-friendly dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
        }

    @property
    def hit_rate(self) -> Optional[float]:
        """Hits over lookups (``None`` before the first lookup)."""
        lookups = self.hits + self.misses
        if lookups == 0:
            return None
        return self.hits / lookups


def _row_bytes(row: Optional[array]) -> int:
    """Bytes held by one cached row (0 for an unmaterialised slot)."""
    if row is None:
        return 0
    return len(row) * row.itemsize


def _entry_bytes(entry: List[Optional[array]]) -> int:
    """Bytes held by one ``[levels, parents]`` source entry."""
    return _row_bytes(entry[0]) + _row_bytes(entry[1])


class DistanceOracle:
    """LRU of per-source BFS distance/parent rows on one immutable graph.

    Parameters
    ----------
    indexed:
        The CSR/bitset backend the rows are computed on.
    stats:
        A shared :class:`OracleStats`; a private one is created when the
        oracle is used standalone.
    maxsize:
        Maximum number of *sources* kept (each source holds its distance
        row and, when requested, its parent row).
    backend:
        The :class:`~repro.kernels.backend.KernelBackend` lane producing
        the rows; ``None`` resolves the process default
        (``REPRO_KERNEL_BACKEND`` or the ``array`` lane).  Rows are
        byte-identical whichever lane runs.
    memory_budget_bytes:
        Optional hard bound on the bytes held by cached rows.  Each
        materialised row costs ``4 * n`` bytes; when an insert pushes
        :meth:`bytes_held` past the budget, least-recently-used sources
        are evicted (counted in ``stats.evictions``) until the oracle
        fits again -- the most recent source always survives, so a
        budget smaller than one row degrades to compute-every-time
        instead of failing.

    Examples
    --------
    >>> from repro.graphs.indexed import IndexedGraph
    >>> g = IndexedGraph(3, edges=[(0, 1), (1, 2)])
    >>> oracle = DistanceOracle(g)
    >>> list(oracle.levels(0))
    [0, 1, 2]
    >>> oracle.stats.hits, oracle.stats.misses
    (0, 1)
    """

    __slots__ = (
        "indexed",
        "stats",
        "maxsize",
        "backend",
        "memory_budget_bytes",
        "scratch",
        "_rows",
        "_bytes",
        "_components",
    )

    def __init__(
        self,
        indexed: IndexedGraph,
        stats: Optional[OracleStats] = None,
        maxsize: int = 1024,
        backend: Optional[KernelBackend] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        if memory_budget_bytes is not None and memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be positive (or None)")
        self.indexed = indexed
        self.stats = stats if stats is not None else OracleStats()
        self.maxsize = maxsize
        self.backend = backend if backend is not None else resolve_backend(None)
        self.memory_budget_bytes = memory_budget_bytes
        self.scratch = self.backend.scratch(indexed)
        # source id -> [levels row | None, parents row | None]
        self._rows: "OrderedDict[int, List[Optional[array]]]" = OrderedDict()
        self._bytes = 0
        self._components: Optional[array] = None

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def levels(self, source: int) -> array:
        """Return the cached BFS distance row from ``source`` (do not mutate)."""
        entry = self._entry(source)
        if entry[0] is None:
            # a source entry may exist with only the other row kind
            # materialised; count hit/miss by the BFS actually saved
            self.stats.misses += 1
            entry[0] = self.backend.bfs_levels_row(self.indexed, source, self.scratch)
            self._bytes += _row_bytes(entry[0])
            self._enforce_budget()
        else:
            self.stats.hits += 1
        return entry[0]

    def parents(self, source: int) -> array:
        """Return the cached BFS parent row from ``source`` (do not mutate).

        Parent rows carry the exact discovery-order semantics of
        :meth:`~repro.graphs.indexed.IndexedGraph.bfs_parents`, so a
        solver switching from the raw method to the oracle returns
        byte-identical trees.
        """
        entry = self._entry(source)
        if entry[1] is None:
            self.stats.misses += 1
            entry[1] = self.backend.bfs_parents_row(self.indexed, source, self.scratch)
            self._bytes += _row_bytes(entry[1])
            self._enforce_budget()
        else:
            self.stats.hits += 1
        return entry[1]

    def ensure(self, sources: Iterable[int], parents: bool = False) -> None:
        """Grouped prefill: materialise rows for every source in one batch.

        The batch engine calls this with the deduplicated union of a
        batch's terminal sources, so one oracle fill serves every query
        that shares a terminal.  Missing rows are produced by the active
        lane's *grouped* kernel -- on the numpy lane that is one batched
        multi-source traversal, not a per-source loop.  Unknown /
        out-of-range ids are ignored (the solvers raise their own typed
        errors later).
        """
        n = self.indexed.n
        kind = 1 if parents else 0
        missing: List[int] = []
        pending = set()
        for source in sources:
            if not (isinstance(source, int) and 0 <= source < n):
                continue
            if source in pending:
                continue
            entry = self._rows.get(source)
            if entry is not None and entry[kind] is not None:
                self._rows.move_to_end(source)
                self.stats.hits += 1
            else:
                pending.add(source)
                missing.append(source)
        if not missing:
            return
        if parents:
            produced = self.backend.grouped_bfs_parents(
                self.indexed, missing, self.scratch
            )
        else:
            produced = self.backend.grouped_bfs_levels(
                self.indexed, missing, self.scratch
            )
        for source, row in zip(missing, produced):
            self.stats.misses += 1
            entry = self._entry(source)
            if entry[kind] is None:
                entry[kind] = row
                self._bytes += _row_bytes(row)
        self._enforce_budget()

    def bytes_held(self) -> int:
        """Return the bytes currently held by cached rows (both kinds)."""
        return self._bytes

    def _entry(self, source: int) -> List[Optional[array]]:
        """Return (creating if absent) the ``[levels, parents]`` slot of a source.

        Hit/miss accounting happens in the callers per row *kind* -- an
        entry holding only the other kind's row has not saved a BFS.
        """
        rows = self._rows
        entry = rows.get(source)
        if entry is not None:
            rows.move_to_end(source)
            return entry
        entry = [None, None]
        rows[source] = entry
        while len(rows) > self.maxsize:
            self._evict_oldest()
        return entry

    def _evict_oldest(self) -> None:
        """Drop the least-recently-used source and release its bytes."""
        _, dropped = self._rows.popitem(last=False)
        self._bytes -= _entry_bytes(dropped)
        self.stats.evictions += 1

    def _enforce_budget(self) -> None:
        """Evict LRU sources until the byte budget holds (keep the newest)."""
        budget = self.memory_budget_bytes
        if budget is None:
            return
        while self._bytes > budget and len(self._rows) > 1:
            self._evict_oldest()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def component_labels(self) -> array:
        """Return (lazily computing) the component id of every vertex.

        One linear sweep labels each vertex with the smallest vertex id
        of its connected component; the labels drive the selective
        invalidation of :meth:`inherit`.
        """
        if self._components is None:
            indexed = self.indexed
            labels = array("i", [0] * indexed.n)
            rows = indexed._rows
            seen = bytearray(indexed.n)
            for start in range(indexed.n):
                if seen[start]:
                    continue
                seen[start] = 1
                labels[start] = start
                frontier = [start]
                while frontier:
                    nxt: List[int] = []
                    for current in frontier:
                        for neighbor in rows[current]:
                            if not seen[neighbor]:
                                seen[neighbor] = 1
                                labels[neighbor] = start
                                nxt.append(neighbor)
                    frontier = nxt
            self._components = labels
        return self._components

    def rows_cached(self) -> int:
        """Return how many sources currently hold a cached row."""
        return len(self._rows)

    # ------------------------------------------------------------------
    # incremental evolution
    # ------------------------------------------------------------------
    def inherit(
        self, new_indexed: IndexedGraph, touched_ids: Iterable[int]
    ) -> "DistanceOracle":
        """Return the oracle for an edge-only edited graph, keeping safe rows.

        ``touched_ids`` are the endpoints (old = new ids; the delta is
        edge-only so the vertex set and the id assignment are unchanged)
        of every added or removed edge.  A cached row survives exactly
        when its source's connected component -- in the *old* graph --
        contains no touched vertex: such a component kept its entire
        vertex and edge set, so both the distances and the
        discovery-order parents are unchanged, including the ``-1``
        entries for everything outside it.  Rows in touched components
        are dropped and counted as ``invalidated``.
        """
        successor = DistanceOracle(
            new_indexed,
            stats=self.stats,
            maxsize=self.maxsize,
            backend=self.backend,
            memory_budget_bytes=self.memory_budget_bytes,
        )
        labels = self.component_labels()
        touched_components: Set[int] = {
            labels[v] for v in touched_ids if 0 <= v < self.indexed.n
        }
        for source, entry in self._rows.items():
            if labels[source] in touched_components:
                self.stats.invalidated += 1
            else:
                successor._rows[source] = entry
                successor._bytes += _entry_bytes(entry)
        return successor

    def drop_all(self) -> None:
        """Invalidate every cached row (vertex churn re-keys all ids)."""
        self.stats.invalidated += len(self._rows)
        self._rows.clear()
        self._bytes = 0

    def stats_dict(self) -> dict:
        """Return the shared counters plus this oracle's current size."""
        data = self.stats.as_dict()
        data["rows"] = len(self._rows)
        data["bytes"] = self._bytes
        data["memory_budget_bytes"] = self.memory_budget_bytes
        data["backend"] = self.backend.name
        return data
