"""``python -m repro``: the workload-runner CLI (see :mod:`repro.runtime.cli`)."""

from repro.runtime.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
