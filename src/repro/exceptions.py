"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch any library failure with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples include adding an edge whose endpoints are missing, querying a
    vertex that is not part of the graph, or requesting an operation that is
    undefined for the given graph (e.g. a spanning tree of a disconnected
    vertex set).
    """


class BipartitenessError(GraphError):
    """Raised when a bipartite structure is required but violated.

    This covers both adding an edge between two vertices of the same side of
    a :class:`~repro.graphs.bipartite.BipartiteGraph` and handing a
    non-bipartite graph to an algorithm that only accepts bipartite input.
    """


class HypergraphError(ReproError):
    """Raised for structurally invalid hypergraph operations."""


class NotApplicableError(ReproError):
    """Raised when an algorithm's structural precondition does not hold.

    The polynomial algorithms in the paper (Algorithm 1 and Algorithm 2) are
    only correct on graphs with specific chordality properties.  When a
    caller requests strict checking and the input falls outside the class,
    this error is raised instead of silently returning a possibly suboptimal
    answer.
    """


class DisconnectedTerminalsError(ReproError):
    """Raised when the requested terminals do not lie in one component.

    A Steiner tree over a terminal set only exists when all terminals belong
    to the same connected component of the host graph.
    """


class ValidationError(ReproError):
    """Raised when a caller-supplied argument fails validation."""


class MissingDependencyError(ReproError):
    """Raised when an optional dependency is required but not installed.

    The library's core declares no dependencies (``dependencies = []`` in
    ``pyproject.toml``); features that need an optional package -- the
    numpy kernel lane, the matrix views -- import it lazily and raise this
    error with an actionable install hint instead of an opaque
    ``ImportError`` at module-import time.

    Attributes
    ----------
    dependency:
        The missing distribution name (e.g. ``"numpy"``).
    feature:
        The feature that needed it, for the error message.
    """

    def __init__(self, dependency: str, feature: str) -> None:
        self.dependency = dependency
        self.feature = feature
        super().__init__(
            f"{feature} requires the optional dependency {dependency!r}; "
            f"install it with: pip install 'repro-ausiello-dm85[{dependency}]'"
        )
