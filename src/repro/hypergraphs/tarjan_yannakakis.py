"""Maximum cardinality search on hypergraphs (Tarjan & Yannakakis, 1984).

The paper's Algorithm 1 (Theorem 3) needs an ordering of the vertices of
one side of the bipartite graph -- equivalently of the hyperedges of the
associated alpha-acyclic hypergraph -- that satisfies the two properties of
Lemma 1 (connected suffixes + a suffix running-intersection property).
Theorem 4 obtains it from the *restricted maximum cardinality search* of
Tarjan and Yannakakis and then reverses the produced ordering.

This module implements:

* :func:`mcs_edge_ordering` -- the maximum-cardinality-search ordering of
  the hyperedges ("restricted MCS"): repeatedly pick the edge containing
  the largest number of already-marked nodes, then mark its nodes;
* :func:`satisfies_running_intersection` -- check the (prefix) running
  intersection property of an edge ordering;
* :func:`running_intersection_ordering` -- an MCS ordering validated
  against the running intersection property (the classical linear-time
  alpha-acyclicity test, implemented here in straightforward quadratic
  form);
* :func:`is_alpha_acyclic_mcs` -- alpha-acyclicity via the above.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.hypergraphs.hypergraph import EdgeLabel, Hypergraph, Node


def mcs_edge_ordering(
    hypergraph: Hypergraph, start: Optional[EdgeLabel] = None
) -> List[EdgeLabel]:
    """Return a maximum-cardinality-search ordering of the hyperedges.

    Starting from ``start`` (or the lexicographically smallest label), the
    next edge is always one that shares the largest number of nodes with
    the union of the already-chosen edges; ties are broken first by larger
    edge size and then lexicographically, which keeps the output
    deterministic.  Edges sharing no node with the current union are only
    chosen when no other option remains (new connected component).
    """
    labels = hypergraph.edge_labels()
    if not labels:
        return []
    if start is None:
        start = labels[0]
    if not hypergraph.has_edge_label(start):
        raise ValueError(f"unknown start edge {start!r}")
    ordering = [start]
    chosen = {start}
    marked: Set[Node] = set(hypergraph.edge(start))
    while len(ordering) < len(labels):
        best_label = None
        best_key = None
        for label in labels:
            if label in chosen:
                continue
            members = hypergraph.edge(label)
            key = (len(members & marked), len(members), _reverse_repr(label))
            if best_key is None or key > best_key:
                best_key = key
                best_label = label
        ordering.append(best_label)
        chosen.add(best_label)
        marked |= hypergraph.edge(best_label)
    return ordering


def _reverse_repr(label: EdgeLabel) -> Tuple[int, ...]:
    """Key that makes *smaller* reprs win inside a max() comparison."""
    text = repr(label)
    return tuple(-ord(ch) for ch in text)


def satisfies_running_intersection(
    hypergraph: Hypergraph, ordering: Sequence[EdgeLabel]
) -> bool:
    """Check the (prefix) running intersection property of an edge ordering.

    The ordering ``e_1, ..., e_q`` satisfies the property when for every
    ``i >= 2`` there is a ``j < i`` with
    ``e_i ∩ (e_1 ∪ ... ∪ e_{i-1}) ⊆ e_j``.
    """
    ordering = list(ordering)
    if set(ordering) != set(hypergraph.edge_labels()) or len(ordering) != len(
        hypergraph.edge_labels()
    ):
        raise ValueError("ordering must list every hyperedge exactly once")
    union: Set[Node] = set()
    for index, label in enumerate(ordering):
        members = hypergraph.edge(label)
        if index > 0:
            intersection = members & union
            if intersection and not any(
                intersection <= hypergraph.edge(ordering[j]) for j in range(index)
            ):
                return False
            if not intersection:
                # a new connected component is acceptable; nothing to check
                pass
        union |= members
    return True


def running_intersection_ordering(
    hypergraph: Hypergraph,
) -> Optional[List[EdgeLabel]]:
    """Return an edge ordering with the running intersection property, or ``None``.

    For alpha-acyclic hypergraphs the maximum cardinality search ordering
    always works (Tarjan & Yannakakis); for cyclic ones no ordering exists,
    so ``None`` is returned after the MCS candidate fails.
    """
    ordering = mcs_edge_ordering(hypergraph)
    if not ordering:
        return []
    if satisfies_running_intersection(hypergraph, ordering):
        return ordering
    return None


def is_alpha_acyclic_mcs(hypergraph: Hypergraph) -> bool:
    """Alpha-acyclicity via maximum cardinality search + RIP validation."""
    if hypergraph.number_of_edges() == 0:
        return True
    return running_intersection_ordering(hypergraph) is not None


def reverse_running_intersection_ordering(
    hypergraph: Hypergraph,
) -> Optional[List[EdgeLabel]]:
    """Return an ordering satisfying the paper's *suffix* formulation.

    Lemma 1 / Theorem 4 use the reversed convention: for every ``i`` there
    is ``j_i > i`` with ``e_i ∩ (e_{i+1} ∪ ... ∪ e_q) ⊆ e_{j_i}``.  This is
    simply the reverse of a prefix running-intersection ordering.
    """
    ordering = running_intersection_ordering(hypergraph)
    if ordering is None:
        return None
    return list(reversed(ordering))


def satisfies_suffix_running_intersection(
    hypergraph: Hypergraph, ordering: Sequence[EdgeLabel]
) -> bool:
    """Check the suffix running-intersection property used by Lemma 1."""
    return satisfies_running_intersection(hypergraph, list(reversed(list(ordering))))
