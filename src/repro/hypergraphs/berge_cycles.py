"""Edge cycles in hypergraphs (Definition 6 of the paper).

Three kinds of cycles are defined over a sequence of ``q >= 2`` distinct
edges ``(e_1, ..., e_q)`` together with ``q`` distinct nodes
``(n_1, ..., n_q)``:

* **Berge cycle**: ``n_i in e_i ∩ e_{i+1}`` for ``1 <= i < q`` and
  ``n_q in e_q ∩ e_1``.
* **beta cycle**: a Berge cycle with ``q >= 3`` in which every ``n_i``
  belongs *only* to the two consecutive edges it links (condition (b)/(c)
  of Definition 6).
* **gamma cycle**: a beta cycle, or a length-3 Berge cycle
  ``(e_1, e_2, e_3)`` in which ``n_1 not in e_3`` and ``n_2 not in e_1``.

``H`` is Berge/beta/gamma-*acyclic* when it has no cycle of the matching
kind.  This module provides the *definitional* searches for these cycles,
used as ground truth; the efficient acyclicity tests live in
:mod:`repro.hypergraphs.acyclicity` and are cross-validated against these.
"""

from __future__ import annotations

from itertools import permutations
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.hypergraphs.hypergraph import EdgeLabel, Hypergraph, Node

CycleWitness = Tuple[List[EdgeLabel], List[Node]]


def _edge_sets(hypergraph: Hypergraph, labels: Sequence[EdgeLabel]) -> List[FrozenSet[Node]]:
    return [hypergraph.edge(label) for label in labels]


def is_berge_cycle(hypergraph: Hypergraph, labels: Sequence[EdgeLabel], nodes: Sequence[Node]) -> bool:
    """Check that ``(labels, nodes)`` forms a Berge cycle.

    ``labels`` must list ``q >= 2`` distinct edges and ``nodes`` ``q``
    distinct nodes; node ``n_i`` must lie in ``e_i ∩ e_{i+1}`` (cyclically).
    """
    q = len(labels)
    if q < 2 or len(nodes) != q:
        return False
    if len(set(labels)) != q or len(set(nodes)) != q:
        return False
    edges = _edge_sets(hypergraph, labels)
    return all(nodes[i] in edges[i] and nodes[i] in edges[(i + 1) % q] for i in range(q))


def is_beta_cycle(hypergraph: Hypergraph, labels: Sequence[EdgeLabel], nodes: Sequence[Node]) -> bool:
    """Check that ``(labels, nodes)`` forms a beta cycle (Definition 6)."""
    q = len(labels)
    if q < 3:
        return False
    if not is_berge_cycle(hypergraph, labels, nodes):
        return False
    edges = _edge_sets(hypergraph, labels)
    for i in range(q):
        allowed = {i, (i + 1) % q}
        for j in range(q):
            if j in allowed:
                continue
            if nodes[i] in edges[j]:
                return False
    return True


def is_gamma_cycle(hypergraph: Hypergraph, labels: Sequence[EdgeLabel], nodes: Sequence[Node]) -> bool:
    """Check that ``(labels, nodes)`` forms a gamma cycle (Definition 6)."""
    if is_beta_cycle(hypergraph, labels, nodes):
        return True
    if len(labels) != 3 or len(nodes) != 3:
        return False
    if not is_berge_cycle(hypergraph, labels, nodes):
        return False
    e1, e2, e3 = _edge_sets(hypergraph, labels)
    n1, n2, _n3 = nodes
    return n1 not in e3 and n2 not in e1


def find_berge_cycle(
    hypergraph: Hypergraph, max_length: Optional[int] = None
) -> Optional[CycleWitness]:
    """Return a Berge cycle ``(edge_labels, nodes)`` or ``None``.

    The search is a DFS over sequences of distinct edges; for each closed
    sequence it checks whether distinct linking nodes can be chosen (a
    bipartite-matching-free greedy works because a Berge cycle of minimum
    length never needs a clever assignment: we simply try all assignments
    for the short sequences the search produces first).
    """
    labels = hypergraph.edge_labels()
    # A Berge cycle of length 2 is two edges sharing at least two nodes.
    for i, first in enumerate(labels):
        for second in labels[i + 1:]:
            shared = hypergraph.edge(first) & hypergraph.edge(second)
            if len(shared) >= 2:
                ordered = sorted(shared, key=repr)[:2]
                return [first, second], ordered
    # Longer Berge cycles: DFS over edge sequences linked by shared nodes.
    limit = max_length if max_length is not None else len(labels)

    def _extend(sequence: List[EdgeLabel], used_nodes: List[Node]) -> Optional[CycleWitness]:
        if len(sequence) >= 3:
            closing = hypergraph.edge(sequence[-1]) & hypergraph.edge(sequence[0])
            for node in sorted(closing, key=repr):
                if node not in used_nodes:
                    return list(sequence), used_nodes + [node]
        if len(sequence) >= limit:
            return None
        for label in labels:
            if label in sequence:
                continue
            shared = hypergraph.edge(sequence[-1]) & hypergraph.edge(label)
            for node in sorted(shared, key=repr):
                if node in used_nodes:
                    continue
                result = _extend(sequence + [label], used_nodes + [node])
                if result is not None:
                    return result
        return None

    for start in labels:
        result = _extend([start], [])
        if result is not None:
            return result
    return None


def find_beta_cycle(
    hypergraph: Hypergraph, max_length: Optional[int] = None
) -> Optional[CycleWitness]:
    """Return a beta cycle ``(edge_labels, nodes)`` or ``None``.

    For a fixed cyclic edge sequence ``(e_1, ..., e_q)`` the candidate set
    for ``n_i`` is ``C_i = (e_i ∩ e_{i+1}) \\ union of the other edges``;
    the ``C_i`` are pairwise disjoint, so a beta cycle exists on that
    sequence iff every ``C_i`` is non-empty.  The search below enumerates
    edge sequences with a DFS that only extends through non-empty
    intersections.
    """
    labels = hypergraph.edge_labels()
    limit = max_length if max_length is not None else len(labels)

    def _witness(sequence: List[EdgeLabel]) -> Optional[List[Node]]:
        q = len(sequence)
        edges = _edge_sets(hypergraph, sequence)
        nodes: List[Node] = []
        for i in range(q):
            candidates = set(edges[i] & edges[(i + 1) % q])
            for j in range(q):
                if j in (i, (i + 1) % q):
                    continue
                candidates -= edges[j]
            if not candidates:
                return None
            nodes.append(sorted(candidates, key=repr)[0])
        return nodes

    def _extend(sequence: List[EdgeLabel]) -> Optional[CycleWitness]:
        if len(sequence) >= 3 and hypergraph.edge(sequence[-1]) & hypergraph.edge(sequence[0]):
            nodes = _witness(sequence)
            if nodes is not None:
                return list(sequence), nodes
        if len(sequence) >= limit:
            return None
        last = hypergraph.edge(sequence[-1])
        for label in labels:
            if label in sequence:
                continue
            if not (last & hypergraph.edge(label)):
                continue
            result = _extend(sequence + [label])
            if result is not None:
                return result
        return None

    for start in labels:
        result = _extend([start])
        if result is not None:
            return result
    return None


def find_gamma_triple(hypergraph: Hypergraph) -> Optional[CycleWitness]:
    """Return a length-3 gamma cycle that is not necessarily a beta cycle.

    Such a cycle exists on an ordered triple ``(e_1, e_2, e_3)`` iff
    ``(e_1 ∩ e_2) \\ e_3``, ``(e_2 ∩ e_3) \\ e_1`` and ``e_3 ∩ e_1`` are all
    non-empty (distinctness of the three witness nodes is then automatic).
    """
    labels = hypergraph.edge_labels()
    for a, b, c in permutations(labels, 3):
        e1, e2, e3 = hypergraph.edge(a), hypergraph.edge(b), hypergraph.edge(c)
        first = (e1 & e2) - e3
        second = (e2 & e3) - e1
        third = e3 & e1
        if first and second and third:
            n1 = sorted(first, key=repr)[0]
            n2 = sorted(second, key=repr)[0]
            n3 = sorted(third, key=repr)[0]
            return [a, b, c], [n1, n2, n3]
    return None


def find_gamma_cycle(
    hypergraph: Hypergraph, max_length: Optional[int] = None
) -> Optional[CycleWitness]:
    """Return a gamma cycle ``(edge_labels, nodes)`` or ``None``."""
    triple = find_gamma_triple(hypergraph)
    if triple is not None:
        return triple
    return find_beta_cycle(hypergraph, max_length=max_length)
