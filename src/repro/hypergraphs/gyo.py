"""The GYO (Graham / Yu-Ozsoyoglu) reduction for alpha-acyclicity.

The reduction repeatedly applies two rules:

1. delete a node that appears in at most one edge (an *ear node*);
2. delete an edge that is contained in another edge (including duplicate
   edges).

A hypergraph is alpha-acyclic exactly when the reduction erases every edge.
This is one of the three independent alpha-acyclicity tests in the library
(the others being the definitional "chordal primal graph + conformal" test
of Definition 7 and the maximum-cardinality-search test of Tarjan and
Yannakakis); the test-suite cross-validates all three.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.hypergraphs.hypergraph import Hypergraph


def gyo_reduction(hypergraph: Hypergraph) -> Tuple[Hypergraph, List[Tuple[str, object]]]:
    """Run the GYO reduction to a fixpoint.

    Returns
    -------
    (reduced, trace):
        ``reduced`` is the hypergraph left when no rule applies any more
        (its node set keeps isolated nodes, which are irrelevant for
        acyclicity), and ``trace`` is the list of applied steps, each a
        pair ``("node", n)`` or ``("edge", label)`` in application order.
        The trace doubles as an elimination certificate for acyclic inputs.
    """
    current = hypergraph.copy()
    trace: List[Tuple[str, object]] = []
    changed = True
    while changed:
        changed = False
        # Rule 2: remove edges contained in (or equal to) another edge.
        items = current.edge_items()
        removed_edge = None
        for label, members in items:
            for other_label, other_members in items:
                if label == other_label:
                    continue
                if members < other_members or (
                    members == other_members and repr(label) > repr(other_label)
                ):
                    removed_edge = label
                    break
            if removed_edge is not None:
                break
        if removed_edge is not None:
            current.remove_edge(removed_edge)
            trace.append(("edge", removed_edge))
            changed = True
            continue
        # Rule 1: remove a node that appears in at most one edge.
        for node in sorted(current.nodes(), key=repr):
            degree = current.node_degree(node)
            if degree <= 1:
                if degree == 0:
                    # isolated nodes are irrelevant; drop them silently so
                    # that the loop terminates, but do not record them as
                    # reduction steps.
                    current.remove_node(node)
                    changed = True
                    break
                current.remove_node(node)
                trace.append(("node", node))
                changed = True
                break
    return current, trace


def is_alpha_acyclic_gyo(hypergraph: Hypergraph) -> bool:
    """Return ``True`` when the GYO reduction erases every edge."""
    if hypergraph.number_of_edges() == 0:
        return True
    reduced, _trace = gyo_reduction(hypergraph)
    return reduced.number_of_edges() == 0
