"""Conformality of hypergraphs.

A hypergraph is *conformal* (Definition 7, following Berge) when every
clique of its primal graph ``G(H)`` is contained in some hyperedge;
equivalently, when every **maximal** clique of ``G(H)`` is contained in a
hyperedge.  Together with chordality of the primal graph this is the
paper's definition of alpha-acyclicity.

Two independent implementations are provided:

* :func:`is_conformal_cliques` -- the definitional test through maximal
  clique enumeration (exponential in the worst case, exact);
* :func:`is_conformal_gilmore` -- Gilmore's polynomial criterion: ``H`` is
  conformal iff for every three hyperedges ``e_1, e_2, e_3`` there is a
  hyperedge containing ``(e_1 ∩ e_2) ∪ (e_2 ∩ e_3) ∪ (e_3 ∩ e_1)``.

The property-based tests cross-validate the two on random hypergraphs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Set

from repro.graphs.cliques import maximal_cliques
from repro.hypergraphs.conversions import primal_graph
from repro.hypergraphs.hypergraph import Hypergraph, Node


def is_conformal_cliques(hypergraph: Hypergraph) -> bool:
    """Definitional conformality test via maximal cliques of the primal graph."""
    if hypergraph.number_of_edges() == 0:
        return True
    primal = primal_graph(hypergraph)
    edges = hypergraph.edges()
    for clique in maximal_cliques(primal):
        if len(clique) <= 1:
            # single vertices: covered as long as the vertex is in some edge
            # (isolated primal vertices may be isolated hypergraph nodes,
            # which do not violate conformality).
            vertex = next(iter(clique))
            in_some_edge = any(vertex in edge for edge in edges)
            covered_by_edge = in_some_edge or hypergraph.node_degree(vertex) == 0
            if not covered_by_edge:
                return False
            continue
        if not any(clique <= edge for edge in edges):
            return False
    return True


def is_conformal_gilmore(hypergraph: Hypergraph) -> bool:
    """Gilmore's cubic-time conformality criterion."""
    edges = hypergraph.edges()
    if len(edges) <= 2:
        return True
    for e1, e2, e3 in combinations(edges, 3):
        required: Set[Node] = (e1 & e2) | (e2 & e3) | (e3 & e1)
        if not required:
            continue
        if not any(required <= edge for edge in edges):
            return False
    return True


def is_conformal(hypergraph: Hypergraph, method: str = "gilmore") -> bool:
    """Return ``True`` when the hypergraph is conformal.

    Parameters
    ----------
    method:
        ``"gilmore"`` (default, polynomial) or ``"cliques"`` (definitional).
    """
    if method == "gilmore":
        return is_conformal_gilmore(hypergraph)
    if method == "cliques":
        return is_conformal_cliques(hypergraph)
    raise ValueError(f"unknown conformality method {method!r}")
