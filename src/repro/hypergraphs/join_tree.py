"""Join trees of alpha-acyclic hypergraphs.

A *join tree* of a hypergraph is a tree whose vertices are the hyperedge
labels such that, for every node ``n``, the hyperedges containing ``n``
induce a connected subtree.  A hypergraph admits a join tree iff it is
alpha-acyclic; this is the structure behind the running-intersection
ordering of Lemma 1 and behind the semijoin programs of the database
motivation (Section 1 and the conclusions of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graphs.graph import Graph
from repro.hypergraphs.hypergraph import EdgeLabel, Hypergraph
from repro.hypergraphs.tarjan_yannakakis import (
    running_intersection_ordering,
)


def build_join_tree(hypergraph: Hypergraph) -> Optional[Graph]:
    """Return a join tree (a :class:`Graph` over edge labels) or ``None``.

    ``None`` is returned when the hypergraph is not alpha-acyclic.  For a
    hypergraph with a single edge the join tree is a single isolated
    vertex; for the empty hypergraph it is the empty graph.
    """
    ordering = running_intersection_ordering(hypergraph)
    if ordering is None:
        return None
    tree = Graph(vertices=ordering)
    union_so_far = set()
    for index, label in enumerate(ordering):
        members = hypergraph.edge(label)
        if index == 0:
            union_so_far |= members
            continue
        intersection = members & union_so_far
        parent = None
        if intersection:
            for j in range(index):
                if intersection <= hypergraph.edge(ordering[j]):
                    parent = ordering[j]
                    break
        else:
            # new connected component: attach to the previous edge so the
            # result stays a tree (the connectivity condition is vacuous
            # for nodes not shared between components).
            parent = ordering[index - 1]
        if parent is None:
            return None
        tree.add_edge(label, parent)
        union_so_far |= members
    return tree


def is_join_tree(hypergraph: Hypergraph, tree: Graph) -> bool:
    """Check the join-tree property of ``tree`` for ``hypergraph``.

    The tree must span exactly the hyperedge labels and, for every
    hypergraph node, the labels of the edges containing it must induce a
    connected subtree.
    """
    from repro.graphs.spanning import is_tree
    from repro.graphs.traversal import is_connected

    labels = set(hypergraph.edge_labels())
    if tree.vertices() != labels:
        return False
    if len(labels) >= 1 and not (is_tree(tree) or len(labels) == 1):
        # a single label with no edges is an acceptable (trivial) tree
        if not (len(labels) == 1 and tree.number_of_edges() == 0):
            return False
    for node in hypergraph.nodes():
        containing = hypergraph.edges_containing(node)
        if len(containing) <= 1:
            continue
        induced = tree.subgraph(containing)
        if not is_connected(induced) or induced.number_of_vertices() != len(containing):
            return False
    return True


def join_tree_parent_map(
    hypergraph: Hypergraph,
) -> Optional[Tuple[List[EdgeLabel], Dict[EdgeLabel, Optional[EdgeLabel]]]]:
    """Return ``(ordering, parent_map)`` for a rooted join tree, or ``None``.

    The ordering is a running-intersection ordering; each label's parent is
    an earlier label containing its intersection with everything earlier
    (``None`` for the first label and for the roots of new components).
    This rooted form is what the semijoin program of
    :mod:`repro.semantic.joins` consumes.
    """
    ordering = running_intersection_ordering(hypergraph)
    if ordering is None:
        return None
    parents: Dict[EdgeLabel, Optional[EdgeLabel]] = {}
    union_so_far = set()
    for index, label in enumerate(ordering):
        members = hypergraph.edge(label)
        if index == 0:
            parents[label] = None
            union_so_far |= members
            continue
        intersection = members & union_so_far
        parent = None
        if intersection:
            for j in range(index):
                if intersection <= hypergraph.edge(ordering[j]):
                    parent = ordering[j]
                    break
        parents[label] = parent
        union_so_far |= members
    return ordering, parents
