"""Hypergraphs with named (and possibly duplicated) edges.

Definition 1 of the paper: a hypergraph ``H = (N, E)`` has a finite node
set and a *family* of non-empty node subsets as edges -- duplicates are
explicitly allowed, because the hypergraph associated with a bipartite
graph (Definition 2) has one edge per vertex of one side, and two distinct
vertices may have identical neighbourhoods.

To support duplicates every edge carries a hashable *label* (by default the
label of the bipartite-graph vertex it came from, or a generated
``"e<k>"``).  The label is what the dual hypergraph (Definition 3) uses as
its node identity.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import HypergraphError

Node = Hashable
EdgeLabel = Hashable


class Hypergraph:
    """A finite hypergraph with labelled edges.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes (nodes mentioned by edges are
        added automatically).
    edges:
        Optional iterable of edges.  Each item is either an iterable of
        nodes (an anonymous edge, labelled ``e0, e1, ...``) or a pair
        ``(label, iterable_of_nodes)``.

    Examples
    --------
    >>> h = Hypergraph(edges=[("r1", {"a", "b"}), ("r2", {"b", "c"})])
    >>> sorted(h.edge("r1"))
    ['a', 'b']
    >>> sorted(h.edges_containing("b"))
    ['r1', 'r2']
    """

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable = (),
    ) -> None:
        self._nodes: Set[Node] = set()
        self._edges: Dict[EdgeLabel, FrozenSet[Node]] = {}
        self._fresh_label = 0
        for node in nodes:
            self.add_node(node)
        for edge in edges:
            if (
                isinstance(edge, tuple)
                and len(edge) == 2
                and isinstance(edge[0], Hashable)
                and not isinstance(edge[0], (set, frozenset))
                and _looks_like_node_collection(edge[1])
            ):
                label, members = edge
                self.add_edge(members, label=label)
            else:
                self.add_edge(edge)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_dict(cls, edges: Dict[EdgeLabel, Iterable[Node]]) -> "Hypergraph":
        """Build a hypergraph from a ``label -> node iterable`` mapping."""
        hypergraph = cls()
        for label, members in edges.items():
            hypergraph.add_edge(members, label=label)
        return hypergraph

    def copy(self) -> "Hypergraph":
        """Return an independent copy."""
        clone = Hypergraph(nodes=self._nodes)
        for label, members in self._edges.items():
            clone.add_edge(members, label=label)
        return clone

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add an isolated node (idempotent)."""
        self._nodes.add(node)

    def add_edge(self, members: Iterable[Node], label: Optional[EdgeLabel] = None) -> EdgeLabel:
        """Add an edge over ``members`` and return its label.

        Edges must be non-empty (Definition 1).  Duplicate node sets are
        allowed as long as the labels differ.
        """
        member_set = frozenset(members)
        if not member_set:
            raise HypergraphError("hyperedges must be non-empty")
        if label is None:
            label = self._generate_label()
        if label in self._edges:
            raise HypergraphError(f"edge label {label!r} is already used")
        self._edges[label] = member_set
        self._nodes |= member_set
        return label

    def _generate_label(self) -> str:
        while f"e{self._fresh_label}" in self._edges:
            self._fresh_label += 1
        label = f"e{self._fresh_label}"
        self._fresh_label += 1
        return label

    def remove_edge(self, label: EdgeLabel) -> None:
        """Remove the edge with the given label (nodes are kept)."""
        if label not in self._edges:
            raise HypergraphError(f"edge {label!r} is not in the hypergraph")
        del self._edges[label]

    def remove_node(self, node: Node) -> None:
        """Remove a node from the node set and from every edge.

        Edges that become empty are removed as well (this is the behaviour
        needed by GYO-style reductions).
        """
        if node not in self._nodes:
            raise HypergraphError(f"node {node!r} is not in the hypergraph")
        self._nodes.discard(node)
        emptied = []
        for label, members in self._edges.items():
            if node in members:
                reduced = members - {node}
                if reduced:
                    self._edges[label] = reduced
                else:
                    emptied.append(label)
        for label in emptied:
            del self._edges[label]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nodes(self) -> Set[Node]:
        """Return the node set (a fresh set)."""
        return set(self._nodes)

    def edge_labels(self) -> List[EdgeLabel]:
        """Return the edge labels in deterministic (repr-sorted) order."""
        return sorted(self._edges, key=repr)

    def edge(self, label: EdgeLabel) -> FrozenSet[Node]:
        """Return the node set of the edge with the given label."""
        if label not in self._edges:
            raise HypergraphError(f"edge {label!r} is not in the hypergraph")
        return self._edges[label]

    def edges(self) -> List[FrozenSet[Node]]:
        """Return the edge family as a list of frozensets (duplicates kept)."""
        return [self._edges[label] for label in self.edge_labels()]

    def edge_items(self) -> List[Tuple[EdgeLabel, FrozenSet[Node]]]:
        """Return ``(label, members)`` pairs in deterministic order."""
        return [(label, self._edges[label]) for label in self.edge_labels()]

    def has_edge_label(self, label: EdgeLabel) -> bool:
        """Return ``True`` when an edge with this label exists."""
        return label in self._edges

    def has_node(self, node: Node) -> bool:
        """Return ``True`` when the node belongs to the hypergraph."""
        return node in self._nodes

    def edges_containing(self, node: Node) -> List[EdgeLabel]:
        """Return the labels of the edges containing ``node``."""
        return [label for label, members in self.edge_items() if node in members]

    def node_degree(self, node: Node) -> int:
        """Return the number of edges containing ``node``."""
        return len(self.edges_containing(node))

    def number_of_nodes(self) -> int:
        """Return ``|N|``."""
        return len(self._nodes)

    def number_of_edges(self) -> int:
        """Return ``|E|`` (duplicates counted)."""
        return len(self._edges)

    def total_edge_size(self) -> int:
        """Return the total size ``sum(|e| for e in E)`` (the ``m`` of TY)."""
        return sum(len(members) for members in self._edges.values())

    def isolated_nodes(self) -> Set[Node]:
        """Return the nodes that belong to no edge."""
        covered: Set[Node] = set()
        for members in self._edges.values():
            covered |= members
        return self._nodes - covered

    # ------------------------------------------------------------------
    # derived hypergraphs
    # ------------------------------------------------------------------
    def dual(self) -> "Hypergraph":
        """Return the dual hypergraph (Definition 3).

        The dual's nodes are this hypergraph's edge labels; for every node
        ``n`` of this hypergraph that belongs to at least one edge, the dual
        has an edge labelled ``n`` containing the labels of the edges that
        contain ``n``.
        """
        dual = Hypergraph(nodes=self._edges.keys())
        for node in sorted(self._nodes, key=repr):
            containing = self.edges_containing(node)
            if containing:
                dual.add_edge(containing, label=node)
        return dual

    def partial_hypergraph(self, labels: Iterable[EdgeLabel]) -> "Hypergraph":
        """Return the hypergraph consisting of the selected edges only.

        The node set is restricted to the nodes covered by those edges.
        This is the notion of "subhypergraph generated by a set of edges"
        used when relating beta-acyclicity to alpha-acyclicity of every
        partial hypergraph.
        """
        chosen = list(labels)
        partial = Hypergraph()
        for label in chosen:
            partial.add_edge(self.edge(label), label=label)
        return partial

    def induced_hypergraph(self, nodes: Iterable[Node]) -> "Hypergraph":
        """Return the hypergraph induced by a node subset.

        Every edge is intersected with the node subset; empty intersections
        are dropped.  Labels are preserved.
        """
        keep = set(nodes)
        induced = Hypergraph(nodes=keep & self._nodes)
        for label, members in self.edge_items():
            reduced = members & keep
            if reduced:
                induced.add_edge(reduced, label=label)
        return induced

    def deduplicated(self) -> "Hypergraph":
        """Return a copy in which duplicate edges (equal node sets) are merged.

        The surviving label of each group is the smallest by ``repr``.
        """
        result = Hypergraph(nodes=self._nodes)
        seen: Dict[FrozenSet[Node], EdgeLabel] = {}
        for label, members in self.edge_items():
            if members not in seen:
                seen[members] = label
                result.add_edge(members, label=label)
        return result

    def remove_contained_edges(self) -> "Hypergraph":
        """Return a copy keeping only the edges maximal under inclusion.

        This is the "reduction" of a hypergraph used by the alpha-acyclicity
        literature; alpha-acyclicity is invariant under it.
        """
        result = Hypergraph(nodes=self._nodes)
        items = self.edge_items()
        for label, members in items:
            strictly_inside_other = False
            for other_label, other_members in items:
                if label == other_label:
                    continue
                if members < other_members:
                    strictly_inside_other = True
                    break
                if members == other_members and repr(other_label) < repr(label):
                    strictly_inside_other = True
                    break
            if not strictly_inside_other:
                result.add_edge(members, label=label)
        return result

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._nodes == other._nodes and dict(self._edges) == dict(other._edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Hypergraph(|N|={self.number_of_nodes()}, |E|={self.number_of_edges()})"
        )


def _looks_like_node_collection(value) -> bool:
    """Heuristic used by the constructor to accept ``(label, members)`` pairs."""
    return isinstance(value, (set, frozenset, list, tuple, range))
