"""Conversions between bipartite graphs, hypergraphs and ordinary graphs.

Definition 2 of the paper associates two hypergraphs with a bipartite graph
``G = (V1, V2, A)``:

* ``H_1(G)``: one hyperedge per vertex of ``V1`` -- the edge is that
  vertex's neighbourhood, a subset of ``V2``;
* ``H_2(G)``: one hyperedge per vertex of ``V2`` -- the edge is that
  vertex's neighbourhood, a subset of ``V1``.

``H_1(G)`` and ``H_2(G)`` are each other's duals (Definition 3).  The
inverse construction is the *incidence graph* of a hypergraph.  Definition 7
additionally uses the *primal graph* (2-section) ``G(H)``.

Naming note: the scanned paper's superscript convention is ambiguous; this
library consistently uses "``H_i(G)`` has one edge per ``V_i`` vertex", see
``DESIGN.md`` for the reconciliation with the paper's statements.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from repro.exceptions import HypergraphError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph
from repro.hypergraphs.hypergraph import Hypergraph


def hypergraph_of_side(
    graph: BipartiteGraph, side: int, skip_isolated_edges: bool = True
) -> Hypergraph:
    """Return ``H_side(G)``: one hyperedge per vertex of ``V_side``.

    The hyperedge labelled by a ``V_side`` vertex ``w`` is ``Adj(w)``, a
    subset of the opposite side.  Vertices of the opposite side become the
    hypergraph's nodes (including isolated ones, which simply belong to no
    edge).

    Parameters
    ----------
    skip_isolated_edges:
        Degree-0 vertices of ``V_side`` would produce empty hyperedges,
        which Definition 1 forbids; they are skipped by default.  Pass
        ``False`` to raise instead, which is useful when the caller wants a
        guarantee that no information was dropped.
    """
    if side not in (1, 2):
        raise ValueError(f"side must be 1 or 2, got {side!r}")
    edge_vertices = graph.side(side)
    node_vertices = graph.side(3 - side)
    hypergraph = Hypergraph(nodes=node_vertices)
    for vertex in sorted(edge_vertices, key=repr):
        members = graph.neighbors(vertex)
        if not members:
            if skip_isolated_edges:
                continue
            raise HypergraphError(
                f"vertex {vertex!r} of V{side} is isolated and would produce "
                "an empty hyperedge"
            )
        hypergraph.add_edge(members, label=vertex)
    return hypergraph


def incidence_graph(
    hypergraph: Hypergraph,
    node_side: int = 1,
) -> BipartiteGraph:
    """Return the incidence bipartite graph of a hypergraph.

    Hypergraph nodes populate side ``node_side`` and edge labels populate
    the other side; a graph edge joins node ``n`` and edge label ``e``
    exactly when ``n`` belongs to the hyperedge ``e``.  This is the inverse
    of :func:`hypergraph_of_side` (up to isolated vertices).

    Raises
    ------
    HypergraphError
        If a node and an edge label collide (they would become the same
        graph vertex).
    """
    if node_side not in (1, 2):
        raise ValueError(f"node_side must be 1 or 2, got {node_side!r}")
    nodes = hypergraph.nodes()
    labels = set(hypergraph.edge_labels())
    collision = nodes & labels
    if collision:
        raise HypergraphError(
            "cannot build the incidence graph: node/edge label collision "
            f"on {sorted(collision, key=repr)!r}"
        )
    if node_side == 1:
        graph = BipartiteGraph(left=nodes, right=labels)
    else:
        graph = BipartiteGraph(left=labels, right=nodes)
    for label, members in hypergraph.edge_items():
        for node in members:
            graph.add_edge(node, label)
    return graph


def primal_graph(hypergraph: Hypergraph) -> Graph:
    """Return the primal graph (2-section) ``G(H)`` of Definition 7.

    The primal graph has the hypergraph's nodes as vertices and an edge
    between every pair of nodes that co-occur in some hyperedge.
    """
    graph = Graph(vertices=hypergraph.nodes())
    for members in hypergraph.edges():
        ordered = sorted(members, key=repr)
        for i, u in enumerate(ordered):
            for v in ordered[i + 1:]:
                graph.add_edge(u, v)
    return graph


def hypergraph_from_relation_schemes(
    schemes: Iterable, labels: Optional[Iterable[Hashable]] = None
) -> Hypergraph:
    """Build a hypergraph from an iterable of attribute collections.

    This is the classical "database schema as hypergraph" view: every
    relation scheme (a set of attributes) becomes a hyperedge.  ``labels``
    optionally names the relations; otherwise ``R0, R1, ...`` are used.
    """
    hypergraph = Hypergraph()
    label_list = list(labels) if labels is not None else None
    for index, scheme in enumerate(schemes):
        if label_list is not None:
            label = label_list[index]
        else:
            label = f"R{index}"
        hypergraph.add_edge(scheme, label=label)
    return hypergraph


def schema_bipartite_graph(hypergraph: Hypergraph) -> BipartiteGraph:
    """Return the schema graph: attributes on ``V1``, relation names on ``V2``.

    This is the bipartite representation of a relational schema used
    throughout Section 3 of the paper (attributes = ``V1``, relation
    schemes = ``V2``), i.e. the incidence graph with nodes on side 1.
    """
    return incidence_graph(hypergraph, node_side=1)
