"""Acyclicity degrees of hypergraphs: Berge, gamma, beta, alpha.

The four classical acyclicity notions form a strict hierarchy

    Berge-acyclic  ⊂  gamma-acyclic  ⊂  beta-acyclic  ⊂  alpha-acyclic,

and Theorem 1 of the paper identifies each of them with a chordality
property of the incidence bipartite graph.  For each notion this module
offers a *definitional* test (driven by the cycle searches of
:mod:`repro.hypergraphs.berge_cycles` or by Definition 7) and an
*efficient* test; the test-suite cross-validates the two on random
hypergraphs, which protects the rest of the library against a subtle
mistake in either implementation.

Efficient tests
---------------
* **Berge**: a hypergraph has no Berge cycle iff its incidence bipartite
  graph is a forest and no two edges share two nodes (the forest check
  subsumes this).
* **beta**: nest-point elimination.  A node is a *nest point* when the
  edges containing it form a chain under inclusion; a hypergraph is
  beta-acyclic iff repeatedly deleting nest points (dropping emptied
  edges) erases every node.
* **gamma**: beta-acyclicity plus absence of the length-3 gamma pattern of
  Definition 6, which only requires an ``O(|E|^3)`` scan.
* **alpha**: GYO reduction, or equivalently maximum cardinality search +
  running intersection (Tarjan & Yannakakis), or the definitional
  "chordal primal graph and conformal" of Definition 7.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hypergraphs.berge_cycles import (
    find_berge_cycle,
    find_beta_cycle,
    find_gamma_cycle,
    find_gamma_triple,
)
from repro.hypergraphs.conformality import is_conformal
from repro.hypergraphs.conversions import incidence_graph, primal_graph
from repro.hypergraphs.gyo import is_alpha_acyclic_gyo
from repro.hypergraphs.hypergraph import Hypergraph, Node
from repro.hypergraphs.tarjan_yannakakis import is_alpha_acyclic_mcs

DEGREES = ("berge", "gamma", "beta", "alpha", "cyclic")


# ----------------------------------------------------------------------
# Berge acyclicity
# ----------------------------------------------------------------------
def is_berge_acyclic(hypergraph: Hypergraph, method: str = "incidence") -> bool:
    """Return ``True`` when the hypergraph has no Berge cycle.

    ``method`` is ``"incidence"`` (linear: the incidence graph must be a
    forest) or ``"search"`` (definitional cycle search).
    """
    if method == "search":
        return find_berge_cycle(hypergraph) is None
    if method != "incidence":
        raise ValueError(f"unknown method {method!r}")
    from repro.graphs.cycles import is_forest

    if hypergraph.number_of_edges() == 0:
        return True
    return is_forest(_incidence(hypergraph))


def _incidence(hypergraph: Hypergraph):
    """Incidence graph with labels made collision-free."""
    nodes = hypergraph.nodes()
    labels = set(hypergraph.edge_labels())
    if nodes & labels:
        # rebuild with wrapped labels to avoid collisions
        safe = Hypergraph(nodes=nodes)
        for label, members in hypergraph.edge_items():
            safe.add_edge(members, label=("__edge__", label))
        hypergraph = safe
    return incidence_graph(hypergraph)


# ----------------------------------------------------------------------
# beta acyclicity
# ----------------------------------------------------------------------
def is_nest_point(hypergraph: Hypergraph, node: Node) -> bool:
    """Return ``True`` when the edges containing ``node`` form an inclusion chain."""
    containing = [hypergraph.edge(label) for label in hypergraph.edges_containing(node)]
    containing.sort(key=len)
    for first, second in zip(containing, containing[1:]):
        if not first <= second:
            return False
    return True


def nest_point_elimination_order(hypergraph: Hypergraph) -> Optional[List[Node]]:
    """Return a nest-point elimination order of the nodes, or ``None``.

    The order removes one nest point at a time (a greedy choice is safe:
    removing a nest point never destroys beta-acyclicity, and in a
    beta-acyclic hypergraph a nest point always exists).  ``None`` is
    returned when the process gets stuck, i.e. the hypergraph is
    beta-cyclic.
    """
    working = hypergraph.copy()
    order: List[Node] = []
    # isolated nodes can always be removed first
    while True:
        nodes = sorted(working.nodes(), key=repr)
        if not nodes:
            return order
        progress = False
        for node in nodes:
            if working.node_degree(node) == 0 or is_nest_point(working, node):
                order.append(node)
                working.remove_node(node)
                progress = True
                break
        if not progress:
            return None


def is_beta_acyclic(hypergraph: Hypergraph, method: str = "nest") -> bool:
    """Return ``True`` when the hypergraph has no beta cycle.

    ``method`` is ``"nest"`` (nest-point elimination, polynomial) or
    ``"search"`` (definitional beta-cycle search, exponential).
    """
    if method == "search":
        return find_beta_cycle(hypergraph) is None
    if method != "nest":
        raise ValueError(f"unknown method {method!r}")
    return nest_point_elimination_order(hypergraph) is not None


# ----------------------------------------------------------------------
# gamma acyclicity
# ----------------------------------------------------------------------
def is_gamma_acyclic(hypergraph: Hypergraph, method: str = "pattern") -> bool:
    """Return ``True`` when the hypergraph has no gamma cycle.

    ``method`` is ``"pattern"`` (beta-acyclicity via nest points plus the
    cubic scan for the length-3 gamma pattern) or ``"search"``
    (definitional gamma-cycle search).
    """
    if method == "search":
        return find_gamma_cycle(hypergraph) is None
    if method != "pattern":
        raise ValueError(f"unknown method {method!r}")
    if find_gamma_triple(hypergraph) is not None:
        return False
    return is_beta_acyclic(hypergraph, method="nest")


# ----------------------------------------------------------------------
# alpha acyclicity
# ----------------------------------------------------------------------
def is_alpha_acyclic(hypergraph: Hypergraph, method: str = "gyo") -> bool:
    """Return ``True`` when the hypergraph is alpha-acyclic.

    ``method``:

    * ``"gyo"`` -- GYO reduction (default);
    * ``"mcs"`` -- maximum cardinality search + running intersection;
    * ``"definition"`` -- Definition 7: chordal primal graph + conformal.
    """
    if method == "gyo":
        return is_alpha_acyclic_gyo(hypergraph)
    if method == "mcs":
        return is_alpha_acyclic_mcs(hypergraph)
    if method == "definition":
        from repro.chordality.chordal import is_chordal

        return is_chordal(primal_graph(hypergraph)) and is_conformal(
            hypergraph, method="cliques"
        )
    raise ValueError(f"unknown method {method!r}")


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------
def acyclicity_degree(hypergraph: Hypergraph) -> str:
    """Return the strongest acyclicity degree satisfied by the hypergraph.

    The result is one of ``"berge"``, ``"gamma"``, ``"beta"``, ``"alpha"``
    or ``"cyclic"`` (meaning not even alpha-acyclic).  The hierarchy is
    checked from the strongest notion downwards.
    """
    if is_berge_acyclic(hypergraph):
        return "berge"
    if is_gamma_acyclic(hypergraph):
        return "gamma"
    if is_beta_acyclic(hypergraph):
        return "beta"
    if is_alpha_acyclic(hypergraph):
        return "alpha"
    return "cyclic"


def satisfies_degree(hypergraph: Hypergraph, degree: str) -> bool:
    """Return ``True`` when the hypergraph is at least ``degree``-acyclic."""
    if degree not in DEGREES:
        raise ValueError(f"unknown acyclicity degree {degree!r}")
    if degree == "cyclic":
        return True
    checks = {
        "berge": is_berge_acyclic,
        "gamma": is_gamma_acyclic,
        "beta": is_beta_acyclic,
        "alpha": is_alpha_acyclic,
    }
    return checks[degree](hypergraph)
