"""Hypergraph substrate: hypergraphs, acyclicity degrees, join trees."""

from repro.hypergraphs.acyclicity import (
    DEGREES,
    acyclicity_degree,
    is_alpha_acyclic,
    is_berge_acyclic,
    is_beta_acyclic,
    is_gamma_acyclic,
    is_nest_point,
    nest_point_elimination_order,
    satisfies_degree,
)
from repro.hypergraphs.berge_cycles import (
    find_berge_cycle,
    find_beta_cycle,
    find_gamma_cycle,
    find_gamma_triple,
    is_berge_cycle,
    is_beta_cycle,
    is_gamma_cycle,
)
from repro.hypergraphs.conformality import (
    is_conformal,
    is_conformal_cliques,
    is_conformal_gilmore,
)
from repro.hypergraphs.conversions import (
    hypergraph_from_relation_schemes,
    hypergraph_of_side,
    incidence_graph,
    primal_graph,
    schema_bipartite_graph,
)
from repro.hypergraphs.gyo import gyo_reduction, is_alpha_acyclic_gyo
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.join_tree import (
    build_join_tree,
    is_join_tree,
    join_tree_parent_map,
)
from repro.hypergraphs.tarjan_yannakakis import (
    is_alpha_acyclic_mcs,
    mcs_edge_ordering,
    reverse_running_intersection_ordering,
    running_intersection_ordering,
    satisfies_running_intersection,
    satisfies_suffix_running_intersection,
)

__all__ = [
    "DEGREES",
    "Hypergraph",
    "acyclicity_degree",
    "build_join_tree",
    "find_berge_cycle",
    "find_beta_cycle",
    "find_gamma_cycle",
    "find_gamma_triple",
    "gyo_reduction",
    "hypergraph_from_relation_schemes",
    "hypergraph_of_side",
    "incidence_graph",
    "is_alpha_acyclic",
    "is_alpha_acyclic_gyo",
    "is_alpha_acyclic_mcs",
    "is_berge_acyclic",
    "is_berge_cycle",
    "is_beta_acyclic",
    "is_beta_cycle",
    "is_conformal",
    "is_conformal_cliques",
    "is_conformal_gilmore",
    "is_gamma_acyclic",
    "is_gamma_cycle",
    "is_join_tree",
    "is_nest_point",
    "join_tree_parent_map",
    "mcs_edge_ordering",
    "nest_point_elimination_order",
    "primal_graph",
    "reverse_running_intersection_ordering",
    "running_intersection_ordering",
    "satisfies_degree",
    "satisfies_running_intersection",
    "satisfies_suffix_running_intersection",
    "schema_bipartite_graph",
]
