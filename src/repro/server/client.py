"""Minimal blocking client for the repro connection server.

:class:`ReproClient` is the reference implementation of the wire
protocol from the *client* side -- a plain blocking socket speaking the
length-prefixed JSON frames of :mod:`repro.server.protocol`, used by the
test suite, the CI smoke session and the examples.  It stays deliberately
thin: requests go out with vertex labels wire-encoded
(:func:`~repro.server.codec.encode_value`), responses come back as the
raw JSON payloads the server sent -- decode result payloads into full
:class:`~repro.api.result.ConnectionResult` objects with
:func:`~repro.server.codec.decode_wire_result` when you hold the schema.

Error envelopes raise :class:`~repro.server.errors.RemoteError`, whose
``kind`` mirrors the server's typed vocabulary, so remote failures are
handled exactly like local ones.  Failures *below* the protocol raise
the same class with client-side kinds -- ``"transport"`` (connection
refused, reset, or closed mid-frame), ``"timeout"`` (the socket
deadline expired), and ``"protocol"`` (an oversized or unparsable
frame) -- and any such failure closes the socket before raising: a
connection that died mid-frame can never be reused half-synchronised,
and a caller looping over requests never hangs or leaks the
descriptor.

On connect the client negotiates the wire-format version with the
``hello`` command; an incompatible server refuses with a typed
``protocol`` envelope instead of a mid-session frame guess.  With a
:class:`RetryPolicy` the client survives transient transport failures:
idempotent commands are transparently re-sent on a fresh connection
with capped exponential backoff and seeded jitter -- ``mutate`` retries
only when the caller supplies an ``idempotency_key`` the server dedupes
per tenant (see ``docs/resilience.md``).

Examples
--------
::

    with ReproClient(port=7463) as client:
        client.create_schema("acme", graph)
        answer = client.connect("acme", ["A", "B"])
        page = client.enumerate("acme", ["A", "B"], budget=3)
        more = client.enumerate("acme", continuation=page["continuation"])
"""

from __future__ import annotations

import http.client
import itertools
import json
import random
import socket
import struct
import time
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.server.codec import encode_schema, encode_value
from repro.server.errors import RemoteError
from repro.server.protocol import MAX_FRAME_BYTES, WIRE_FORMAT_VERSION

_LENGTH = struct.Struct("!I")

#: Commands safe to re-send blindly after a transport failure: they
#: either read state or compute a deterministic pure answer.  ``mutate``
#: is retried only with a client-supplied idempotency key (the server
#: dedupes per tenant); ``create_schema``/``drop_schema`` are excluded
#: because an applied-then-lost reply would make the retry fail loudly.
IDEMPOTENT_COMMANDS = frozenset(
    {
        "ping",
        "hello",
        "list_schemas",
        "connect",
        "batch",
        "interpret",
        "enumerate",
        "stats",
        "metrics",
    }
)


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry schedule: capped exponential backoff, seeded jitter.

    Attributes
    ----------
    attempts:
        Total tries per call (the first send included).
    backoff_s / multiplier / max_backoff_s:
        Attempt ``k`` (0-based) sleeps ``backoff_s * multiplier**k``
        seconds, capped at ``max_backoff_s``, before re-sending.
    jitter:
        Fraction of the capped backoff added uniformly at random -- from
        a ``random.Random(seed)`` private to each client, never from
        ambient process state, so retry timing replays with the run.
    retry_kinds:
        The client-side error kinds worth a retry.  Only transport-level
        kinds belong here; a server-*sent* envelope (validation, quota,
        deadline, ...) means the request was judged, not lost.
    """

    attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.25
    seed: int = 0
    retry_kinds: Tuple[str, ...] = ("transport", "timeout")

    def __post_init__(self) -> None:
        """Validate the schedule parameters."""
        if self.attempts < 1:
            raise ValidationError("RetryPolicy.attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValidationError("RetryPolicy backoffs must be >= 0")
        if self.multiplier < 1.0:
            raise ValidationError("RetryPolicy.multiplier must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValidationError("RetryPolicy.jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """The sleep before re-send number ``attempt`` (0-based)."""
        base = min(
            self.backoff_s * (self.multiplier ** attempt), self.max_backoff_s
        )
        if self.jitter:
            base += base * self.jitter * rng.random()
        return base


class _ClientSideError(RemoteError):
    """A failure detected by the client itself, not a server envelope.

    Same public surface as :class:`RemoteError` (callers catch that);
    the private subclass only tells :meth:`ReproClient.call` that the
    connection is no longer synchronised and must be closed -- a
    server-*sent* error envelope (which may also carry kind
    ``"protocol"``) leaves the connection healthy and reusable.
    """


class ReproClient:
    """Blocking JSON-over-TCP client (context-manager friendly)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7463,
        timeout: float = 30.0,
        *,
        retry: Optional[RetryPolicy] = None,
        hello: bool = True,
    ) -> None:
        """Connect immediately; ``timeout`` bounds every socket operation.

        Raises :class:`RemoteError` with kind ``"transport"`` when the
        connection is refused (or the host is unreachable) and kind
        ``"timeout"`` when the connect itself exceeds ``timeout``.

        Unless ``hello=False``, the first command on every (re)connected
        socket is ``hello`` declaring
        :data:`~repro.server.protocol.WIRE_FORMAT_VERSION`; a server
        speaking another generation refuses with a typed ``protocol``
        envelope.  With a :class:`RetryPolicy`, idempotent commands that
        fail with a retryable client-side kind are re-sent on a fresh
        connection per the policy's schedule.
        """
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry
        self._hello = hello
        self._rng = random.Random(retry.seed if retry is not None else 0)
        self._sock: Optional[socket.socket] = None
        self._seq = itertools.count(1)
        self._connect()

    def _connect(self) -> None:
        """(Re)establish the socket and run the version handshake."""
        host, port, timeout = self._host, self._port, self._timeout
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except socket.timeout as error:
            raise _ClientSideError(
                "timeout",
                f"connecting to {host}:{port} timed out after {timeout}s",
            ) from error
        except OSError as error:
            raise _ClientSideError(
                "transport", f"cannot connect to {host}:{port}: {error}"
            ) from error
        if self._hello:
            try:
                self._call_once(
                    "hello",
                    {
                        "version": WIRE_FORMAT_VERSION,
                        "client": f"repro-client/{WIRE_FORMAT_VERSION}",
                    },
                )
            except RemoteError:
                self.close()
                raise

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ReproClient":
        """Return ``self`` for ``with`` blocks."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the socket on scope exit."""
        self.close()

    def _recv_exactly(self, count: int) -> bytes:
        sock = self._sock
        if sock is None:
            raise _ClientSideError("transport", "connection is closed")
        chunks = []
        while count:
            chunk = sock.recv(count)
            if not chunk:
                raise _ClientSideError(
                    "transport", "server closed the connection mid-frame"
                )
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def _read_frame(self) -> dict:
        (length,) = _LENGTH.unpack(self._recv_exactly(_LENGTH.size))
        if length > MAX_FRAME_BYTES:
            # refuse before allocating: a corrupt or hostile length prefix
            # must not turn into a multi-gigabyte buffer
            raise _ClientSideError(
                "protocol",
                f"server declared a {length}-byte frame, over "
                f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})",
            )
        raw = self._recv_exactly(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _ClientSideError(
                "protocol", f"server sent an unparsable frame: {error}"
            ) from error

    def call(self, command: str, **params) -> dict:
        """Send one command and return its result payload.

        ``None``-valued parameters are omitted (server defaults apply).
        Interleaved ``stream`` frames are collected into the returned
        payload under ``"results"``.  Error envelopes raise
        :class:`RemoteError`; so do transport-level failures (kinds
        ``"transport"`` / ``"timeout"`` / ``"protocol"``), which also
        close the socket -- after a half-read frame the stream can
        never be resynchronised.

        With a :class:`RetryPolicy` installed and the command idempotent
        (or ``mutate`` carrying an ``idempotency_key``), retryable
        client-side failures trigger reconnect-and-resend per the
        policy's backoff schedule instead of raising immediately.
        """
        policy = self._retry
        retryable = policy is not None and (
            command in IDEMPOTENT_COMMANDS
            or (command == "mutate" and params.get("idempotency_key") is not None)
        )
        attempt = 0
        while True:
            try:
                if self._sock is None or self._sock.fileno() < 0:
                    self._connect()
                return self._call_once(command, params)
            except _ClientSideError as error:
                if (
                    not retryable
                    or error.kind not in policy.retry_kinds
                    or attempt + 1 >= policy.attempts
                ):
                    raise
                time.sleep(policy.delay(attempt, self._rng))
                attempt += 1
                self.close()

    def _call_once(self, command: str, params: dict) -> dict:
        """One send/receive exchange on the current socket (no retry)."""
        message_id = next(self._seq)
        payload = json.dumps(
            {
                "id": message_id,
                "cmd": command,
                "params": {
                    key: value
                    for key, value in params.items()
                    if value is not None
                },
            },
            separators=(",", ":"),
        ).encode("utf-8")
        if len(payload) > MAX_FRAME_BYTES:
            raise _ClientSideError(
                "protocol",
                f"request frame of {len(payload)} bytes exceeds "
                f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})",
            )
        try:
            self._sock.sendall(_LENGTH.pack(len(payload)) + payload)
            streamed: List[dict] = []
            while True:
                frame = self._read_frame()
                if frame.get("id") != message_id:
                    raise _ClientSideError(
                        "protocol",
                        f"response id {frame.get('id')!r} does not match "
                        f"request {message_id}",
                    )
                if "stream" in frame:
                    streamed.append(frame["stream"])
                    continue
                if frame.get("ok"):
                    result = frame.get("result") or {}
                    if streamed:
                        result = {**result, "results": streamed}
                    return result
                error = frame.get("error") or {}
                raise RemoteError(
                    error.get("kind", "internal"),
                    error.get("message", "unknown server error"),
                    error.get("type", ""),
                )
        except socket.timeout as error:
            self.close()
            raise _ClientSideError(
                "timeout",
                f"no complete response to {command!r} within "
                f"{self._timeout}s",
            ) from error
        except _ClientSideError:
            self.close()
            raise
        except OSError as error:
            self.close()
            raise _ClientSideError(
                "transport", f"socket failed during {command!r}: {error}"
            ) from error

    # ------------------------------------------------------------------
    # convenience wrappers
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        """Liveness check."""
        return self.call("ping")

    def create_schema(
        self,
        tenant: str,
        schema,
        *,
        config: Optional[dict] = None,
        limits: Optional[dict] = None,
        token: Optional[str] = None,
        exist_ok: bool = False,
    ) -> dict:
        """Register a tenant; ``schema`` is a BipartiteGraph or a wire dict."""
        payload = (
            encode_schema(schema)
            if isinstance(schema, BipartiteGraph)
            else schema
        )
        return self.call(
            "create_schema",
            tenant=tenant,
            schema=payload,
            config=config,
            limits=limits,
            token=token,
            exist_ok=exist_ok or None,
        )

    def drop_schema(self, tenant: str, *, token: Optional[str] = None) -> dict:
        """Remove a tenant."""
        return self.call("drop_schema", tenant=tenant, token=token)

    def list_schemas(self) -> List[str]:
        """Return the registered tenant names."""
        return self.call("list_schemas")["tenants"]

    def connect(
        self,
        tenant: str,
        terminals: Iterable[Any],
        *,
        token: Optional[str] = None,
        **kwargs,
    ) -> dict:
        """Answer one request; returns the wire result payload."""
        return self.call(
            "connect",
            tenant=tenant,
            token=token,
            terminals=[encode_value(t) for t in terminals],
            **kwargs,
        )["result"]

    def batch(
        self,
        tenant: str,
        requests: Iterable[dict],
        *,
        token: Optional[str] = None,
        **kwargs,
    ) -> List[dict]:
        """Answer many requests; each entry is ``{"terminals": [...], ...}``."""
        encoded = []
        for entry in requests:
            record = dict(entry)
            record["terminals"] = [
                encode_value(t) for t in record.get("terminals", ())
            ]
            encoded.append(record)
        return self.call(
            "batch", tenant=tenant, token=token, requests=encoded, **kwargs
        )["results"]

    def interpret(
        self,
        tenant: str,
        queries: Iterable[Iterable[Any]],
        *,
        token: Optional[str] = None,
        **kwargs,
    ) -> List[dict]:
        """Batch over bare terminal lists."""
        return self.call(
            "interpret",
            tenant=tenant,
            token=token,
            queries=[[encode_value(t) for t in query] for query in queries],
            **kwargs,
        )["results"]

    def mutate(
        self,
        tenant: str,
        edits: List[dict],
        *,
        token: Optional[str] = None,
        idempotency_key: Optional[str] = None,
    ) -> dict:
        """Apply one transactional schema evolution.

        Pass an ``idempotency_key`` to make the call safely retryable:
        the server remembers the response per tenant and key, so a retry
        after a lost reply replays the original response instead of
        applying the transaction twice.
        """
        encoded = []
        for edit in edits:
            record = dict(edit)
            for key in ("vertex", "u", "v"):
                if key in record:
                    record[key] = encode_value(record[key])
            encoded.append(record)
        return self.call(
            "mutate",
            tenant=tenant,
            token=token,
            edits=encoded,
            idempotency_key=idempotency_key,
        )

    def enumerate(
        self,
        tenant: str,
        terminals: Optional[Iterable[Any]] = None,
        *,
        budget: Optional[int] = None,
        max_extra: Optional[int] = None,
        continuation: Optional[str] = None,
        token: Optional[str] = None,
    ) -> dict:
        """Pull one page of ranked connections (new stream or resume).

        The returned payload carries the page under ``"results"`` plus
        the footer fields (``paused`` / ``exhausted`` /
        ``continuation``).
        """
        return self.call(
            "enumerate",
            tenant=tenant,
            token=token,
            terminals=(
                None
                if terminals is None
                else [encode_value(t) for t in terminals]
            ),
            budget=budget,
            max_extra=max_extra,
            continuation=continuation,
        )

    def stats(self) -> dict:
        """Server/registry observability counters."""
        return self.call("stats")

    def metrics_text(self) -> str:
        """The Prometheus exposition text, over RPC."""
        return self.call("metrics")["text"]


def fetch_metrics(
    port: int, host: str = "127.0.0.1", path: str = "/metrics", timeout: float = 10.0
) -> str:
    """Fetch the server's metrics endpoint over plain HTTP.

    Returns the exposition text; raises :class:`RemoteError` on any
    non-200 status.
    """
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        body = response.read().decode("utf-8")
        if response.status != 200:
            raise RemoteError(
                "http", f"GET {path} returned {response.status}: {body[:200]}"
            )
        return body
    finally:
        connection.close()


__all__ = ["ReproClient", "RetryPolicy", "IDEMPOTENT_COMMANDS", "fetch_metrics"]
