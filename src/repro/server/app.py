"""`ReproServer`: the asyncio connection server fronting the SchemaRegistry.

One process, two listeners:

* the **RPC listener** speaks the length-prefixed JSON frame protocol of
  :mod:`repro.server.protocol` -- every connection runs a read loop that
  validates each frame against the typed command table and dispatches to
  a ``_cmd_<name>`` handler, answering with typed success/error
  envelopes (and ``stream`` frames for ``enumerate``);
* the **metrics listener** speaks just enough HTTP/1.0 to serve
  ``GET /metrics`` (the registry's Prometheus text exposition, tenant
  labels included) and ``GET /healthz``.

Concurrency model: all registry and stream bookkeeping is confined to
the event-loop thread; only the solve itself runs in a worker thread
(:func:`asyncio.to_thread`), serialized **per tenant** by an
:class:`asyncio.Lock` -- a :class:`~repro.api.service.ConnectionService`
is single-threaded by contract, but different tenants' services solve
concurrently.  Each RPC runs inside a
:func:`~repro.api.context.request_scope` (which ``to_thread`` propagates
via ``contextvars``), so every answer's provenance carries the
server-assigned request id, the tenant, and the wall-clock phase
breakdown -- the identity the server's own accounting uses.

Enumeration resumes **across the wire**: a budget-paused stream stays in
a server-side table keyed by the continuation token's stream id, and
the token also carries everything needed to rebuild the stream
statelessly (terminals, bounds, resume rank) -- so resumption survives
client reconnects *and* server restarts, with identical continuation
order either way (enumeration is deterministic).  Graceful drain
(SIGTERM or :meth:`ReproServer.request_drain`) stops accepting, lets
in-flight commands finish, flushes classification reports to the disk
cache, and only then lets ``serve_forever`` return.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from repro.api.context import request_scope
from repro.api.request import ConnectionRequest
from repro.dynamic.editor import SchemaEditor
from repro.faults.plan import ACTIVE as _FAULTS
from repro.metrics import MetricsRegistry, default_metrics
from repro.server.codec import (
    decode_continuation,
    decode_schema,
    decode_value,
    encode_continuation,
    encode_value,
    encode_wire_result,
)
from repro.server.errors import (
    AuthenticationError,
    DeadlineError,
    ProtocolError,
    envelope_for,
)
from repro.server.protocol import (
    WIRE_FORMAT_VERSION,
    encode_frame,
    lookup_command,
    read_frame,
)
from repro.server.registry import SchemaRegistry

#: Default page size for ``enumerate`` calls that specify no budget and
#: whose tenant config has none either.
DEFAULT_ENUMERATION_PAGE = 8

#: Paused streams kept live for fast resume; older ones fall back to the
#: stateless continuation-token path.
MAX_LIVE_STREAMS = 128


class _Connection:
    """Per-connection state: the writer plus a busy flag for drain."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.busy = False


class ReproServer:
    """Multi-tenant JSON-over-TCP connection server.

    Parameters
    ----------
    host / port:
        RPC listener address; ``port=0`` picks an ephemeral port
        (readable as :attr:`port` after :meth:`start`).
    metrics_port:
        HTTP listener port for ``GET /metrics`` / ``GET /healthz``
        (``0`` = ephemeral, readable as :attr:`metrics_port`).
    registry:
        An existing :class:`~repro.server.registry.SchemaRegistry` to
        serve; built from ``capacity`` / ``cache_dir`` / ``metrics``
        when omitted.
    drain_grace:
        Seconds :meth:`drain` waits for in-flight commands before
        force-closing their connections.

    Examples
    --------
    ::

        server = ReproServer(port=0)
        await server.start()
        ...
        await server.drain()
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        metrics_port: int = 0,
        registry: Optional[SchemaRegistry] = None,
        capacity: int = 8,
        cache_dir: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        drain_grace: float = 10.0,
    ) -> None:
        self._host = host
        self._requested_port = port
        self._requested_metrics_port = metrics_port
        self._metrics = metrics if metrics is not None else default_metrics()
        self._registry = (
            registry
            if registry is not None
            else SchemaRegistry(
                capacity, cache_dir=cache_dir, metrics=self._metrics
            )
        )
        self._drain_grace = drain_grace
        self._server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: Dict[asyncio.Task, _Connection] = {}
        self._tenant_locks: Dict[str, asyncio.Lock] = {}
        self._streams: "Dict[str, dict]" = {}
        self._stream_seq = itertools.count(1)
        self._request_seq = itertools.count(1)
        self._draining = False
        self._stopped = asyncio.Event()
        self.port: Optional[int] = None
        self.metrics_port: Optional[int] = None
        self._requests_total = self._metrics.counter(
            "repro_server_requests_total",
            "RPC commands handled, by command and outcome.",
            ("command", "outcome"),
        )
        self._deadline_total = self._metrics.counter(
            "repro_deadline_exceeded_total",
            "Requests abandoned past their tenant's deadline_ms budget.",
            ("tenant",),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The interface both listeners bind."""
        return self._host

    @property
    def registry(self) -> SchemaRegistry:
        """The schema registry this server fronts."""
        return self._registry

    @property
    def draining(self) -> bool:
        """True once a drain has been requested."""
        return self._draining

    async def start(self) -> None:
        """Bind both listeners and record the resolved ports."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._requested_port
        )
        self._http_server = await asyncio.start_server(
            self._on_http, self._host, self._requested_metrics_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.metrics_port = self._http_server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block until a drain completes."""
        await self._stopped.wait()

    def request_drain(self) -> None:
        """Begin a graceful drain; safe from signal handlers and other threads."""
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(
            lambda: loop.create_task(self.drain())
        )

    async def drain(self) -> dict:
        """Stop accepting, finish in-flight commands, flush, shut down.

        Idempotent: concurrent calls all wait for the one drain.  Idle
        connections are closed immediately; busy ones get
        ``drain_grace`` seconds to finish their current command (each
        read loop exits at its next frame boundary once draining).
        Returns ``{"flushed": <classification reports stored>}``.
        """
        if self._draining:
            await self._stopped.wait()
            return {"flushed": 0}
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for connection in self._connections.values():
            if not connection.busy:
                connection.writer.close()
        if self._connections:
            await asyncio.wait(
                set(self._connections), timeout=self._drain_grace
            )
        for connection in self._connections.values():
            connection.writer.close()
        flushed = self._registry.flush()
        self._streams.clear()
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
        self._stopped.set()
        return {"flushed": flushed}

    # ------------------------------------------------------------------
    # RPC connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        connection = _Connection(writer)
        if task is not None:
            self._connections[task] = connection
        try:
            await self._read_loop(reader, writer, connection)
        finally:
            if task is not None:
                self._connections.pop(task, None)
            writer.close()

    async def _read_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        connection: _Connection,
    ) -> None:
        while True:
            try:
                frame = await read_frame(reader)
            except ProtocolError as error:
                # unframeable input: report once, then close -- resync
                # inside a corrupt byte stream is not possible
                await self._send(
                    writer, {"id": None, "ok": False, "error": envelope_for(error)}
                )
                return
            except (ConnectionError, asyncio.CancelledError):
                return
            if frame is None:
                return
            message_id = frame.get("id")
            connection.busy = True
            command_name = "?"
            try:
                command = lookup_command(frame.get("cmd"))
                command_name = command.name
                params = command.validate(frame.get("params", {}))
                handler = getattr(self, f"_cmd_{command.name}")
                result = await handler(params, writer, message_id)
                await self._send(
                    writer, {"id": message_id, "ok": True, "result": result}
                )
                self._requests_total.labels(
                    command=command_name, outcome="ok"
                ).inc()
            except asyncio.CancelledError:
                raise
            except Exception as error:
                envelope = envelope_for(error)
                self._requests_total.labels(
                    command=command_name, outcome=envelope["kind"]
                ).inc()
                try:
                    await self._send(
                        writer,
                        {"id": message_id, "ok": False, "error": envelope},
                    )
                except (ConnectionError, ProtocolError):
                    return
            finally:
                connection.busy = False
            if self._draining:
                return

    async def _send(self, writer: asyncio.StreamWriter, message: dict) -> None:
        injector = _FAULTS.injector  # no-op default: one attribute check
        if injector is not None:
            rule = injector.fire("wire-frame-delay")
            if rule is not None:
                await asyncio.sleep(rule.delay_ms / 1000.0)
            if injector.fire("wire-frame-drop") is not None:
                # the frame vanishes and the connection dies with it, as
                # a mid-write crash would look from the client's side
                writer.close()
                raise ConnectionResetError("fault-injected frame drop")
        writer.write(encode_frame(message))
        await writer.drain()

    def _lock_for(self, tenant: str) -> asyncio.Lock:
        lock = self._tenant_locks.get(tenant)
        if lock is None:
            lock = asyncio.Lock()
            self._tenant_locks[tenant] = lock
        return lock

    async def _solve(self, tenant: str, token: Optional[str], fn):
        """Run one service call for a tenant: auth, admit, lock, scope, thread.

        ``fn`` receives the tenant's service and runs in a worker thread
        under the tenant's lock, inside a
        :func:`~repro.api.context.request_scope` whose identity lands on
        the returned provenance.

        With ``TenantLimits.deadline_ms`` set, the whole admitted span
        (lock wait included) runs under :func:`asyncio.wait_for`; on
        expiry the request is *abandoned* with a typed ``deadline``
        envelope and ``repro_deadline_exceeded_total`` is incremented.
        The worker thread may still finish its solve in the background
        -- the deadline bounds the caller's wait, not the computation.
        """
        self._registry.authenticate(tenant, token)
        record = self._registry.acquire(tenant)
        try:
            deadline_ms = record.limits.deadline_ms
            injector = _FAULTS.injector
            if (
                injector is not None
                and injector.fire("deadline-exceeded") is not None
            ):
                self._deadline_total.labels(tenant=tenant).inc()
                raise DeadlineError(
                    f"tenant {tenant!r}: fault-injected deadline expiry"
                )
            service = self._registry.service(tenant)

            async def admitted():
                async with self._lock_for(tenant):
                    with request_scope(
                        request_id=f"req-{next(self._request_seq)}",
                        tenant=tenant,
                    ):
                        return await asyncio.to_thread(fn, service)

            if deadline_ms is None:
                return await admitted()
            try:
                return await asyncio.wait_for(
                    admitted(), timeout=deadline_ms / 1000.0
                )
            except asyncio.TimeoutError:
                self._deadline_total.labels(tenant=tenant).inc()
                raise DeadlineError(
                    f"tenant {tenant!r}: request exceeded "
                    f"deadline_ms={deadline_ms}"
                ) from None
        finally:
            self._registry.release(tenant)

    # ------------------------------------------------------------------
    # command handlers (one per COMMANDS entry)
    # ------------------------------------------------------------------
    async def _cmd_ping(self, params, writer, message_id) -> dict:
        """Liveness check; also reports the library version."""
        from repro import __version__

        return {"pong": True, "version": __version__}

    async def _cmd_hello(self, params, writer, message_id) -> dict:
        """Negotiate the wire-format version (ROADMAP item 2).

        A client declaring any generation other than
        :data:`~repro.server.protocol.WIRE_FORMAT_VERSION` gets a typed
        ``protocol`` error envelope naming both versions -- a clean,
        machine-readable refusal instead of a mid-session frame guess.
        """
        declared = params["version"]
        if declared != WIRE_FORMAT_VERSION:
            raise ProtocolError(
                f"unsupported wire-format version {declared}; this server "
                f"speaks version {WIRE_FORMAT_VERSION}"
            )
        from repro import __version__

        return {
            "version": WIRE_FORMAT_VERSION,
            "library": __version__,
            "client": params["client"],
        }

    async def _cmd_create_schema(self, params, writer, message_id) -> dict:
        """Register a tenant from an uploaded bipartite schema."""
        graph = decode_schema(params["schema"])
        record = self._registry.create(
            params["tenant"],
            graph,
            config_overrides=params["config"],
            limits=params["limits"],
            token=params["token"],
            exist_ok=params["exist_ok"],
        )
        return {
            "tenant": record.name,
            "vertices": len(record.graph.vertices()),
            "edges": sum(1 for _ in record.graph.edges()),
            "protected": record.token_hash is not None,
        }

    async def _cmd_drop_schema(self, params, writer, message_id) -> dict:
        """Remove a tenant (authenticated when the tenant has a token)."""
        tenant = params["tenant"]
        self._registry.authenticate(tenant, params["token"], mutating=True)
        self._drop_streams(tenant)
        self._registry.drop(tenant)
        self._tenant_locks.pop(tenant, None)
        return {"dropped": tenant}

    async def _cmd_list_schemas(self, params, writer, message_id) -> dict:
        """List registered tenant names (coldest first)."""
        return {"tenants": self._registry.names()}

    async def _cmd_connect(self, params, writer, message_id) -> dict:
        """Answer one connection request; the body is a wire-encoded result."""
        tenant = params["tenant"]
        terminals = [decode_value(t) for t in params["terminals"]]
        self._registry.check_quota(tenant, terminals=len(terminals))
        kwargs = {
            "objective": params["objective"],
            "policy": params["policy"],
        }
        if params["side"] is not None:
            kwargs["side"] = params["side"]
        if params["solver"] is not None:
            kwargs["solver"] = params["solver"]
        if params["tags"] is not None:
            kwargs["tags"] = decode_value(params["tags"])
        result = await self._solve(
            tenant,
            params["token"],
            lambda service: service.connect(terminals, **kwargs),
        )
        return {"result": encode_wire_result(result)}

    def _decode_batch_requests(self, tenant: str, params) -> list:
        """Build the typed request list for ``batch`` (validating quotas)."""
        entries = params["requests"]
        self._registry.check_quota(tenant, requests=len(entries))
        requests = []
        for entry in entries:
            if not isinstance(entry, dict) or "terminals" not in entry:
                raise ProtocolError(
                    "batch: each request must be an object with a "
                    "'terminals' list"
                )
            terminals = [decode_value(t) for t in entry["terminals"]]
            self._registry.check_quota(tenant, terminals=len(terminals))
            kwargs = {
                "objective": entry.get("objective", params["objective"]),
                "policy": entry.get("policy", params["policy"]),
                "side": entry.get("side", params["side"]),
            }
            if entry.get("solver") is not None:
                kwargs["solver"] = entry["solver"]
            if entry.get("tags") is not None:
                kwargs["tags"] = decode_value(entry["tags"])
            requests.append(ConnectionRequest.of(terminals, **kwargs))
        return requests

    async def _cmd_batch(self, params, writer, message_id) -> dict:
        """Answer many requests over the tenant's schema in one call."""
        tenant = params["tenant"]
        requests = self._decode_batch_requests(tenant, params)
        results = await self._solve(
            tenant, params["token"], lambda service: service.batch(requests)
        )
        return {"results": [encode_wire_result(result) for result in results]}

    async def _cmd_interpret(self, params, writer, message_id) -> dict:
        """Batch over bare terminal lists (the ``batch_interpret`` surface)."""
        tenant = params["tenant"]
        queries = params["queries"]
        self._registry.check_quota(tenant, requests=len(queries))
        decoded = []
        for query in queries:
            if not isinstance(query, list):
                raise ProtocolError(
                    "interpret: each query must be a list of terminals"
                )
            terminals = [decode_value(t) for t in query]
            self._registry.check_quota(tenant, terminals=len(terminals))
            decoded.append(terminals)
        objective = params["objective"]
        side = params["side"]
        results = await self._solve(
            tenant,
            params["token"],
            lambda service: service.batch(
                decoded, objective=objective, side=side
            ),
        )
        return {"results": [encode_wire_result(result) for result in results]}

    async def _cmd_mutate(self, params, writer, message_id) -> dict:
        """Apply one transactional schema evolution (authenticated).

        The edit list becomes a single
        :class:`~repro.dynamic.editor.SchemaEditor` transaction: one
        version bump, rollback on any failing edit.  The next query pays
        the PR4 incremental rebind, not a full reclassification.  Live
        enumeration streams for the tenant are dropped (their order is
        only meaningful against the schema they started on); stateless
        continuations resume against the *new* schema.

        A client-supplied ``idempotency_key`` makes the call safely
        retryable: the server remembers the response per tenant and key
        (bounded FIFO), so a retry after a lost reply returns the
        original response instead of applying the transaction twice.
        """
        tenant = params["tenant"]
        self._registry.authenticate(tenant, params["token"], mutating=True)
        record = self._registry.record(tenant)
        key = params["idempotency_key"]
        if key is not None:
            replay = self._registry.recall_idempotent(tenant, key)
            if replay is not None:
                return dict(replay, deduplicated=True)
        edits = params["edits"]

        def apply(service):
            with SchemaEditor(record.graph) as transaction:
                for position, edit in enumerate(edits):
                    _apply_edit(transaction, edit, position)
            return transaction.delta

        delta = await self._solve(tenant, params["token"], apply)
        record.mutations += 1
        self._drop_streams(tenant)
        response = {
            "version": record.graph.mutation_version,
            "delta": {
                "added_vertices": len(delta.added_vertices),
                "removed_vertices": len(delta.removed_vertices),
                "added_edges": len(delta.added_edges),
                "removed_edges": len(delta.removed_edges),
            },
        }
        if key is not None:
            self._registry.remember_idempotent(tenant, key, response)
        return response

    async def _cmd_enumerate(self, params, writer, message_id) -> dict:
        """Stream one page of ranked connections; resumable via continuation.

        Starting call: ``terminals`` (+ optional ``budget`` page size and
        ``max_extra``).  Resuming call: ``continuation`` from a previous
        footer.  Each yielded connection goes out as its own ``stream``
        frame; the footer carries ``paused`` / ``exhausted`` and the next
        continuation token (``null`` once exhausted).
        """
        tenant = params["tenant"]
        token = params["token"]
        if (params["terminals"] is None) == (params["continuation"] is None):
            raise ProtocolError(
                "enumerate: pass exactly one of 'terminals' (new stream) "
                "or 'continuation' (resume)"
            )
        if params["continuation"] is not None:
            return await self._resume_enumeration(
                tenant, token, params, writer, message_id
            )
        encoded_terminals = params["terminals"]
        terminals = [decode_value(t) for t in encoded_terminals]
        self._registry.check_quota(tenant, terminals=len(terminals))
        page = self._page_size(tenant, params["budget"])
        max_extra = params["max_extra"]

        def start(service):
            stream = service.enumerate(
                terminals, budget=page, max_extra=max_extra
            )
            return stream, stream.take(page)

        stream, results = await self._solve(tenant, token, start)
        sid = f"s{next(self._stream_seq)}"
        return await self._finish_enumeration(
            writer,
            message_id,
            tenant=tenant,
            sid=sid,
            stream=stream,
            results=results,
            encoded_terminals=encoded_terminals,
            max_extra=max_extra,
        )

    async def _resume_enumeration(
        self, tenant, token, params, writer, message_id
    ) -> dict:
        record = decode_continuation(params["continuation"])
        if record["tenant"] != tenant:
            raise AuthenticationError(
                "continuation token was minted for a different tenant"
            )
        encoded_terminals = record["terminals"]
        terminals = [decode_value(t) for t in encoded_terminals]
        max_extra = record.get("max_extra")
        skip = record["skip"]
        sid = record["sid"]
        page = self._page_size(tenant, params["budget"])
        entry = self._streams.get(sid)
        if (
            entry is not None
            and entry["tenant"] == tenant
            and entry["stream"].yielded == skip
        ):
            # fast path: the paused stream is still live server-side
            stream = entry["stream"]
            self._registry.authenticate(tenant, token)
            self._registry.acquire(tenant)
            try:
                async with self._lock_for(tenant):
                    stream.extend_budget(page)
                    with request_scope(
                        request_id=f"req-{next(self._request_seq)}",
                        tenant=tenant,
                    ):
                        results = await asyncio.to_thread(stream.take, page)
            finally:
                self._registry.release(tenant)
        else:
            # stateless path: rebuild and replay -- enumeration is
            # deterministic, so ranks skip+1.. come out identical (this
            # is what survives reconnects, eviction, and restarts)
            self._streams.pop(sid, None)

            def resume(service):
                stream = service.enumerate(
                    terminals, budget=skip + page, max_extra=max_extra
                )
                replayed = stream.take(skip)
                if len(replayed) < skip:
                    return stream, []
                return stream, stream.take(page)

            stream, results = await self._solve(tenant, token, resume)
        return await self._finish_enumeration(
            writer,
            message_id,
            tenant=tenant,
            sid=sid,
            stream=stream,
            results=results,
            encoded_terminals=encoded_terminals,
            max_extra=max_extra,
        )

    async def _finish_enumeration(
        self,
        writer,
        message_id,
        *,
        tenant,
        sid,
        stream,
        results,
        encoded_terminals,
        max_extra,
    ) -> dict:
        for result in results:
            await self._send(
                writer,
                {"id": message_id, "stream": encode_wire_result(result)},
            )
        continuation = None
        if stream.paused and not stream.exhausted:
            continuation = encode_continuation(
                tenant=tenant,
                terminals=encoded_terminals,
                max_extra=max_extra,
                skip=stream.yielded,
                sid=sid,
            )
            self._streams[sid] = {
                "tenant": tenant,
                "stream": stream,
            }
            while len(self._streams) > MAX_LIVE_STREAMS:
                # oldest first; stateless resume covers the evicted ones
                self._streams.pop(next(iter(self._streams)))
        else:
            self._streams.pop(sid, None)
        return {
            "count": len(results),
            "yielded": stream.yielded,
            "paused": stream.paused,
            "exhausted": stream.exhausted,
            "continuation": continuation,
        }

    async def _cmd_stats(self, params, writer, message_id) -> dict:
        """Registry and stream-table observability counters."""
        return {
            "registry": self._registry.stats(),
            "live_streams": len(self._streams),
            "draining": self._draining,
        }

    async def _cmd_metrics(self, params, writer, message_id) -> dict:
        """The Prometheus exposition text, inline over RPC."""
        return {"text": self._metrics.render_text()}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _page_size(self, tenant: str, budget) -> int:
        if budget is not None:
            if budget < 1:
                raise ProtocolError("enumerate: budget must be >= 1")
            return budget
        configured = self._registry.record(tenant).config.enumeration_budget
        if configured is not None and configured > 0:
            return configured
        return DEFAULT_ENUMERATION_PAGE

    def _drop_streams(self, tenant: str) -> None:
        for sid in [
            sid
            for sid, entry in self._streams.items()
            if entry["tenant"] == tenant
        ]:
            self._streams.pop(sid, None)

    # ------------------------------------------------------------------
    # metrics HTTP endpoint
    # ------------------------------------------------------------------
    async def _on_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one minimal HTTP exchange: /metrics, /healthz, else 404."""
        try:
            request_line = await reader.readline()
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) > 1 else "/"
            if method != "GET":
                status, ctype, body = (
                    "405 Method Not Allowed",
                    "text/plain; charset=utf-8",
                    b"method not allowed\n",
                )
            elif path == "/metrics":
                status = "200 OK"
                ctype = "text/plain; version=0.0.4; charset=utf-8"
                body = self._metrics.render_text().encode("utf-8")
            elif path == "/healthz":
                status, ctype = "200 OK", "text/plain; charset=utf-8"
                body = b"draining\n" if self._draining else b"ok\n"
            else:
                status, ctype, body = (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    b"not found\n",
                )
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()


def _apply_edit(transaction: SchemaEditor, edit, position: int) -> None:
    """Apply one wire edit record to an open transaction."""
    if not isinstance(edit, dict) or "op" not in edit:
        raise ProtocolError(
            f"mutate: edit #{position} must be an object with an 'op'"
        )
    op = edit["op"]
    keys = set(edit) - {"op"}
    if op == "add_vertex":
        if not {"vertex"} <= keys or keys - {"vertex", "side"}:
            raise ProtocolError(
                f"mutate: edit #{position} (add_vertex) takes "
                "'vertex' and optional 'side'"
            )
        transaction.add_vertex(
            decode_value(edit["vertex"]), side=edit.get("side")
        )
    elif op == "remove_vertex":
        if keys != {"vertex"}:
            raise ProtocolError(
                f"mutate: edit #{position} (remove_vertex) takes 'vertex'"
            )
        transaction.remove_vertex(decode_value(edit["vertex"]))
    elif op in ("add_edge", "remove_edge"):
        if keys != {"u", "v"}:
            raise ProtocolError(
                f"mutate: edit #{position} ({op}) takes 'u' and 'v'"
            )
        method = getattr(transaction, op)
        method(decode_value(edit["u"]), decode_value(edit["v"]))
    else:
        raise ProtocolError(
            f"mutate: edit #{position} has unknown op {op!r}; accepted: "
            "add_vertex / remove_vertex / add_edge / remove_edge"
        )


__all__ = ["ReproServer", "DEFAULT_ENUMERATION_PAGE", "MAX_LIVE_STREAMS"]
