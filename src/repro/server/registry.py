"""Multi-tenant `SchemaRegistry`: named schemas, quotas, LRU service eviction.

One server process fronts many tenants, each with its own named schema,
:class:`~repro.api.config.ServiceConfig` and limits.  The registry is
the single owner of that state:

* **Tenant records** keep the schema *definition* (the live
  :class:`~repro.graphs.bipartite.BipartiteGraph` that mutation RPCs
  edit) for as long as the tenant exists.
* **Services are a cache.** The per-tenant
  :class:`~repro.api.service.ConnectionService` -- with its bound
  context, distance oracle and LRU caches -- is built lazily and
  evicted LRU-style once more than ``capacity`` tenants have live
  services.  Eviction never touches a tenant with in-flight requests
  (the count may transiently exceed ``capacity`` under load); it drops
  only the derived state, so the next request rebuilds the service --
  and with a ``cache_dir`` configured, repeated requests replay from
  the shared :class:`~repro.runtime.diskcache.DiskCache` with
  ``provenance.result_cache == "disk"`` instead of recomputing: warm
  restarts for free.
* **Admission control** is per tenant: :meth:`SchemaRegistry.acquire`
  bounces requests past ``max_inflight`` with a typed ``admission``
  error, and :meth:`SchemaRegistry.check_quota` enforces the size
  quotas (batch length, terminal count) before any work is done.
* **Authentication** is a per-tenant shared token, stored only as a
  SHA-256 hash and compared with :func:`hmac.compare_digest`.  A tenant
  created with a token requires it on *mutating* RPCs (``mutate``,
  ``drop_schema``); tenants created without one are open.

The registry itself is not thread-safe: the server confines it to the
event-loop thread and only the GIL-released solve runs elsewhere.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.config import ServiceConfig
from repro.api.service import ConnectionService
from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.metrics import MetricsRegistry, default_metrics
from repro.server.errors import (
    AdmissionError,
    AuthenticationError,
    QuotaError,
    TenantExistsError,
    UnknownTenantError,
)


@dataclass(frozen=True)
class TenantLimits:
    """Per-tenant admission and size quotas.

    Attributes
    ----------
    max_inflight:
        Concurrent requests admitted for this tenant; further requests
        bounce with an ``admission`` error envelope (clients retry).
    max_batch_requests:
        Upper bound on ``batch``/``interpret`` lengths.
    max_terminals:
        Upper bound on one request's terminal count.
    deadline_ms:
        Optional per-request wall-clock budget enforced at the admission
        layer; requests that run past it are abandoned with a typed
        ``deadline`` error envelope (``None`` = no deadline).
    """

    max_inflight: int = 64
    max_batch_requests: int = 1024
    max_terminals: int = 256
    deadline_ms: Optional[int] = None

    def __post_init__(self) -> None:
        if (
            self.max_inflight < 1
            or self.max_batch_requests < 1
            or self.max_terminals < 1
        ):
            raise ValidationError("tenant limits must be positive")
        if self.deadline_ms is not None and self.deadline_ms < 1:
            raise ValidationError("deadline_ms must be >= 1 when set")


@dataclass
class TenantRecord:
    """One tenant's registry entry (definition + cached derived state)."""

    name: str
    graph: BipartiteGraph
    config: ServiceConfig
    limits: TenantLimits
    token_hash: Optional[str] = None
    service: Optional[ConnectionService] = None
    inflight: int = 0
    serial: int = 0
    evictions: int = 0
    mutations: int = field(default=0)
    # mutate idempotency: key -> cached response payload, bounded FIFO
    applied_keys: "OrderedDict[str, dict]" = field(default_factory=OrderedDict)


def _hash_token(token: str) -> str:
    """Return the stored form of a tenant token (SHA-256 hex)."""
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


#: ServiceConfig fields a ``create_schema`` upload may override.
CONFIG_FIELDS = (
    "exact_terminal_limit",
    "exact_vertex_limit",
    "cache_size",
    "default_side",
    "enumeration_budget",
    "enumeration_max_extra",
    "incremental",
)

#: TenantLimits fields a ``create_schema`` upload may set.
LIMIT_FIELDS = (
    "max_inflight",
    "max_batch_requests",
    "max_terminals",
    "deadline_ms",
)

#: How many mutate idempotency keys each tenant retains (FIFO).  A
#: retrying client needs only its most recent keys; the bound keeps a
#: hostile or buggy client from growing the record without limit.
MAX_IDEMPOTENCY_KEYS = 128


class SchemaRegistry:
    """Named schemas with per-tenant config, quotas, and LRU service eviction.

    Parameters
    ----------
    capacity:
        How many tenants may hold a *live* service at once; colder ones
        are evicted back to their definition (never while in flight).
    cache_dir:
        Optional directory for the shared persistent
        :class:`~repro.runtime.diskcache.DiskCache`.  The store is
        content-addressed by schema digest and request key, so sharing
        one directory across tenants deduplicates identical schemas and
        gives evicted tenants disk-warm rebinds.
    metrics:
        Registry the tenants' services collect into (the process-wide
        default when ``None``).
    base_config:
        The :class:`ServiceConfig` tenant overrides are applied to.

    Examples
    --------
    >>> registry = SchemaRegistry(capacity=2)
    >>> g = BipartiteGraph(left=["A"], right=[1], edges=[("A", 1)])
    >>> registry.create("acme", g)
    >>> registry.service("acme").connect(["A", 1]).cost
    2
    """

    def __init__(
        self,
        capacity: int = 8,
        *,
        cache_dir: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        base_config: Optional[ServiceConfig] = None,
    ) -> None:
        if capacity < 1:
            raise ValidationError("capacity must be >= 1")
        self._capacity = capacity
        self._cache_dir = cache_dir
        self._metrics = metrics if metrics is not None else default_metrics()
        self._base_config = base_config if base_config is not None else ServiceConfig()
        # LRU order: oldest-touched first; touched on every service() call
        self._records: "OrderedDict[str, TenantRecord]" = OrderedDict()
        self._serial = itertools.count(1)
        self._tenants_gauge = self._metrics.gauge(
            "repro_server_tenants",
            "Registered tenants (live = service currently built).",
            ("state",),
        )
        self._evictions_total = self._metrics.counter(
            "repro_server_evictions_total",
            "Cold-tenant service evictions from the schema registry.",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        graph: BipartiteGraph,
        *,
        config_overrides: Optional[dict] = None,
        limits: Optional[dict] = None,
        token: Optional[str] = None,
        exist_ok: bool = False,
    ) -> TenantRecord:
        """Register a tenant; ``exist_ok`` makes re-creation idempotent.

        ``config_overrides`` may set any field in :data:`CONFIG_FIELDS`;
        ``limits`` any in :data:`LIMIT_FIELDS`.  Unknown keys are
        rejected -- a typo must not silently run with defaults.
        """
        if not name:
            raise ValidationError("tenant name must be a non-empty string")
        if name in self._records:
            if exist_ok:
                return self._records[name]
            raise TenantExistsError(f"tenant {name!r} already exists")
        overrides = dict(config_overrides or {})
        unknown = sorted(set(overrides) - set(CONFIG_FIELDS))
        if unknown:
            raise ValidationError(
                f"unknown config override(s) {unknown}; "
                f"accepted: {list(CONFIG_FIELDS)}"
            )
        config = self._base_config.with_overrides(
            cache_dir=self._cache_dir, metrics=self._metrics, **overrides
        )
        limit_values = dict(limits or {})
        unknown = sorted(set(limit_values) - set(LIMIT_FIELDS))
        if unknown:
            raise ValidationError(
                f"unknown limit(s) {unknown}; accepted: {list(LIMIT_FIELDS)}"
            )
        record = TenantRecord(
            name=name,
            graph=graph,
            config=config,
            limits=TenantLimits(**limit_values),
            token_hash=_hash_token(token) if token is not None else None,
            serial=next(self._serial),
        )
        self._records[name] = record
        self._export_gauges()
        return record

    def drop(self, name: str) -> None:
        """Remove a tenant entirely (definition included)."""
        record = self._record(name)
        if record.inflight:
            raise AdmissionError(
                f"tenant {name!r} has {record.inflight} request(s) in flight; "
                "drain before dropping"
            )
        del self._records[name]
        self._export_gauges()

    def names(self) -> List[str]:
        """Return the registered tenant names (LRU order, coldest first)."""
        return list(self._records)

    def __contains__(self, name: str) -> bool:
        """True when a tenant with this name is registered."""
        return name in self._records

    def _record(self, name: str) -> TenantRecord:
        record = self._records.get(name)
        if record is None:
            raise UnknownTenantError(f"unknown tenant {name!r}")
        return record

    def record(self, name: str) -> TenantRecord:
        """Return the tenant's record (raising for unknown tenants)."""
        return self._record(name)

    # ------------------------------------------------------------------
    # service cache (LRU with in-flight protection)
    # ------------------------------------------------------------------
    def service(self, name: str) -> ConnectionService:
        """Return the tenant's service, building it on first use.

        Touches the LRU and evicts the coldest idle services beyond
        ``capacity``.  A rebuilt service re-binds the tenant's live
        graph; with a ``cache_dir`` its first repeated requests replay
        from disk (``provenance.result_cache == "disk"``).
        """
        record = self._record(name)
        self._records.move_to_end(name)
        if record.service is None:
            record.service = ConnectionService(
                schema=record.graph, config=record.config
            )
        self._evict_cold(protect=name)
        return record.service

    def live_count(self) -> int:
        """How many tenants currently hold a built service."""
        return sum(1 for record in self._records.values() if record.service)

    def _evict_cold(self, protect: Optional[str] = None) -> None:
        """Drop the coldest idle services until at most ``capacity`` live.

        In-flight tenants and ``protect`` (the tenant being served right
        now) are skipped, so the live count may transiently exceed
        ``capacity`` -- eviction must never yank a service out from
        under a running solve or the caller's hands.
        """
        if self.live_count() <= self._capacity:
            return
        for name, record in list(self._records.items()):  # coldest first
            if self.live_count() <= self._capacity:
                break
            if record.service is None or record.inflight > 0 or name == protect:
                continue
            record.service = None
            record.evictions += 1
            self._evictions_total.inc()
        self._export_gauges()

    # ------------------------------------------------------------------
    # admission / quotas / auth
    # ------------------------------------------------------------------
    def acquire(self, name: str) -> TenantRecord:
        """Admit one request for the tenant (pair with :meth:`release`)."""
        record = self._record(name)
        if record.inflight >= record.limits.max_inflight:
            raise AdmissionError(
                f"tenant {name!r} is at its in-flight limit "
                f"({record.limits.max_inflight}); retry later"
            )
        record.inflight += 1
        return record

    def release(self, name: str) -> None:
        """Mark one admitted request finished."""
        record = self._records.get(name)
        if record is not None and record.inflight > 0:
            record.inflight -= 1

    def check_quota(
        self, name: str, *, requests: int = 1, terminals: int = 0
    ) -> None:
        """Reject request sizes beyond the tenant's quotas (typed envelope)."""
        record = self._record(name)
        if requests > record.limits.max_batch_requests:
            raise QuotaError(
                f"tenant {name!r}: batch of {requests} request(s) exceeds "
                f"max_batch_requests={record.limits.max_batch_requests}"
            )
        if terminals > record.limits.max_terminals:
            raise QuotaError(
                f"tenant {name!r}: {terminals} terminal(s) exceed "
                f"max_terminals={record.limits.max_terminals}"
            )

    def authenticate(
        self, name: str, token: Optional[str], *, mutating: bool = False
    ) -> None:
        """Check a tenant token; mutating RPCs on tokened tenants require it.

        Comparison uses :func:`hmac.compare_digest` over SHA-256 hashes;
        a wrong token always fails, a missing token fails only for
        mutating commands (reads on a tokened tenant stay open -- the
        token authenticates *writes*, mirroring the authenticated
        mutation RPCs the ROADMAP names).
        """
        record = self._record(name)
        if record.token_hash is None:
            return
        if token is None:
            if mutating:
                raise AuthenticationError(
                    f"tenant {name!r} requires a token for mutating commands"
                )
            return
        if not hmac.compare_digest(record.token_hash, _hash_token(token)):
            raise AuthenticationError(f"invalid token for tenant {name!r}")

    # ------------------------------------------------------------------
    # mutate idempotency
    # ------------------------------------------------------------------
    def recall_idempotent(self, name: str, key: str) -> Optional[dict]:
        """Return the cached mutate response for ``key``, if already applied.

        The dedupe store is per tenant: a client that retried a mutate
        after a lost reply gets the original response back instead of a
        double-applied transaction.
        """
        return self._record(name).applied_keys.get(key)

    def remember_idempotent(self, name: str, key: str, response: dict) -> None:
        """Record a mutate response under its idempotency key (bounded FIFO)."""
        applied = self._record(name).applied_keys
        applied[key] = response
        while len(applied) > MAX_IDEMPOTENCY_KEYS:
            applied.popitem(last=False)

    # ------------------------------------------------------------------
    # drain support / observability
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Persist every live tenant's classification report to disk.

        Results are stored synchronously as they are answered; the
        classification report of the currently bound context is the one
        piece of derived state worth flushing at drain time, so a
        restarted server rebinds large schemas without re-running the
        Theorem 1 recognition.  Returns how many reports were stored;
        best-effort (a tenant without disk or context contributes 0).
        """
        flushed = 0
        for record in self._records.values():
            service = record.service
            if service is None:
                continue
            try:
                disk, digest = service._persistent_layer(None)
                context = service._bound_context
                if disk is None or context is None:
                    continue
                disk.store_report(digest, context.report)
                flushed += 1
            except Exception:
                continue
        return flushed

    def stats(self) -> Dict[str, Any]:
        """Return per-tenant observability counters (the ``stats`` RPC body)."""
        tenants = {}
        for name, record in self._records.items():
            tenants[name] = {
                "vertices": len(record.graph.vertices()),
                "edges": sum(1 for _ in record.graph.edges()),
                "live": record.service is not None,
                "inflight": record.inflight,
                "evictions": record.evictions,
                "mutations": record.mutations,
                "protected": record.token_hash is not None,
            }
        return {
            "capacity": self._capacity,
            "live": self.live_count(),
            "tenants": tenants,
        }

    def _export_gauges(self) -> None:
        live = self.live_count()
        self._tenants_gauge.labels(state="live").set(live)
        self._tenants_gauge.labels(state="total").set(len(self._records))
