"""JSON-safe wire codec: vertices, schemas, results, continuation tokens.

JSON has no tuple, but the library's vertex labels are frequently tuples
(the generators label vertices ``('l', 3)`` / ``('r', 7)``), and a
round-trip that silently turned them into lists would break hashing,
``repr``-based ordering, and therefore the byte-identity the
differential suite pins.  This module is the *wire* layer on top of the
runtime payload codec (:mod:`repro.runtime.codec`): tuples are tagged
(``{"__t__": [...]}``) on the way out and restored on the way in, for
vertex labels and recursively inside solution metadata.

It also defines the two wire-only encodings that have no runtime
counterpart: bipartite schema uploads (``{"left", "right", "edges"}``)
and the **opaque continuation tokens** that make enumeration resumable
across connections -- a base64url-encoded JSON record carrying the
tenant, the (encoded) terminals, the enumeration bounds, and how many
connections were already yielded.  The token is self-contained: any
server holding the tenant's schema can resume from it, even after a
restart (see ``docs/server.md`` for the resume algorithm).
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any, List, Optional

from repro.api.request import ConnectionRequest
from repro.api.result import ConnectionResult
from repro.graphs.bipartite import BipartiteGraph
from repro.runtime.codec import _label_repr, decode_result, encode_result
from repro.server.errors import ProtocolError

#: Tag key marking an encoded tuple; chosen to be implausible as a user
#: dict key and rejected in incoming plain dicts' keys by no one -- a
#: dict *value* shaped exactly like a tag decodes back to a tuple, which
#: is the tradeoff for a self-describing encoding.
TUPLE_TAG = "__t__"

#: Tag key marking an encoded set/frozenset (solution metadata carries
#: vertex sets).  Elements are sorted by ``repr`` so the wire form is
#: deterministic; sets are unordered, so decode-side equality holds.
SET_TAG = "__s__"

#: Version stamp inside every continuation token; unknown versions are
#: rejected with a protocol error instead of resuming garbage.
CONTINUATION_VERSION = 1

#: Memo of encoded tuple labels.  Vertex labels are drawn from a small
#: universe but appear in every result's tree/metadata, so caching the
#: encoded form takes label encoding off the round-trip critical path
#: (SV1, ``benchmarks/bench_server.py``).  Consequence: encoded payloads
#: share substructure -- treat wire payloads as immutable (the server
#: only ever serialises them, and decoding builds fresh objects).
_TUPLE_MEMO: dict = {}
_TUPLE_MEMO_MAX = 65536


def encode_value(value: Any) -> Any:
    """Return a JSON-safe encoding of a vertex label or metadata value.

    Tuples become ``{"__t__": [...]}`` (recursively); lists, dicts and
    scalars pass through with their elements encoded.
    """
    # scalars first: the overwhelming majority of calls are leaf labels,
    # and this ordering is what keeps result encoding off the round-trip
    # critical path (see benchmarks/bench_server.py, SV1)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, tuple):
        try:
            return _TUPLE_MEMO[value]
        except KeyError:
            encoded = {TUPLE_TAG: [encode_value(item) for item in value]}
            if len(_TUPLE_MEMO) < _TUPLE_MEMO_MAX:
                _TUPLE_MEMO[value] = encoded
            return encoded
        except TypeError:  # unhashable elements (e.g. a nested list)
            return {TUPLE_TAG: [encode_value(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        return {
            SET_TAG: [
                encode_value(item)
                for item in sorted(value, key=_label_repr)
            ]
        }
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode_value(item) for key, item in value.items()}
    raise ProtocolError(
        f"value {value!r} ({type(value).__name__}) is not wire-encodable"
    )


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` (tagged dicts back to tuples)."""
    if isinstance(value, dict):
        if set(value) == {TUPLE_TAG} and isinstance(value[TUPLE_TAG], list):
            return tuple(decode_value(item) for item in value[TUPLE_TAG])
        if set(value) == {SET_TAG} and isinstance(value[SET_TAG], list):
            return set(decode_value(item) for item in value[SET_TAG])
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


# ----------------------------------------------------------------------
# schemas
# ----------------------------------------------------------------------
def encode_schema(graph: BipartiteGraph) -> dict:
    """Return the wire form of a bipartite schema (sorted, deterministic)."""
    return {
        "left": [encode_value(v) for v in sorted(graph.left(), key=repr)],
        "right": [encode_value(v) for v in sorted(graph.right(), key=repr)],
        "edges": [
            [encode_value(u), encode_value(v)]
            for u, v in sorted(
                (tuple(sorted(edge, key=repr)) for edge in graph.edges()), key=repr
            )
        ],
    }


def decode_schema(payload: dict) -> BipartiteGraph:
    """Build a :class:`BipartiteGraph` from a ``create_schema`` upload."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"schema must be an object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - {"left", "right", "edges"})
    if unknown:
        raise ProtocolError(
            f"schema: unknown key(s) {unknown}; expected left/right/edges"
        )
    for key in ("left", "right", "edges"):
        if not isinstance(payload.get(key, []), list):
            raise ProtocolError(f"schema: {key!r} must be a list")
    edges = []
    for entry in payload.get("edges", []):
        if not isinstance(entry, list) or len(entry) != 2:
            raise ProtocolError(
                f"schema: each edge must be a two-element list, got {entry!r}"
            )
        edges.append((decode_value(entry[0]), decode_value(entry[1])))
    return BipartiteGraph(
        left=[decode_value(v) for v in payload.get("left", [])],
        right=[decode_value(v) for v in payload.get("right", [])],
        edges=edges,
    )


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
def encode_wire_result(result: ConnectionResult) -> dict:
    """Return the JSON-safe wire payload for one answered request.

    Built on :func:`~repro.runtime.codec.encode_result` (so provenance,
    guarantee and the tree travel exactly as they do to pool workers)
    with every vertex label made JSON-safe, plus the request's terminals
    and objective so a schema-holding receiver can rebuild the full
    :class:`~repro.api.result.ConnectionResult` without out-of-band
    state.
    """
    payload = encode_result(result)
    tree_vertex_set = set(payload["tree_vertices"])
    # a solution tree is connected, so when it has edges at all the
    # vertex list is exactly the union of the edge endpoints -- omit it
    # from the wire (it is the single largest redundant payload chunk;
    # decode_wire_result rebuilds the identical repr-sorted list)
    covered = {v for edge in payload["tree_edges"] for v in edge}
    if covered == tree_vertex_set:
        del payload["tree_vertices"]
    else:
        payload["tree_vertices"] = [
            encode_value(v) for v in payload["tree_vertices"]
        ]
    payload["tree_edges"] = [
        [encode_value(u), encode_value(v)] for u, v in payload["tree_edges"]
    ]
    # same trick for the cover: the paper's solvers report the tree's
    # vertex set as its cover, so a matching set travels as one flag
    metadata = payload["metadata"]
    if metadata.get("cover") == tree_vertex_set:
        metadata = {k: v for k, v in metadata.items() if k != "cover"}
        payload["cover_is_tree"] = True
    payload["metadata"] = encode_value(metadata)
    payload["terminals"] = [
        encode_value(t) for t in result.request.terminals
    ]
    payload["objective"] = result.request.objective
    # derived, but clients without the schema want it without decoding
    payload["cost"] = result.cost
    # the runtime codec drops result_cache (pool workers re-stamp it on
    # the receiving side); the wire is the final hop, so carry it through
    payload["provenance"] = dict(payload["provenance"])
    payload["provenance"]["result_cache"] = result.provenance.result_cache
    return payload


def decode_wire_result(
    payload: dict,
    *,
    graph,
    request: Optional[ConnectionRequest] = None,
    result_cache: Optional[str] = None,
) -> ConnectionResult:
    """Re-materialise a :class:`ConnectionResult` from a wire payload.

    ``graph`` is the receiver's copy of the schema.  When ``request`` is
    omitted it is rebuilt from the payload's embedded terminals and
    objective -- enough for tree/guarantee/provenance comparisons; pass
    the original request to round-trip tags and policy too.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"result payload must be an object, got {type(payload).__name__}"
        )
    inner = dict(payload)
    try:
        inner["tree_edges"] = [
            tuple(decode_value(end) for end in edge)
            for edge in inner["tree_edges"]
        ]
        if "tree_vertices" in inner:
            inner["tree_vertices"] = [
                decode_value(v) for v in inner["tree_vertices"]
            ]
        else:  # omitted on the wire: rebuild from the edge endpoints
            inner["tree_vertices"] = sorted(
                {v for edge in inner["tree_edges"] for v in edge},
                key=_label_repr,
            )
        inner["metadata"] = decode_value(inner["metadata"])
        if inner.pop("cover_is_tree", False):
            inner["metadata"]["cover"] = set(inner["tree_vertices"])
        terminals = [decode_value(t) for t in inner.pop("terminals")]
        objective = inner.pop("objective")
        inner.pop("cost", None)  # derived; recomputed from the tree
        provenance = dict(inner.get("provenance") or {})
        stored_result_cache = provenance.pop("result_cache", None)
        inner["provenance"] = provenance
        if result_cache is None:
            result_cache = stored_result_cache
    except (KeyError, TypeError) as error:
        raise ProtocolError(f"malformed wire result: {error}") from error
    if request is None:
        request = ConnectionRequest.of(terminals, objective=objective)
    return decode_result(
        inner, graph=graph, request=request, result_cache=result_cache
    )


# ----------------------------------------------------------------------
# continuation tokens
# ----------------------------------------------------------------------
def encode_continuation(
    *,
    tenant: str,
    terminals: List[Any],
    max_extra: Optional[int],
    skip: int,
    sid: str,
) -> str:
    """Return the opaque resume token for a paused enumeration.

    ``terminals`` are already wire-encoded; ``skip`` is how many
    connections the stream has yielded so far (the resume point);
    ``sid`` names the server-side live stream for the fast path.
    """
    record = {
        "v": CONTINUATION_VERSION,
        "tenant": tenant,
        "terminals": terminals,
        "max_extra": max_extra,
        "skip": skip,
        "sid": sid,
    }
    raw = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii")


def decode_continuation(token: str) -> dict:
    """Decode and validate a continuation token (raises on any damage)."""
    try:
        raw = base64.urlsafe_b64decode(token.encode("ascii"))
        record = json.loads(raw.decode("utf-8"))
    except (binascii.Error, ValueError, UnicodeError) as error:
        raise ProtocolError(f"malformed continuation token: {error}") from error
    if not isinstance(record, dict) or record.get("v") != CONTINUATION_VERSION:
        raise ProtocolError(
            "continuation token has an unknown version; it was not minted "
            "by a compatible server"
        )
    required = {"tenant", "terminals", "skip", "sid"}
    if not required <= set(record):
        raise ProtocolError("continuation token is missing required fields")
    if not isinstance(record["skip"], int) or record["skip"] < 0:
        raise ProtocolError("continuation token has an invalid resume point")
    return record
