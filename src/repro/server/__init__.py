"""Multi-tenant async connection server (``python -m repro serve``).

This package puts the whole :mod:`repro.api` surface behind a socket: an
:class:`~repro.server.app.ReproServer` speaks length-prefixed JSON
frames over TCP (:mod:`repro.server.protocol`), fronting a
:class:`~repro.server.registry.SchemaRegistry` that hosts many named
schemas with per-tenant configuration, admission control, and LRU
eviction of cold tenants backed by the
:class:`~repro.runtime.cache.DiskCache` for disk-warm rebinds.  Ranked
enumeration streams pause and resume *across the wire* -- opaque
continuation tokens (:mod:`repro.server.codec`) survive client
reconnects and even server restarts.  A sidecar HTTP listener serves the
metrics registry at ``GET /metrics``.

See ``docs/server.md`` for the frame format, the command table, tenant
lifecycle and drain semantics.
"""

from repro.server.app import ReproServer
from repro.server.client import (
    IDEMPOTENT_COMMANDS,
    ReproClient,
    RetryPolicy,
    fetch_metrics,
)
from repro.server.codec import (
    decode_continuation,
    decode_schema,
    decode_value,
    decode_wire_result,
    encode_continuation,
    encode_schema,
    encode_value,
    encode_wire_result,
)
from repro.server.errors import (
    AdmissionError,
    AuthenticationError,
    DeadlineError,
    ProtocolError,
    QuotaError,
    RemoteError,
    ServerError,
    TenantExistsError,
    UnknownTenantError,
    envelope_for,
)
from repro.server.protocol import (
    COMMANDS,
    MAX_FRAME_BYTES,
    WIRE_FORMAT_VERSION,
    Argument,
    Command,
    encode_frame,
    lookup_command,
    read_frame,
)
from repro.server.registry import SchemaRegistry, TenantLimits, TenantRecord

__all__ = [
    "ReproServer",
    "ReproClient",
    "RetryPolicy",
    "IDEMPOTENT_COMMANDS",
    "WIRE_FORMAT_VERSION",
    "fetch_metrics",
    "SchemaRegistry",
    "TenantLimits",
    "TenantRecord",
    "Argument",
    "Command",
    "COMMANDS",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "read_frame",
    "lookup_command",
    "encode_value",
    "decode_value",
    "encode_schema",
    "decode_schema",
    "encode_wire_result",
    "decode_wire_result",
    "encode_continuation",
    "decode_continuation",
    "ServerError",
    "ProtocolError",
    "UnknownTenantError",
    "TenantExistsError",
    "AuthenticationError",
    "AdmissionError",
    "QuotaError",
    "DeadlineError",
    "RemoteError",
    "envelope_for",
]
