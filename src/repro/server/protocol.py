"""Wire protocol: length-prefixed JSON frames and the typed command table.

The transport is deliberately boring -- and therefore debuggable with
``nc`` and a hex dump: every message is one UTF-8 JSON object prefixed
by its byte length as a 4-byte big-endian unsigned integer.  A request
frame is ``{"id": <caller id>, "cmd": <name>, "params": {...}}``; the
server answers with ``{"id", "ok": true, "result": {...}}`` or
``{"id", "ok": false, "error": {kind, type, message}}``, interleaving
``{"id", "stream": {...}}`` frames for streaming commands
(``enumerate``) before the footer.

Commands are *declared*, not discovered: :data:`COMMANDS` is a typed
table (the MAAS region-RPC shape) mapping each command name to its
:class:`Command` -- argument names, accepted JSON types, and which
arguments are required.  :meth:`Command.validate` rejects unknown
parameters and type mismatches *before* any handler runs, so a handler
body never sees a malformed request and every validation failure is a
uniform ``protocol`` error envelope.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.server.errors import ProtocolError

#: The wire-format generation this server speaks.  ``hello`` negotiates
#: it explicitly: a client declaring any other generation receives a
#: typed ``protocol`` error envelope instead of a mid-session guess.
#: Bump only on incompatible frame/command-table changes.
WIRE_FORMAT_VERSION = 1

#: Upper bound on one frame's JSON payload.  Large enough for a
#: several-hundred-thousand-edge schema upload, small enough that a
#: corrupt or hostile length prefix cannot balloon server memory.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct("!I")


def encode_frame(message: dict) -> bytes:
    """Return the wire bytes for one message (length prefix + JSON)."""
    # ensure_ascii=False skips the escape pass (labels are rarely
    # non-ASCII, and UTF-8 framing carries them either way)
    payload = json.dumps(
        message, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Raises :class:`ProtocolError` on oversized lengths, truncated
    payloads, or bodies that are not a JSON object.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between frames
        raise ProtocolError("connection closed mid-length-prefix") from error
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame length {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame") from error
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message


# ----------------------------------------------------------------------
# typed command table
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Argument:
    """One declared command parameter.

    ``types`` are the accepted JSON-decoded Python types; optional
    arguments fall back to ``default`` when absent (``None`` is a valid
    supplied value for optional arguments, standing for "use the
    server-side default").
    """

    name: str
    types: Tuple[type, ...]
    required: bool = False
    default: object = None


@dataclass(frozen=True)
class Command:
    """One declared command: name plus its argument schema."""

    name: str
    arguments: Tuple[Argument, ...] = ()
    streaming: bool = False

    def validate(self, params: dict) -> dict:
        """Return the validated, default-filled parameter dict.

        Raises :class:`ProtocolError` on unknown parameters, missing
        required ones, and type mismatches -- uniformly, before any
        handler logic runs.
        """
        if not isinstance(params, dict):
            raise ProtocolError(
                f"{self.name}: params must be an object, "
                f"got {type(params).__name__}"
            )
        declared = {argument.name: argument for argument in self.arguments}
        unknown = sorted(set(params) - set(declared))
        if unknown:
            raise ProtocolError(
                f"{self.name}: unknown parameter(s) {unknown}; "
                f"accepted: {sorted(declared)}"
            )
        validated = {}
        for argument in self.arguments:
            if argument.name not in params or params[argument.name] is None:
                if argument.required and argument.name not in params:
                    raise ProtocolError(
                        f"{self.name}: missing required parameter "
                        f"{argument.name!r}"
                    )
                if argument.required and params.get(argument.name) is None:
                    raise ProtocolError(
                        f"{self.name}: parameter {argument.name!r} must not "
                        "be null"
                    )
                validated[argument.name] = argument.default
                continue
            value = params[argument.name]
            if not isinstance(value, argument.types) or (
                # bool is an int subclass; reject it unless declared
                isinstance(value, bool)
                and bool not in argument.types
            ):
                names = "/".join(t.__name__ for t in argument.types)
                raise ProtocolError(
                    f"{self.name}: parameter {argument.name!r} must be "
                    f"{names}, got {type(value).__name__}"
                )
            validated[argument.name] = value
        return validated


def _tenant_arguments(*extra: Argument) -> Tuple[Argument, ...]:
    """The shared (tenant, token) prefix of every tenant-scoped command."""
    return (
        Argument("tenant", (str,), required=True),
        Argument("token", (str,)),
    ) + extra


#: The server's full command vocabulary.  Handlers in
#: :mod:`repro.server.app` are looked up as ``_cmd_<name>``; a command
#: present here without a handler is a server bug, not a client error.
COMMANDS: Dict[str, Command] = {
    command.name: command
    for command in (
        Command("ping"),
        Command(
            "hello",
            (
                Argument("version", (int,), required=True),
                Argument("client", (str,)),
            ),
        ),
        Command(
            "create_schema",
            _tenant_arguments(
                Argument("schema", (dict,), required=True),
                Argument("config", (dict,)),
                Argument("limits", (dict,)),
                Argument("exist_ok", (bool,), default=False),
            ),
        ),
        Command("drop_schema", _tenant_arguments()),
        Command("list_schemas"),
        Command(
            "connect",
            _tenant_arguments(
                Argument("terminals", (list,), required=True),
                Argument("objective", (str,), default="steiner"),
                Argument("side", (int,)),
                Argument("solver", (str,)),
                Argument("policy", (str,), default="auto"),
                Argument("tags", (dict,)),
            ),
        ),
        Command(
            "batch",
            _tenant_arguments(
                Argument("requests", (list,), required=True),
                Argument("objective", (str,), default="steiner"),
                Argument("side", (int,)),
                Argument("policy", (str,), default="auto"),
            ),
        ),
        Command(
            "interpret",
            _tenant_arguments(
                Argument("queries", (list,), required=True),
                Argument("objective", (str,), default="steiner"),
                Argument("side", (int,)),
            ),
        ),
        Command(
            "mutate",
            _tenant_arguments(
                Argument("edits", (list,), required=True),
                Argument("idempotency_key", (str,)),
            ),
        ),
        Command(
            "enumerate",
            _tenant_arguments(
                Argument("terminals", (list,)),
                Argument("budget", (int,)),
                Argument("max_extra", (int,)),
                Argument("continuation", (str,)),
            ),
            streaming=True,
        ),
        Command("stats"),
        Command("metrics"),
    )
}


def lookup_command(name: object) -> Command:
    """Return the declared :class:`Command`, or raise a protocol error."""
    if not isinstance(name, str) or name not in COMMANDS:
        raise ProtocolError(
            f"unknown command {name!r}; available: {sorted(COMMANDS)}"
        )
    return COMMANDS[name]
