"""Typed error envelopes: every server failure has a ``kind`` on the wire.

The server promises clients a *closed* error vocabulary: whatever goes
wrong -- a malformed frame, an unknown tenant, a rejected credential, an
admission-control bounce, or a library error raised by the service
itself -- the response envelope carries a machine-readable ``kind``
drawn from the table in ``docs/server.md``, plus the exception's type
name and message for humans.  :func:`envelope_for` is the single mapping
from Python exceptions to that vocabulary; the client raises
:class:`RemoteError` carrying the same fields, so a remote failure reads
like a local one.
"""

from __future__ import annotations

from repro.exceptions import (
    DisconnectedTerminalsError,
    NotApplicableError,
    ReproError,
    ValidationError,
)


class ServerError(ReproError):
    """Base class for server-side failures; ``kind`` names the envelope kind."""

    kind = "internal"


class ProtocolError(ServerError):
    """A frame or command the server cannot parse or validate."""

    kind = "protocol"


class UnknownTenantError(ServerError):
    """The named tenant does not exist in the :class:`SchemaRegistry`."""

    kind = "unknown-tenant"


class TenantExistsError(ServerError):
    """``create_schema`` for a name that is already registered."""

    kind = "tenant-exists"


class AuthenticationError(ServerError):
    """A missing or mismatched tenant token on an authenticated RPC."""

    kind = "auth"


class AdmissionError(ServerError):
    """The tenant's in-flight request limit is reached; retry later."""

    kind = "admission"


class QuotaError(ServerError):
    """The request exceeds the tenant's size quotas (batch size, terminals)."""

    kind = "quota"


class DeadlineError(ServerError):
    """The request exceeded the tenant's ``deadline_ms`` admission budget."""

    kind = "deadline"


class RemoteError(ReproError):
    """Client-side mirror of a server error envelope.

    Attributes
    ----------
    kind:
        The envelope's machine-readable kind (``"validation"``,
        ``"admission"``, ...).
    remote_type:
        The server-side exception's class name.
    """

    def __init__(self, kind: str, message: str, remote_type: str = "") -> None:
        super().__init__(message)
        self.kind = kind
        self.remote_type = remote_type

    def __str__(self) -> str:
        return f"[{self.kind}] {super().__str__()}"


def envelope_for(error: BaseException) -> dict:
    """Return the typed error envelope for one exception.

    Library errors keep their taxonomy (``validation`` /
    ``not-applicable`` / ``infeasible``); :class:`ServerError` subclasses
    name their own kind; anything else is ``internal`` -- the client can
    always branch on ``kind`` without parsing messages.
    """
    if isinstance(error, ServerError):
        kind = error.kind
    elif isinstance(error, ValidationError):
        kind = "validation"
    elif isinstance(error, NotApplicableError):
        kind = "not-applicable"
    elif isinstance(error, DisconnectedTerminalsError):
        kind = "infeasible"
    else:
        kind = "internal"
    return {
        "kind": kind,
        "type": type(error).__name__,
        "message": str(error),
    }
