"""Paths in graphs: shortest paths, simple-path enumeration, nonredundant paths.

Definition 4 of the paper defines a *path* as a sequence of distinct
vertices with consecutive vertices adjacent, and Definition 10 defines a
path between ``v1`` and ``v2`` to be *nonredundant* (resp. *minimum*) when
the subgraph induced by its vertices is a nonredundant (resp. minimum)
cover of ``{v1, v2}``.  Lemma 4 characterises (6,2)-chordal bipartite
graphs through these notions, so this module provides both enumeration of
simple paths and the redundancy/minimality predicates.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.exceptions import GraphError
from repro.graphs.backend import is_indexed
from repro.graphs.graph import Graph, Vertex
from repro.graphs.traversal import bfs_distances


def shortest_path(graph: Graph, source: Vertex, target: Vertex) -> Optional[List[Vertex]]:
    """Return one shortest path from ``source`` to ``target`` or ``None``.

    Ties are broken deterministically (lexicographically by ``repr`` on the
    hashable backend, by ascending id on the indexed backend).
    """
    if source not in graph or target not in graph:
        raise GraphError("both endpoints must belong to the graph")
    if source == target:
        return [source]
    if is_indexed(graph):
        # the kernel row is value-identical to IndexedGraph.bfs_parents
        # (same discovery-order tie-breaks); routed through repro.kernels
        # so every indexed parent BFS shares one implementation
        from repro.kernels.bfs import bfs_parents_row

        parents = bfs_parents_row(graph, source)
        if parents[target] < 0:
            return None
        walk = [target]
        while walk[-1] != source:
            walk.append(parents[walk[-1]])
        walk.reverse()
        return walk
    parents: Dict[Vertex, Vertex] = {}
    visited = {source}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in sorted(graph.neighbors(current), key=repr):
            if neighbor in visited:
                continue
            visited.add(neighbor)
            parents[neighbor] = current
            if neighbor == target:
                return _reconstruct(parents, source, target)
            queue.append(neighbor)
    return None


def _reconstruct(parents: Dict[Vertex, Vertex], source: Vertex, target: Vertex) -> List[Vertex]:
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def is_path(graph: Graph, vertices: Sequence[Vertex]) -> bool:
    """Return ``True`` when ``vertices`` is a path in the sense of Definition 4.

    The sequence must consist of distinct vertices of the graph with every
    consecutive pair adjacent.  A single vertex is a (length-0) path.
    """
    if not vertices:
        return False
    if len(set(vertices)) != len(vertices):
        return False
    if any(v not in graph for v in vertices):
        return False
    return all(
        graph.has_edge(vertices[i], vertices[i + 1]) for i in range(len(vertices) - 1)
    )


def path_length(vertices: Sequence[Vertex]) -> int:
    """Return the length (number of edges) of a path given as a vertex sequence."""
    if not vertices:
        raise ValueError("a path must contain at least one vertex")
    return len(vertices) - 1


def simple_paths(
    graph: Graph,
    source: Vertex,
    target: Vertex,
    max_length: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[List[Vertex]]:
    """Yield every simple path from ``source`` to ``target``.

    Parameters
    ----------
    max_length:
        When given, paths longer than this many edges are not explored.
    limit:
        When given, stop after yielding this many paths.

    Notes
    -----
    Path enumeration is exponential in the worst case; the callers inside
    this library only use it on small graphs (figure instances, randomly
    generated test cases) or with explicit caps.
    """
    if source not in graph or target not in graph:
        raise GraphError("both endpoints must belong to the graph")
    yielded = 0
    stack: List[Vertex] = [source]
    on_stack: Set[Vertex] = {source}

    def _extend() -> Iterator[List[Vertex]]:
        nonlocal yielded
        current = stack[-1]
        if current == target and len(stack) > 1 or (current == target and source == target):
            yield list(stack)
            return
        if current == target:
            yield list(stack)
            return
        if max_length is not None and len(stack) - 1 >= max_length:
            return
        for neighbor in sorted(graph.neighbors(current), key=repr):
            if neighbor in on_stack:
                continue
            stack.append(neighbor)
            on_stack.add(neighbor)
            yield from _extend()
            on_stack.discard(neighbor)
            stack.pop()

    for path in _extend():
        yield path
        yielded += 1
        if limit is not None and yielded >= limit:
            return


def is_nonredundant_path(graph: Graph, vertices: Sequence[Vertex]) -> bool:
    """Return ``True`` when the path is nonredundant (Definition 10).

    A path between ``v1`` and ``v2`` is nonredundant when the subgraph
    induced by its vertices, with any single internal vertex removed, is no
    longer a connected subgraph containing both endpoints.
    """
    if not is_path(graph, vertices):
        return False
    if len(vertices) <= 2:
        return True
    endpoints = {vertices[0], vertices[-1]}
    induced = graph.subgraph(vertices)
    for vertex in vertices:
        if vertex in endpoints:
            continue
        reduced = induced.without_vertex(vertex)
        if _connects(reduced, vertices[0], vertices[-1]):
            return False
    return True


def is_minimum_path(graph: Graph, vertices: Sequence[Vertex]) -> bool:
    """Return ``True`` when no path between the same endpoints uses fewer vertices.

    Since every path between ``u`` and ``v`` with ``k`` vertices induces a
    connected subgraph containing both, the minimum number of vertices over
    all covers of ``{u, v}`` equals the shortest-path distance plus one.
    """
    if not is_path(graph, vertices):
        return False
    source, target = vertices[0], vertices[-1]
    distances = bfs_distances(graph, source)
    if target not in distances:
        return False
    return len(vertices) == distances[target] + 1


def nonredundant_paths(
    graph: Graph,
    source: Vertex,
    target: Vertex,
    max_length: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[List[Vertex]]:
    """Yield the nonredundant simple paths between two vertices.

    Equivalent to filtering :func:`simple_paths` by
    :func:`is_nonredundant_path`; used by the tests of Lemma 4.
    """
    for path in simple_paths(graph, source, target, max_length=max_length):
        if is_nonredundant_path(graph, path):
            yield path
            if limit is not None:
                limit -= 1
                if limit <= 0:
                    return


def induced_path_exists(graph: Graph, length: int) -> bool:
    """Return ``True`` when the graph contains an induced path with ``length`` edges."""
    vertices = list(graph.vertices())

    def _search(path: List[Vertex], members: Set[Vertex]) -> bool:
        if len(path) - 1 == length:
            return True
        current = path[-1]
        for neighbor in graph.neighbors(current):
            if neighbor in members:
                continue
            # induced: the new vertex may only be adjacent to the last one
            if any(graph.has_edge(neighbor, other) for other in path[:-1]):
                continue
            path.append(neighbor)
            members.add(neighbor)
            if _search(path, members):
                return True
            members.discard(neighbor)
            path.pop()
        return False

    for start in vertices:
        if _search([start], {start}):
            return True
    return False


def _connects(graph: Graph, source: Vertex, target: Vertex) -> bool:
    if source not in graph or target not in graph:
        return False
    return target in bfs_distances(graph, source)
