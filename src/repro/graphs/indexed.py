"""Fast integer-indexed graph backend.

:class:`IndexedGraph` is a read-optimised, immutable representation of a
finite simple undirected graph over the contiguous vertex ids
``0 .. n - 1``:

* **CSR adjacency**: a flat ``indices`` array plus an ``indptr`` offset
  array (the classical compressed-sparse-row layout), with a derived
  per-vertex row cache for cheap Python iteration;
* **bitset rows**: ``bits[v]`` is a Python integer whose ``u``-th bit is
  set exactly when ``{u, v}`` is an edge, which makes adjacency tests,
  clique checks and PEO verification branch-free big-int operations;
* an optional ``sides`` array carrying the bipartition labels of a
  :class:`~repro.graphs.bipartite.BipartiteGraph`.

The CSR arrays are the *canonical* storage; the bitset rows and the
per-vertex row cache are **lazily derived**.  This is what lets schemas
reach 10^5 - 10^6 vertices: big-int bitset rows cost O(n^2 / 16) bytes in
the worst case, so a graph consumed only through the CSR surface (the
kernel backends of :mod:`repro.kernels.backend`, the shared-memory
transport) never pays for them.  The first call to a bitset primitive
(``has_edge``, ``is_clique`` ...) materialises ``bits`` once; the first
Python-loop traversal materialises ``_rows`` once.  ``indptr`` /
``indices`` / ``sides`` may be any buffer-protocol integer storage --
``array`` objects, ``memoryview`` casts over a shared-memory segment, or
(in the numpy kernel lane) ``np.frombuffer`` views over the same bytes.

The class implements the read-only part of the :class:`~repro.graphs.graph.Graph`
API (``neighbors``, ``vertices``, ``has_edge``, ``subgraph`` ...), so every
algorithm in the library that does not mutate its input runs unchanged on
either backend; the hot paths (LexBFS, MCS, PEO verification, BFS, greedy
elimination) additionally special-case :class:`IndexedGraph` with
integer-array inner loops.

The mapping layer is lossless: :func:`to_indexed` converts any
hashable-vertex :class:`Graph` (or :class:`BipartiteGraph`) into an
``(IndexedGraph, GraphIndex)`` pair, and :func:`from_indexed` reconstructs
an equal graph, including the bipartition when present.  Vertex ids are
assigned in ``repr``-sorted label order, so "ascending id order" on the
indexed side coincides with the library's deterministic
``sorted_vertices()`` order on the hashable side.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import GraphError

Edge = Tuple[int, int]


class GraphIndex:
    """Lossless bijection between hashable vertex labels and integer ids.

    ``labels[i]`` is the original vertex carried by id ``i`` and
    ``ids[label]`` inverts it.  Instances are produced by :func:`to_indexed`
    and consumed by :func:`from_indexed` and by the engine layer when it
    translates terminal sets and covers between the two backends.
    """

    __slots__ = ("labels", "ids")

    def __init__(self, labels: Sequence) -> None:
        self.labels: Tuple = tuple(labels)
        self.ids: Dict = {label: index for index, label in enumerate(self.labels)}
        if len(self.ids) != len(self.labels):
            raise GraphError("vertex labels must be distinct")

    def __len__(self) -> int:
        return len(self.labels)

    def __getstate__(self) -> Tuple:
        # ids is a pure derivative of labels; transporting only the label
        # tuple halves the pickle payload for worker dispatch
        return self.labels

    def __setstate__(self, state: Tuple) -> None:
        self.labels = tuple(state)
        self.ids = {label: index for index, label in enumerate(self.labels)}

    def encode(self, vertices: Iterable) -> List[int]:
        """Map original vertex labels to integer ids (raises on unknowns)."""
        try:
            return [self.ids[v] for v in vertices]
        except KeyError as error:
            raise GraphError(f"vertex {error.args[0]!r} is not in the index") from None

    def decode(self, ids: Iterable[int]) -> List:
        """Map integer ids back to the original vertex labels."""
        return [self.labels[i] for i in ids]

    def decode_set(self, ids: Iterable[int]) -> Set:
        """Map integer ids back to a set of original labels."""
        return {self.labels[i] for i in ids}


class IndexedGraph:
    """An immutable simple undirected graph over vertex ids ``0 .. n - 1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` id pairs; duplicates are ignored, self-loops
        rejected.
    sides:
        Optional sequence assigning each id to bipartition side 1 or 2
        (``None`` for plain graphs).

    Examples
    --------
    >>> g = IndexedGraph(3, edges=[(0, 1), (1, 2)])
    >>> sorted(g.neighbors(1))
    [0, 2]
    >>> g.has_edge(0, 2)
    False
    """

    __slots__ = ("n", "indptr", "indices", "sides", "_bits", "_rows_cache", "_edge_count")

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge] = (),
        sides: Optional[Sequence[int]] = None,
    ) -> None:
        if n < 0:
            raise GraphError("vertex count must be non-negative")
        self.n = n
        # adjacency-list build: O(|E|) time and memory.  The previous
        # bits-first build was O(n^2 / 16) memory in the worst case
        # (big-int rows), which capped schemas near 10^3 vertices; the
        # bitset rows are now derived lazily (see the `bits` property).
        rows: List[List[int]] = [[] for _ in range(n)]
        for u, v in edges:
            if u == v:
                raise GraphError(f"self-loops are not allowed (vertex {u!r})")
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) is out of range for n={n}")
            rows[u].append(v)
            rows[v].append(u)
        edge_count = 0
        for i, row in enumerate(rows):
            if row:
                deduped = sorted(set(row))
                rows[i] = deduped
                edge_count += len(deduped)
        self._rows_cache = rows
        self._edge_count = edge_count // 2
        self._bits = None
        indptr = array("l", [0] * (n + 1))
        total = 0
        for i, row in enumerate(rows):
            total += len(row)
            indptr[i + 1] = total
        self.indptr = indptr
        self.indices = array("l", [u for row in rows for u in row])
        if sides is not None:
            sides = array("b", sides)
            if len(sides) != n:
                raise GraphError("sides must assign every vertex")
            if any(s not in (1, 2) for s in sides):
                raise GraphError("sides must be 1 or 2")
        self.sides = sides

    # ------------------------------------------------------------------
    # lazily derived structures
    # ------------------------------------------------------------------
    @property
    def bits(self) -> List[int]:
        """The big-int bitset rows, materialised on first use.

        ``bits[v]`` has bit ``u`` set exactly when ``{u, v}`` is an edge.
        Worst-case O(n^2 / 16) bytes, so large CSR-only consumers (the
        kernel backends, the shm transport) must not touch this property.
        """
        if self._bits is None:
            bits = [0] * self.n
            for u, row in enumerate(self._rows):
                mask = 0
                for v in row:
                    mask |= 1 << v
                bits[u] = mask
            self._bits = bits
        return self._bits

    @property
    def _rows(self) -> List[List[int]]:
        """The per-vertex adjacency-list cache, materialised on first use.

        Derived from the canonical CSR arrays; the Python-loop hot paths
        (array-lane BFS, elimination, LexBFS/MCS) iterate these lists.
        """
        rows = self._rows_cache
        if rows is None:
            indptr, indices = self.indptr, self.indices
            rows = [
                list(indices[indptr[u]: indptr[u + 1]]) for u in range(self.n)
            ]
            self._rows_cache = rows
        return rows

    # ------------------------------------------------------------------
    # fast primitives (id-based)
    # ------------------------------------------------------------------
    def row(self, vertex: int) -> List[int]:
        """Return the CSR adjacency row of ``vertex`` (ascending ids, shared list)."""
        return self._rows[vertex]

    def bfs_levels(self, source: int, alive: Optional[Sequence[int]] = None) -> List[int]:
        """Return BFS distances from ``source`` as a dense list (-1 = unreachable).

        ``alive`` optionally restricts the traversal to vertices with a
        truthy entry (the induced-subgraph view used by the elimination
        procedures); the source must be alive.
        """
        dist = [-1] * self.n
        dist[source] = 0
        queue = deque([source])
        rows = self._rows
        if alive is None:
            while queue:
                current = queue.popleft()
                level = dist[current] + 1
                for neighbor in rows[current]:
                    if dist[neighbor] < 0:
                        dist[neighbor] = level
                        queue.append(neighbor)
        else:
            while queue:
                current = queue.popleft()
                level = dist[current] + 1
                for neighbor in rows[current]:
                    if alive[neighbor] and dist[neighbor] < 0:
                        dist[neighbor] = level
                        queue.append(neighbor)
        return dist

    def bfs_parents(self, source: int) -> List[int]:
        """Return a BFS parent array from ``source`` (-1 = unreached, source is its own parent)."""
        parents = [-1] * self.n
        parents[source] = source
        queue = deque([source])
        rows = self._rows
        while queue:
            current = queue.popleft()
            for neighbor in rows[current]:
                if parents[neighbor] < 0:
                    parents[neighbor] = current
                    queue.append(neighbor)
        return parents

    def component_of(self, vertex: int, alive: Optional[Sequence[int]] = None) -> List[int]:
        """Return the ids of the connected component containing ``vertex``."""
        dist = self.bfs_levels(vertex, alive=alive)
        return [i for i, d in enumerate(dist) if d >= 0]

    def side_of_id(self, vertex: int) -> int:
        """Return the bipartition side (1 or 2) of an id; raises on plain graphs."""
        if self.sides is None:
            raise GraphError("this IndexedGraph carries no bipartition")
        return self.sides[vertex]

    # ------------------------------------------------------------------
    # Graph read protocol (hashable-vertex compatible, ids are the labels)
    # ------------------------------------------------------------------
    def vertices(self) -> Set[int]:
        """Return the vertex set ``{0, ..., n - 1}`` (fresh set)."""
        return set(range(self.n))

    def sorted_vertices(self) -> List[int]:
        """Return ids in ascending order (the deterministic scan order)."""
        return list(range(self.n))

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges, each reported once with ``u < v``.

        Reads the canonical CSR arrays directly (``_rows`` is the derived
        iteration cache used by the traversal hot loops).
        """
        indptr, indices = self.indptr, self.indices
        for u in range(self.n):
            for k in range(indptr[u], indptr[u + 1]):
                v = indices[k]
                if v > u:
                    yield (u, v)

    def edge_set(self) -> Set[frozenset]:
        """Return the edge set as frozensets (order-independent)."""
        return {frozenset(edge) for edge in self.edges()}

    def neighbors(self, vertex: int) -> Set[int]:
        """Return the neighbour set of ``vertex`` (fresh set, safe to mutate)."""
        self._check(vertex)
        return set(self._rows[vertex])

    def adjacency(self, vertex: int) -> Set[int]:
        """Alias of :meth:`neighbors` matching the paper's ``Adj`` notation."""
        return self.neighbors(vertex)

    def neighborhood_of_set(self, vertices: Iterable[int]) -> Set[int]:
        """Return ``Adj(W)``: vertices adjacent to at least one member of ``W``."""
        mask = 0
        for vertex in vertices:
            self._check(vertex)
            mask |= self.bits[vertex]
        return set(bit_members(mask))

    def private_neighbors(self, vertex: int) -> Set[int]:
        """Return ``Adj*(v)``: the vertices adjacent *only* to ``vertex``."""
        self._check(vertex)
        only = 1 << vertex
        return {u for u in self._rows[vertex] if self.bits[u] == only}

    def has_vertex(self, vertex) -> bool:
        """Return ``True`` when ``vertex`` is a valid id of this graph."""
        return isinstance(vertex, int) and 0 <= vertex < self.n

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when ``{u, v}`` is an edge (O(1) bitset test)."""
        return (
            isinstance(u, int)
            and isinstance(v, int)
            and 0 <= u < self.n
            and 0 <= v < self.n
            and bool(self.bits[u] >> v & 1)
        )

    def degree(self, vertex: int) -> int:
        """Return the number of neighbours of ``vertex``."""
        self._check(vertex)
        return self.indptr[vertex + 1] - self.indptr[vertex]

    def number_of_vertices(self) -> int:
        """Return ``|V|``."""
        return self.n

    def number_of_edges(self) -> int:
        """Return ``|A|``."""
        return self._edge_count

    def is_clique(self, vertices: Iterable[int]) -> bool:
        """Return ``True`` when ``vertices`` are pairwise adjacent (bitset test)."""
        members = list(vertices)
        mask = 0
        for vertex in members:
            mask |= 1 << vertex
        for vertex in members:
            required = mask & ~(1 << vertex)
            if self.bits[vertex] & required != required:
                return False
        return True

    def subgraph(self, vertices: Iterable[int]):
        """Return the induced subgraph as a mutable :class:`Graph` over the same ids.

        Vertex identity is preserved (no re-indexing), so covers and trees
        computed on the subgraph can be mapped back through the same
        :class:`GraphIndex`.  Unknown ids are ignored, mirroring
        :meth:`Graph.subgraph`.
        """
        from repro.graphs.graph import Graph

        keep = {v for v in vertices if isinstance(v, int) and 0 <= v < self.n}
        induced = Graph(vertices=keep)
        for u in keep:
            for v in self._rows[u]:
                if v > u and v in keep:
                    induced.add_edge(u, v)
        return induced

    def without_vertices(self, vertices: Iterable[int]):
        """Return the induced subgraph on the complement of ``vertices`` (a :class:`Graph`)."""
        removed = set(vertices)
        return self.subgraph(v for v in range(self.n) if v not in removed)

    def without_vertex(self, vertex: int):
        """Return the induced subgraph on ``V - {vertex}`` (a :class:`Graph`)."""
        return self.without_vertices([vertex])

    def to_graph(self):
        """Return a mutable :class:`Graph` copy using the ids as vertex labels."""
        from repro.graphs.graph import Graph

        return Graph(vertices=range(self.n), edges=self.edges())

    def copy(self) -> "IndexedGraph":
        """Return ``self`` -- :class:`IndexedGraph` is immutable."""
        return self

    # ------------------------------------------------------------------
    # CSR adoption (worker transport, zero-copy attach)
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(
        cls,
        n: int,
        indptr,
        indices,
        sides=None,
    ) -> "IndexedGraph":
        """Build a graph directly from CSR arrays, without an edge pass.

        ``indptr``/``indices`` (and optionally ``sides``) may be
        ``array`` objects, ``memoryview`` casts over a shared-memory
        buffer (the zero-copy transport of :mod:`repro.kernels.shm`), or
        any integer sequences; they are adopted as-is in O(1) -- the
        bitset rows and the per-vertex row cache are lazily derived on
        first use, so a worker that consumes the graph purely through a
        CSR kernel backend never materialises them at all.  The arrays
        must describe a symmetric simple adjacency with ascending rows
        (both directions present); this is guaranteed for arrays read
        back from another :class:`IndexedGraph` and is not re-validated
        here.
        """
        graph = cls.__new__(cls)
        graph.n = n
        graph.indptr = indptr
        graph.indices = indices
        graph.sides = sides
        graph._derive_from_csr()
        return graph

    def _derive_from_csr(self) -> None:
        """Reset the lazily derived structures after adopting CSR arrays.

        Symmetric adjacency means ``len(indices)`` counts each edge twice,
        so the edge count is available without a scan; the bitset rows and
        the row cache stay unmaterialised until a consumer asks.
        """
        self._bits = None
        self._rows_cache = None
        self._edge_count = len(self.indices) // 2

    def nbytes(self) -> int:
        """Return the canonical (CSR + sides) storage footprint in bytes.

        Counts only the buffer-backed arrays -- the lazily derived bitset
        rows and row cache are excluded, matching what the shm transport
        ships and what the memory-budget accounting of
        :class:`~repro.engine.cache.SchemaCache` needs to bound.
        """
        total = 0
        for buf in (self.indptr, self.indices, self.sides):
            if buf is None:
                continue
            try:
                total += memoryview(buf).nbytes
            except TypeError:  # adopted plain sequences: estimate at 8B/entry
                total += 8 * len(buf)
        return total

    # ------------------------------------------------------------------
    # pickling (worker transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # ship only the canonical CSR arrays (compact, array-typed); the
        # bitset rows and the per-vertex row cache are derived structures
        # whose pickled size would dwarf the CSR payload, and rebuilding
        # them from CSR is linear -- this is what makes shipping schemas
        # to pool workers cheap
        # a graph adopted from shared memory (from_csr over memoryviews)
        # re-materialises plain arrays: views into another process's
        # segment are not picklable and must not outlive it anyway
        return {
            "n": self.n,
            "indptr": self.indptr if isinstance(self.indptr, array) else array("q", self.indptr),
            "indices": self.indices if isinstance(self.indices, array) else array("q", self.indices),
            "sides": self.sides if self.sides is None or isinstance(self.sides, array) else array("b", self.sides),
        }

    def __setstate__(self, state: dict) -> None:
        self.n = state["n"]
        self.indptr = state["indptr"]
        self.indices = state["indices"]
        self.sides = state["sides"]
        self._derive_from_csr()

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex) -> bool:
        return self.has_vertex(vertex)

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndexedGraph):
            return NotImplemented
        # the CSR arrays are canonical (ascending rows), so comparing them
        # avoids materialising the lazy bitset rows on large graphs
        return (
            self.n == other.n
            and list(self.indptr) == list(other.indptr)
            and list(self.indices) == list(other.indices)
            and (self.sides is None) == (other.sides is None)
            and (self.sides is None or list(self.sides) == list(other.sides))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "bipartite " if self.sides is not None else ""
        return (
            f"IndexedGraph({kind}|V|={self.n}, |A|={self._edge_count})"
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check(self, vertex: int) -> None:
        if not (isinstance(vertex, int) and 0 <= vertex < self.n):
            raise GraphError(f"vertex {vertex!r} is not in the graph")


# ----------------------------------------------------------------------
# mapping layer
# ----------------------------------------------------------------------
def to_indexed(graph) -> Tuple[IndexedGraph, GraphIndex]:
    """Convert a hashable-vertex :class:`Graph` into ``(IndexedGraph, GraphIndex)``.

    Ids follow the graph's deterministic ``sorted_vertices()`` order, so the
    ascending-id scan on the indexed side visits the same vertices in the
    same order as the repr-sorted scans used throughout the library.  The
    bipartition of a :class:`~repro.graphs.bipartite.BipartiteGraph` is
    preserved in :attr:`IndexedGraph.sides`.
    """
    from repro.graphs.bipartite import BipartiteGraph

    index = GraphIndex(graph.sorted_vertices())
    ids = index.ids
    edges = [(ids[u], ids[v]) for u, v in graph.edges()]
    sides = None
    if isinstance(graph, BipartiteGraph):
        sides = [graph.side_of(label) for label in index.labels]
    return IndexedGraph(len(index), edges=edges, sides=sides), index


def from_indexed(indexed: IndexedGraph, index: GraphIndex):
    """Reconstruct a :class:`Graph` (or :class:`BipartiteGraph`) from an indexed pair.

    The round trip ``from_indexed(*to_indexed(g)) == g`` holds for every
    graph, including the bipartition labels.
    """
    from repro.graphs.bipartite import BipartiteGraph
    from repro.graphs.graph import Graph

    if len(index) != indexed.n:
        raise GraphError("index size does not match the indexed graph")
    labels = index.labels
    edges = [(labels[u], labels[v]) for u, v in indexed.edges()]
    if indexed.sides is not None:
        left = [labels[i] for i in range(indexed.n) if indexed.sides[i] == 1]
        right = [labels[i] for i in range(indexed.n) if indexed.sides[i] == 2]
        return BipartiteGraph(left=left, right=right, edges=edges)
    return Graph(vertices=labels, edges=edges)


# ----------------------------------------------------------------------
# indexed elimination (the shared inner loop of Algorithms 1 and 2)
# ----------------------------------------------------------------------
def indexed_elimination_cover(
    graph: IndexedGraph,
    terminals: Iterable[int],
    ordering: Optional[Sequence[int]] = None,
    removal_batches: bool = False,
    restrict: Optional[Iterable[int]] = None,
) -> Set[int]:
    """Greedy elimination of redundant vertices on the indexed backend.

    Semantically identical to
    :func:`repro.core.covers.greedy_elimination_cover` (and, with
    ``removal_batches=True``, to Step 2 of Algorithm 1): starting from the
    connected component containing the terminals, scan ``ordering`` and
    drop each vertex (plus its private neighbours in batch mode) whenever
    the terminals remain connected without it; return the terminals'
    component of the surviving graph.

    The hot loop runs on an ``alive`` byte array with CSR adjacency rows --
    no per-step subgraph objects -- and short-circuits the BFS for alive
    degree <= 1 vertices in single-removal mode (removing a leaf can never
    disconnect the remaining vertices).

    Parameters
    ----------
    ordering:
        Elimination order over ids; defaults to ascending id order, which
        matches the hashable backend's repr-sorted default through the
        :func:`to_indexed` id assignment.
    restrict:
        Optional vertex subset to operate in (the caller's precomputed
        component); defaults to the whole graph.
    """
    from repro.exceptions import DisconnectedTerminalsError, ValidationError

    terminal_ids = sorted(set(terminals))
    if not terminal_ids:
        raise ValidationError("the terminal set must be non-empty")
    for t in terminal_ids:
        graph._check(t)

    base: Optional[List[int]] = None
    if restrict is not None:
        base = [0] * graph.n
        for v in restrict:
            base[v] = 1
        for t in terminal_ids:
            if not base[t]:
                raise DisconnectedTerminalsError("the terminals cannot be covered")
    root = terminal_ids[0]
    component = graph.component_of(root, alive=base)
    alive = [0] * graph.n
    for v in component:
        alive[v] = 1
    if any(not alive[t] for t in terminal_ids):
        raise DisconnectedTerminalsError("the terminals cannot be covered")

    rows = graph._rows
    alive_degree = [0] * graph.n
    for v in component:
        alive_degree[v] = sum(alive[u] for u in rows[v])

    terminal_set = set(terminal_ids)
    needed = len(terminal_ids)
    if ordering is None:
        ordering = component  # ascending ids: component_of returns sorted ids

    for vertex in ordering:
        if not alive[vertex] or vertex in terminal_set:
            continue
        if removal_batches:
            removal = [vertex]
            bit = 1 << vertex
            for u in rows[vertex]:
                if alive[u] and all(
                    not alive[w] or w == vertex for w in rows[u]
                ):
                    removal.append(u)
            if any(u in terminal_set for u in removal):
                continue
            # the remainder is never empty here: terminals are alive and
            # terminal-touching batches were skipped above
            for u in removal:
                alive[u] = 0
            if _terminals_reachable(rows, alive, root, terminal_set, needed):
                for u in removal:
                    for w in rows[u]:
                        alive_degree[w] -= 1
            else:
                for u in removal:
                    alive[u] = 1
        else:
            alive[vertex] = 0
            if alive_degree[vertex] <= 1 or _terminals_reachable(
                rows, alive, root, terminal_set, needed
            ):
                for w in rows[vertex]:
                    alive_degree[w] -= 1
            else:
                alive[vertex] = 1

    # final cover: the terminals' component of the surviving graph
    cover: Set[int] = set()
    queue = deque([root])
    cover.add(root)
    while queue:
        current = queue.popleft()
        for neighbor in rows[current]:
            if alive[neighbor] and neighbor not in cover:
                cover.add(neighbor)
                queue.append(neighbor)
    return cover


def _terminals_reachable(
    rows: List[List[int]],
    alive: List[int],
    root: int,
    terminal_set: Set[int],
    needed: int,
) -> bool:
    """BFS from ``root`` over alive vertices; are all terminals reached?"""
    seen = [0] * len(rows)
    seen[root] = 1
    found = 1  # root is a terminal
    queue = deque([root])
    while queue:
        current = queue.popleft()
        for neighbor in rows[current]:
            if alive[neighbor] and not seen[neighbor]:
                seen[neighbor] = 1
                if neighbor in terminal_set:
                    found += 1
                    if found == needed:
                        return True
                queue.append(neighbor)
    return found == needed


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` in ascending order.

    The shared lowest-set-bit loop behind every bitset row in the indexed
    backend (adjacency rows, PEO pivots, mask components).
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bit_members(mask: int) -> List[int]:
    """Return the indices of the set bits of ``mask`` as an ascending list."""
    return list(iter_bits(mask))
