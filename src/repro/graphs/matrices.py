"""Matrix views of graphs.

Adjacency and biadjacency matrices are convenient both for quick structural
sanity checks in the tests and for the benchmark harnesses that report
instance statistics (density, degree distribution).  They are not used by
the core algorithms, which all work directly on the adjacency-set
representation.

numpy is an *optional* dependency of this library (``dependencies = []``;
install the ``[numpy]`` extra to get it).  This module therefore imports
it lazily: the matrix constructors raise a typed
:class:`~repro.exceptions.MissingDependencyError` when numpy is absent,
while :func:`density` and :func:`degree_histogram` keep working without
it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import MissingDependencyError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph, Vertex


def _numpy(feature: str):
    """Import and return numpy, or raise the typed optional-dep error."""
    try:
        import numpy as np
    except ImportError:
        raise MissingDependencyError("numpy", feature) from None
    return np


def adjacency_matrix(graph: Graph, order: Sequence[Vertex] = None) -> Tuple["np.ndarray", List[Vertex]]:
    """Return the 0/1 adjacency matrix and the vertex order used.

    Parameters
    ----------
    order:
        Optional explicit vertex ordering; defaults to the deterministic
        ``sorted_vertices`` order.
    """
    np = _numpy("adjacency_matrix")
    vertices = list(order) if order is not None else graph.sorted_vertices()
    index = {v: i for i, v in enumerate(vertices)}
    matrix = np.zeros((len(vertices), len(vertices)), dtype=np.int8)
    for u, v in graph.edges():
        if u in index and v in index:
            matrix[index[u], index[v]] = 1
            matrix[index[v], index[u]] = 1
    return matrix, vertices


def biadjacency_matrix(
    graph: BipartiteGraph,
    row_order: Sequence[Vertex] = None,
    column_order: Sequence[Vertex] = None,
) -> Tuple["np.ndarray", List[Vertex], List[Vertex]]:
    """Return the biadjacency matrix (rows = ``V1``, columns = ``V2``)."""
    np = _numpy("biadjacency_matrix")
    rows = list(row_order) if row_order is not None else sorted(graph.left(), key=repr)
    columns = (
        list(column_order)
        if column_order is not None
        else sorted(graph.right(), key=repr)
    )
    row_index = {v: i for i, v in enumerate(rows)}
    column_index = {v: j for j, v in enumerate(columns)}
    matrix = np.zeros((len(rows), len(columns)), dtype=np.int8)
    for u, v in graph.edges():
        if graph.side_of(u) == 2:
            u, v = v, u
        if u in row_index and v in column_index:
            matrix[row_index[u], column_index[v]] = 1
    return matrix, rows, columns


def density(graph: Graph) -> float:
    """Return ``|A| / C(|V|, 2)`` (0.0 for graphs with fewer than 2 vertices)."""
    n = graph.number_of_vertices()
    if n < 2:
        return 0.0
    return graph.number_of_edges() / (n * (n - 1) / 2)


def degree_histogram(graph: Graph) -> List[int]:
    """Return a list ``h`` where ``h[d]`` counts the vertices of degree ``d``."""
    degrees = [graph.degree(v) for v in graph.vertices()]
    if not degrees:
        return []
    histogram = [0] * (max(degrees) + 1)
    for d in degrees:
        histogram[d] += 1
    return histogram
