"""Spanning trees.

Both Algorithm 1 (Theorem 3, Step 3) and Algorithm 2 (Theorem 5, Step 2)
end by extracting a spanning tree of the surviving cover: once the vertex
set of the cover is minimum, *any* spanning tree of the induced subgraph is
a (pseudo-)Steiner tree, because trees on a fixed vertex set all have the
same number of vertices.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Set

from repro.exceptions import GraphError
from repro.graphs.graph import Graph, Vertex
from repro.graphs.traversal import is_connected


def spanning_tree(graph: Graph, root: Optional[Vertex] = None) -> Graph:
    """Return a BFS spanning tree of a connected graph.

    Parameters
    ----------
    root:
        Optional root vertex; defaults to the smallest vertex by ``repr``.

    Raises
    ------
    GraphError
        If the graph is empty or not connected.
    """
    if graph.number_of_vertices() == 0:
        raise GraphError("cannot build a spanning tree of the empty graph")
    if not is_connected(graph):
        raise GraphError("spanning_tree requires a connected graph")
    if root is None:
        root = graph.sorted_vertices()[0]
    tree = Graph(vertices=[root])
    visited = {root}
    queue = deque([root])
    while queue:
        current = queue.popleft()
        for neighbor in sorted(graph.neighbors(current), key=repr):
            if neighbor not in visited:
                visited.add(neighbor)
                tree.add_edge(current, neighbor)
                queue.append(neighbor)
    return tree


def spanning_forest(graph: Graph) -> Graph:
    """Return a spanning forest (one BFS tree per connected component)."""
    forest = Graph(vertices=graph.vertices())
    visited: Set[Vertex] = set()
    for start in graph.sorted_vertices():
        if start in visited:
            continue
        queue = deque([start])
        visited.add(start)
        while queue:
            current = queue.popleft()
            for neighbor in sorted(graph.neighbors(current), key=repr):
                if neighbor not in visited:
                    visited.add(neighbor)
                    forest.add_edge(current, neighbor)
                    queue.append(neighbor)
    return forest


def is_tree(graph: Graph) -> bool:
    """Return ``True`` when the graph is connected and acyclic."""
    n = graph.number_of_vertices()
    if n == 0:
        return False
    return is_connected(graph) and graph.number_of_edges() == n - 1


def is_tree_over(graph: Graph, tree: Graph, terminals: Iterable[Vertex]) -> bool:
    """Return ``True`` when ``tree`` is a subgraph of ``graph``, is a tree, and spans ``terminals``.

    This is the validity condition of Definition 8: a candidate Steiner
    tree ``T = (V', A')`` must be a subgraph of ``G`` that is a tree with
    ``P`` included in ``V'``.
    """
    terminal_list = list(terminals)
    if not is_tree(tree):
        return False
    for vertex in tree.vertices():
        if vertex not in graph:
            return False
    for u, v in tree.edges():
        if not graph.has_edge(u, v):
            return False
    return all(t in tree for t in terminal_list)
