"""Maximal cliques (Bron-Kerbosch with pivoting).

Conformality of a hypergraph -- and through Theorem 1 the
``V_i``-conformality of a bipartite graph -- is defined in terms of the
cliques of the primal graph ``G(H)``: every clique must be contained in
some hyperedge.  Because a set is contained in a hyperedge iff every
*maximal* clique containing it is... is not quite true, the definitional
test actually only needs the maximal cliques: every clique is contained in
a maximal clique, and a hyperedge containing the maximal clique contains
the sub-clique as well; conversely if some clique is in no hyperedge then
in particular one of the maximal cliques containing it is in no hyperedge
only if ... -- the precise statement used is: *H is conformal iff every
maximal clique of G(H) is a hyperedge-subset* (Berge), and that is what
:mod:`repro.hypergraphs.conformality` checks with the enumeration below.
"""

from __future__ import annotations

from typing import Iterator, Set

from repro.graphs.graph import Graph, Vertex


def maximal_cliques(graph: Graph) -> Iterator[Set[Vertex]]:
    """Yield every maximal clique of ``graph`` (Bron-Kerbosch with pivoting).

    The enumeration is exponential in the worst case but fast on the sparse
    schema-like graphs used throughout the library.
    """
    vertices = graph.vertices()
    if not vertices:
        return

    def _expand(r: Set[Vertex], p: Set[Vertex], x: Set[Vertex]) -> Iterator[Set[Vertex]]:
        if not p and not x:
            yield set(r)
            return
        # choose a pivot maximising |P ∩ N(pivot)| to prune branches
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda v: len(graph.neighbors(v) & p))
        candidates = p - graph.neighbors(pivot)
        for vertex in list(candidates):
            neighbors = graph.neighbors(vertex)
            yield from _expand(r | {vertex}, p & neighbors, x & neighbors)
            p.discard(vertex)
            x.add(vertex)

    yield from _expand(set(), set(vertices), set())


def all_cliques(graph: Graph, max_size: int = None) -> Iterator[Set[Vertex]]:
    """Yield every non-empty clique (not only maximal ones).

    Used by the strictest form of the definitional conformality check and
    by property-based tests on small graphs.
    """
    from itertools import combinations

    for clique in maximal_cliques(graph):
        members = sorted(clique, key=repr)
        top = len(members) if max_size is None else min(len(members), max_size)
        for size in range(1, top + 1):
            for subset in combinations(members, size):
                yield set(subset)


def maximum_clique_size(graph: Graph) -> int:
    """Return the size of a largest clique (0 for the empty graph)."""
    best = 0
    for clique in maximal_cliques(graph):
        best = max(best, len(clique))
    return best
