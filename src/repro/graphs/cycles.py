"""Cycles and chords.

Definition 4 of the paper: a *cycle* is a path of length 3 or more whose
endpoints are adjacent (its length is the number of vertices), and a
*chord* is an edge connecting two non-consecutive vertices of the cycle.
The ``(m, n)``-chordality notions are phrased entirely in terms of cycles
and their chords, so this module provides:

* enumeration of the simple cycles of a graph (each reported once),
* chord computation for a given cycle,
* convenience predicates ("does a cycle of length >= m with fewer than n
  chords exist?") used by the definitional chordality checkers,
* `has_cycle` / `is_forest` for the (4,1)-chordal == acyclic case.

Cycle enumeration is exponential in general; it is only used on the small
and medium instances where the definitional checks serve as ground truth
against which the efficient algorithms are validated.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import GraphError
from repro.graphs.graph import Graph, Vertex


def is_cycle(graph: Graph, vertices: Sequence[Vertex]) -> bool:
    """Return ``True`` when ``vertices`` is a cycle in the sense of Definition 4.

    The sequence must be a path of distinct vertices of length at least 3
    (i.e. at least 4 vertices... no: the paper counts the cycle length as
    the number of vertices ``n`` and requires a path of length 3 or more,
    meaning at least 4 vertices for paths -- but a cycle of length 3 is a
    triangle).  Concretely: at least 3 distinct vertices, consecutive ones
    adjacent, and the last adjacent to the first.
    """
    if len(vertices) < 3:
        return False
    if len(set(vertices)) != len(vertices):
        return False
    if any(v not in graph for v in vertices):
        return False
    closed = all(
        graph.has_edge(vertices[i], vertices[(i + 1) % len(vertices)])
        for i in range(len(vertices))
    )
    return closed


def cycle_chords(graph: Graph, cycle: Sequence[Vertex]) -> List[Tuple[Vertex, Vertex]]:
    """Return the chords of ``cycle``: edges between non-consecutive cycle vertices.

    The cycle is given as a vertex sequence (without repeating the first
    vertex at the end).  Each chord is reported once.
    """
    if not is_cycle(graph, cycle):
        raise GraphError("the given vertex sequence is not a cycle of the graph")
    n = len(cycle)
    chords = []
    for i in range(n):
        for j in range(i + 1, n):
            if j == i + 1 or (i == 0 and j == n - 1):
                continue
            if graph.has_edge(cycle[i], cycle[j]):
                chords.append((cycle[i], cycle[j]))
    return chords


def cycle_distance(cycle: Sequence[Vertex], u: Vertex, v: Vertex) -> int:
    """Return the distance between two vertices measured along the cycle."""
    n = len(cycle)
    try:
        i = cycle.index(u)
        j = cycle.index(v)
    except ValueError as exc:
        raise GraphError("both vertices must lie on the cycle") from exc
    around = abs(i - j)
    return min(around, n - around)


def simple_cycles(
    graph: Graph,
    min_length: int = 3,
    max_length: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[List[Vertex]]:
    """Yield each simple cycle of ``graph`` exactly once.

    Cycles are produced as vertex sequences starting at their smallest
    vertex (by ``repr``) and oriented so that the second vertex is the
    smaller of that vertex's two cycle neighbours; this canonical form
    guarantees each cycle appears once.

    Parameters
    ----------
    min_length / max_length:
        Bounds (inclusive) on the number of vertices of the produced cycles.
    limit:
        Stop after yielding this many cycles.
    """
    if min_length < 3:
        min_length = 3
    ordered = graph.sorted_vertices()
    rank = {v: i for i, v in enumerate(ordered)}
    count = 0

    for start in ordered:
        # enumerate cycles whose minimum-rank vertex is `start`
        path = [start]
        on_path = {start}

        def _search() -> Iterator[List[Vertex]]:
            current = path[-1]
            for neighbor in sorted(graph.neighbors(current), key=lambda v: rank[v]):
                if rank[neighbor] < rank[start]:
                    continue
                if neighbor == start:
                    if len(path) >= min_length and _is_canonical(path, rank):
                        yield list(path)
                    continue
                if neighbor in on_path:
                    continue
                if max_length is not None and len(path) >= max_length:
                    continue
                path.append(neighbor)
                on_path.add(neighbor)
                yield from _search()
                on_path.discard(neighbor)
                path.pop()

        for cycle in _search():
            yield cycle
            count += 1
            if limit is not None and count >= limit:
                return


def _is_canonical(path: Sequence[Vertex], rank: dict) -> bool:
    """Keep only one orientation of each cycle (second vertex < last vertex)."""
    return rank[path[1]] < rank[path[-1]]


def chordless_cycles(
    graph: Graph,
    min_length: int = 4,
    max_length: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[List[Vertex]]:
    """Yield chordless (induced) cycles with at least ``min_length`` vertices."""
    count = 0
    for cycle in simple_cycles(graph, min_length=min_length, max_length=max_length):
        if not cycle_chords(graph, cycle):
            yield cycle
            count += 1
            if limit is not None and count >= limit:
                return


def find_cycle_with_few_chords(
    graph: Graph,
    min_length: int,
    max_chords: int,
    max_length: Optional[int] = None,
) -> Optional[List[Vertex]]:
    """Return a cycle of length >= ``min_length`` with at most ``max_chords`` chords.

    Returns ``None`` when no such cycle exists.  This is the witness-finding
    primitive behind the definitional ``(m, n)``-chordality test: a graph is
    ``(m, n)``-chordal exactly when no cycle of length >= ``m`` has at most
    ``n - 1`` chords.
    """
    for cycle in simple_cycles(graph, min_length=min_length, max_length=max_length):
        if len(cycle_chords(graph, cycle)) <= max_chords:
            return cycle
    return None


def has_cycle(graph: Graph) -> bool:
    """Return ``True`` when the graph contains any cycle."""
    visited: Set[Vertex] = set()
    for start in graph.vertices():
        if start in visited:
            continue
        stack: List[Tuple[Vertex, Optional[Vertex]]] = [(start, None)]
        parents = {start: None}
        visited.add(start)
        while stack:
            current, parent = stack.pop()
            for neighbor in graph.neighbors(current):
                if neighbor == parent:
                    continue
                if neighbor in visited and neighbor in parents:
                    # a back edge inside the same DFS tree closes a cycle
                    return True
                if neighbor not in visited:
                    visited.add(neighbor)
                    parents[neighbor] = current
                    stack.append((neighbor, current))
    return False


def is_forest(graph: Graph) -> bool:
    """Return ``True`` when the graph is acyclic (a forest)."""
    # A graph is a forest iff every component has exactly |V| - 1 edges;
    # equivalently |E| = |V| - number_of_components.  This avoids the
    # subtle parent bookkeeping of DFS-based cycle detection.
    from repro.graphs.traversal import connected_components

    components = connected_components(graph)
    return graph.number_of_edges() == graph.number_of_vertices() - len(components)


def girth(graph: Graph, max_length: Optional[int] = None) -> Optional[int]:
    """Return the length of a shortest cycle, or ``None`` for a forest."""
    best: Optional[int] = None
    for cycle in simple_cycles(graph, min_length=3, max_length=max_length):
        if best is None or len(cycle) < best:
            best = len(cycle)
            if best == 3:
                return best
    return best
