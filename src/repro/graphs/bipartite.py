"""Bipartite graphs ``G = (V1, V2, A)``.

The paper represents relational schemas and conceptual structures as
bipartite graphs with an explicit, named bipartition (Definition 1): ``V1``
typically holds attributes / lower-level concepts and ``V2`` holds relation
schemes / higher-level concepts.  Because the chordality notions of
Definition 5 (``V_i``-chordality, ``V_i``-conformality) and the
pseudo-Steiner problems of Definition 9 refer to the *named* sides, the
bipartition is stored explicitly rather than recomputed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.exceptions import BipartitenessError, GraphError
from repro.graphs.graph import Graph, Vertex


class BipartiteGraph(Graph):
    """An undirected graph with an explicit bipartition ``(V1, V2)``.

    Vertices must be assigned to a side before (or while) edges touching
    them are added; edges inside one side are rejected.

    Examples
    --------
    >>> g = BipartiteGraph()
    >>> g.add_left("A"); g.add_right(1); g.add_edge("A", 1)
    >>> g.side_of("A"), g.side_of(1)
    (1, 2)
    """

    def __init__(
        self,
        left: Iterable[Vertex] = (),
        right: Iterable[Vertex] = (),
        edges: Iterable[Tuple[Vertex, Vertex]] = (),
    ) -> None:
        self._side: Dict[Vertex, int] = {}
        super().__init__()
        for vertex in left:
            self.add_left(vertex)
        for vertex in right:
            self.add_right(vertex)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_parts(
        cls,
        left: Iterable[Vertex],
        right: Iterable[Vertex],
        edges: Iterable[Tuple[Vertex, Vertex]],
    ) -> "BipartiteGraph":
        """Build a bipartite graph from the triple ``(V1, V2, A)``."""
        return cls(left=left, right=right, edges=edges)

    @classmethod
    def from_graph(
        cls, graph: Graph, left: Optional[Iterable[Vertex]] = None
    ) -> "BipartiteGraph":
        """Interpret an unlabelled :class:`Graph` as bipartite.

        When ``left`` is given it fixes ``V1`` and the remaining vertices
        form ``V2`` (edges must respect the split).  Otherwise a 2-colouring
        is computed; a :class:`BipartitenessError` is raised when the graph
        contains an odd cycle.  Isolated vertices default to ``V1``.
        """
        if left is not None:
            left_set = set(left)
            right_set = graph.vertices() - left_set
        else:
            left_set, right_set = two_coloring(graph)
        result = cls(left=left_set, right=right_set, edges=graph.edges())
        return result

    # ``copy()`` is inherited: the base :meth:`Graph.copy` carries the
    # ``_side`` mapping over through the ``_copy_subclass_state_into`` hook
    # before replaying the structure, so bipartite clones round-trip their
    # bipartition without a bespoke override (tests pin this).

    # ------------------------------------------------------------------
    # side bookkeeping
    # ------------------------------------------------------------------
    def add_left(self, vertex: Vertex) -> None:
        """Add ``vertex`` to side ``V1``."""
        self._add_to_side(vertex, 1)

    def add_right(self, vertex: Vertex) -> None:
        """Add ``vertex`` to side ``V2``."""
        self._add_to_side(vertex, 2)

    def add_to_side(self, vertex: Vertex, side: int) -> None:
        """Add ``vertex`` to ``V1`` (``side=1``) or ``V2`` (``side=2``)."""
        self._add_to_side(vertex, side)

    def _add_to_side(self, vertex: Vertex, side: int) -> None:
        if side not in (1, 2):
            raise ValueError(f"side must be 1 or 2, got {side!r}")
        existing = self._side.get(vertex)
        if existing is not None and existing != side:
            raise BipartitenessError(
                f"vertex {vertex!r} is already assigned to side V{existing}"
            )
        self._side[vertex] = side
        super().add_vertex(vertex)

    def add_vertex(self, vertex: Vertex) -> None:
        """Add a vertex; it must already have a side or be added via a side."""
        if vertex not in self._side:
            raise BipartitenessError(
                f"vertex {vertex!r} has no side; use add_left/add_right "
                "or add_to_side"
            )
        super().add_vertex(vertex)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add an edge; endpoints must lie on opposite sides.

        If exactly one endpoint is new it is placed on the side opposite
        its partner, which makes incremental construction convenient.
        """
        side_u = self._side.get(u)
        side_v = self._side.get(v)
        if side_u is None and side_v is None:
            raise BipartitenessError(
                f"cannot infer sides for new edge ({u!r}, {v!r}); add at "
                "least one endpoint to a side first"
            )
        if side_u is None:
            self._add_to_side(u, 3 - side_v)
            side_u = 3 - side_v
        if side_v is None:
            self._add_to_side(v, 3 - side_u)
            side_v = 3 - side_u
        if side_u == side_v:
            raise BipartitenessError(
                f"edge ({u!r}, {v!r}) would connect two vertices of V{side_u}"
            )
        super().add_edge(u, v)

    def remove_vertex(self, vertex: Vertex) -> None:
        super().remove_vertex(vertex)
        del self._side[vertex]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def left(self) -> Set[Vertex]:
        """Return ``V1`` as a fresh set."""
        return {v for v, side in self._side.items() if side == 1 and v in self}

    def right(self) -> Set[Vertex]:
        """Return ``V2`` as a fresh set."""
        return {v for v, side in self._side.items() if side == 2 and v in self}

    def side(self, index: int) -> Set[Vertex]:
        """Return ``V1`` (``index=1``) or ``V2`` (``index=2``)."""
        if index == 1:
            return self.left()
        if index == 2:
            return self.right()
        raise ValueError(f"side index must be 1 or 2, got {index!r}")

    def side_of(self, vertex: Vertex) -> int:
        """Return ``1`` or ``2`` according to the side of ``vertex``."""
        if vertex not in self._side or vertex not in self:
            raise GraphError(f"vertex {vertex!r} is not in the graph")
        return self._side[vertex]

    def parts(self) -> Tuple[Set[Vertex], Set[Vertex]]:
        """Return the pair ``(V1, V2)``."""
        return self.left(), self.right()

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[Vertex]) -> "BipartiteGraph":
        """Return the induced subgraph, preserving the bipartition labels.

        Runs in time proportional to the kept vertices' degrees, not to
        the whole edge set -- the engine's solvers induce many small
        covers per batch, and a full edge scan per cover was the single
        hottest line of the warm query path.
        """
        adjacency = self._adjacency
        keep = {v for v in vertices if v in adjacency}
        induced = BipartiteGraph(
            left={v for v in keep if self._side[v] == 1},
            right={v for v in keep if self._side[v] == 2},
        )
        for u in keep:
            for v in adjacency[u]:
                if v in keep:
                    # add_edge is idempotent, so seeing {u, v} from both
                    # endpoints is harmless
                    induced.add_edge(u, v)
        return induced

    def swap_sides(self) -> "BipartiteGraph":
        """Return the same graph with the roles of ``V1`` and ``V2`` exchanged.

        Useful because every statement in the paper has a symmetric version
        obtained by exchanging ``V1`` and ``V2``.
        """
        return BipartiteGraph(
            left=self.right(), right=self.left(), edges=self.edges()
        )

    def as_graph(self) -> Graph:
        """Return a plain :class:`Graph` copy (forgetting the bipartition)."""
        return Graph(vertices=self.vertices(), edges=self.edges())


def two_coloring(graph: Graph) -> Tuple[Set[Vertex], Set[Vertex]]:
    """Return a 2-colouring ``(V1, V2)`` of ``graph``.

    Raises
    ------
    BipartitenessError
        If the graph contains an odd cycle.  Isolated vertices and the
        first vertex of each component are placed in ``V1``.
    """
    color: Dict[Vertex, int] = {}
    for start in graph.sorted_vertices():
        if start in color:
            continue
        color[start] = 1
        queue = [start]
        while queue:
            current = queue.pop()
            for neighbor in graph.neighbors(current):
                if neighbor not in color:
                    color[neighbor] = 3 - color[current]
                    queue.append(neighbor)
                elif color[neighbor] == color[current]:
                    raise BipartitenessError(
                        "graph is not bipartite: odd cycle through "
                        f"{current!r} and {neighbor!r}"
                    )
    left = {v for v, c in color.items() if c == 1}
    right = {v for v, c in color.items() if c == 2}
    return left, right


def is_bipartite(graph: Graph) -> bool:
    """Return ``True`` when ``graph`` admits a 2-colouring."""
    try:
        two_coloring(graph)
    except BipartitenessError:
        return False
    return True
