"""Simple undirected graphs.

The paper works exclusively with finite, simple, undirected graphs
(Definition 1): a graph is a hypergraph whose edges contain exactly two
nodes.  :class:`Graph` is the in-memory representation used everywhere in
this library.  Vertices may be any hashable Python objects; edges are
unordered pairs of distinct vertices.

The class is deliberately small and explicit: an adjacency dictionary plus
the handful of operations the algorithms in the paper need (induced
subgraphs, vertex/edge removal, neighbourhood queries).  Traversals, paths,
cycles and other derived algorithms live in sibling modules so that this
file stays a pure data structure.
"""

from __future__ import annotations

import copy as _copy
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Set, Tuple

from repro.exceptions import GraphError

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

#: Instance attributes owned by :class:`Graph` itself.  The generic
#: subclass-state copy hook (:meth:`Graph._copy_subclass_state_into`) skips
#: these: structure is rebuilt through the mutation API and version
#: bookkeeping starts fresh on every clone.
_GRAPH_BASE_ATTRS = frozenset(
    {"_adjacency", "_mutation_version", "_version_hold", "_version_hold_touched"}
)


class Graph:
    """A finite, simple, undirected graph.

    Parameters
    ----------
    vertices:
        Optional iterable of initial vertices.  Vertices mentioned in
        ``edges`` are added automatically, so this is only needed for
        isolated vertices.
    edges:
        Optional iterable of ``(u, v)`` pairs.

    Examples
    --------
    >>> g = Graph(edges=[("a", "b"), ("b", "c")])
    >>> sorted(g.neighbors("b"))
    ['a', 'c']
    >>> g.number_of_edges()
    2
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self._adjacency: Dict[Vertex, Set[Vertex]] = {}
        self._mutation_version = 0
        # transaction support (repro.dynamic.SchemaEditor): while a hold
        # is active, structural changes do not bump the version, only
        # mark the hold as touched; releasing a touched hold bumps
        # exactly once -- even on rollback -- see _release_version
        self._version_hold = False
        self._version_hold_touched = False
        for vertex in vertices:
            self.add_vertex(vertex)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "Graph":
        """Build a graph from an iterable of edges only."""
        return cls(edges=edges)

    @classmethod
    def from_adjacency(cls, adjacency: Dict[Vertex, Iterable[Vertex]]) -> "Graph":
        """Build a graph from an adjacency mapping.

        The mapping does not need to be symmetric; both directions are
        added.  Keys with empty iterables become isolated vertices.
        """
        graph = cls()
        for vertex, neighbors in adjacency.items():
            graph.add_vertex(vertex)
            for neighbor in neighbors:
                graph.add_edge(vertex, neighbor)
        return graph

    def copy(self) -> "Graph":
        """Return an independent copy of this graph (subclasses included).

        The clone is built in three steps: fresh base state, then the
        :meth:`_copy_subclass_state_into` hook (which by default carries
        over *every* attribute :class:`Graph` itself does not own), then
        the structure via the public mutation API.  Subclasses therefore
        round-trip through the base ``copy`` without overriding it; a
        subclass whose extra state needs more than a per-attribute shallow
        copy overrides the hook, not ``copy`` itself.
        """
        clone = type(self).__new__(type(self))
        Graph.__init__(clone)
        self._copy_subclass_state_into(clone)
        self._copy_structure_into(clone)
        return clone

    def _copy_subclass_state_into(self, other: "Graph") -> None:
        """Copy non-structural subclass state into ``other`` (overridable hook).

        The default implementation shallow-copies (``copy.copy``) every
        instance attribute not owned by :class:`Graph` itself, so a
        subclass that adds e.g. a side mapping or display names is cloned
        correctly even when it never heard of ``copy()``.  Runs *before*
        :meth:`_copy_structure_into`, because subclass mutation methods
        (e.g. :meth:`~repro.graphs.bipartite.BipartiteGraph.add_vertex`)
        may consult that state while the structure is replayed.
        """
        for name, value in self.__dict__.items():
            if name not in _GRAPH_BASE_ATTRS:
                other.__dict__[name] = _copy.copy(value)

    def _copy_structure_into(self, other: "Graph") -> None:
        """Copy vertices and edges into ``other`` (used by subclasses)."""
        for vertex in self._adjacency:
            other.add_vertex(vertex)
        for u, v in self.edges():
            other.add_edge(u, v)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    @property
    def mutation_version(self) -> int:
        """Monotonic counter bumped by every structural change.

        Callers that memoise derived structures (e.g. the service façade's
        bound schema context) compare versions instead of re-fingerprinting
        the whole graph per call; no-op mutations do not bump it.  During
        an open :class:`~repro.dynamic.SchemaEditor` transaction the
        version is *held*: it moves at most once, when the transaction
        ends -- on commit, and also on rollback or a cancelled-out
        commit if any edit ran meanwhile (see :meth:`_release_version`),
        so no reader can stay bound to a mid-transaction snapshot.
        """
        return self._mutation_version

    def _bump_version(self) -> None:
        """Record one structural change (deferred while a hold is active).

        Under a hold the version itself stays put (one bump per
        transaction), but the change is remembered: a touched hold bumps
        at release no matter how it ends, because a version-gated cache
        may have snapshotted the intermediate structure in the meantime.
        """
        if self._version_hold:
            self._version_hold_touched = True
        else:
            self._mutation_version += 1

    def add_vertex(self, vertex: Vertex) -> None:
        """Add ``vertex`` if not already present (idempotent)."""
        if vertex not in self._adjacency:
            self._adjacency[vertex] = set()
            self._bump_version()

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}`` (idempotent).

        Both endpoints are created if missing.  Self-loops are rejected
        because the paper's graphs are simple.
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed (vertex {u!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adjacency[u]:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
            self._bump_version()

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and all edges incident to it."""
        if vertex not in self._adjacency:
            raise GraphError(f"vertex {vertex!r} is not in the graph")
        for neighbor in self._adjacency[vertex]:
            self._adjacency[neighbor].discard(vertex)
        del self._adjacency[vertex]
        self._bump_version()

    def _hold_version(self) -> None:
        """Begin deferring version bumps (one open hold at a time).

        Used by :class:`~repro.dynamic.SchemaEditor`: mutations made
        while the hold is active do not bump the version;
        :meth:`_release_version` turns the whole batch into at most one
        bump.  Raises :class:`GraphError` when a hold is already active,
        which is how nested transactions are rejected.
        """
        if self._version_hold:
            raise GraphError("a version hold (open transaction) is already active")
        self._version_hold = True
        self._version_hold_touched = False

    def _release_version(self, bump: bool) -> None:
        """End a hold; bump once when asked to *or* when the hold was touched.

        The touched case covers rollbacks and structurally cancelled-out
        commits: the graph ends where it started, but a version-gated
        reader that took its first snapshot *during* the transaction
        captured the intermediate structure -- without a bump it would
        keep serving that dirty snapshot forever.  A spurious bump is
        always safe (it merely forces the next reader to revalidate,
        which finds an empty structural delta and reuses everything); a
        missing bump is a permanent stale answer.
        """
        if not self._version_hold:
            raise GraphError("no version hold is active")
        self._version_hold = False
        if bump or self._version_hold_touched:
            self._mutation_version += 1
        self._version_hold_touched = False

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._bump_version()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def vertices(self) -> Set[Vertex]:
        """Return the vertex set (a fresh set, safe to mutate)."""
        return set(self._adjacency)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges, each reported once as a ``(u, v)`` tuple."""
        seen: Set[FrozenSet[Vertex]] = set()
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield (u, v)

    def edge_set(self) -> Set[FrozenSet[Vertex]]:
        """Return the edge set as frozensets (order-independent)."""
        return {frozenset((u, v)) for u, v in self.edges()}

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` when ``vertex`` belongs to the graph."""
        return vertex in self._adjacency

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` when ``{u, v}`` is an edge of the graph."""
        return u in self._adjacency and v in self._adjacency[u]

    def neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Return the set of vertices adjacent to ``vertex``.

        This is ``Adj(v)`` in the paper's notation.  A fresh set is
        returned so callers may mutate it freely.
        """
        if vertex not in self._adjacency:
            raise GraphError(f"vertex {vertex!r} is not in the graph")
        return set(self._adjacency[vertex])

    def adjacency(self, vertex: Vertex) -> Set[Vertex]:
        """Alias of :meth:`neighbors` matching the paper's ``Adj`` notation."""
        return self.neighbors(vertex)

    def neighborhood_of_set(self, vertices: Iterable[Vertex]) -> Set[Vertex]:
        """Return ``Adj(W)``: vertices adjacent to at least one vertex of ``W``.

        Note that, following the paper, the result may include vertices of
        ``W`` itself (when two members of ``W`` are adjacent).
        """
        result: Set[Vertex] = set()
        for vertex in vertices:
            result |= self.neighbors(vertex)
        return result

    def private_neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Return ``Adj*(v)``: the vertices adjacent *only* to ``vertex``.

        This is the set used in Step 2 of Algorithm 1 (Theorem 3): when a
        redundant vertex ``v`` is eliminated, the vertices whose unique
        neighbour was ``v`` become isolated and are eliminated with it.
        """
        result = set()
        for candidate in self.neighbors(vertex):
            if self._adjacency[candidate] == {vertex}:
                result.add(candidate)
        return result

    def degree(self, vertex: Vertex) -> int:
        """Return the number of neighbours of ``vertex``."""
        if vertex not in self._adjacency:
            raise GraphError(f"vertex {vertex!r} is not in the graph")
        return len(self._adjacency[vertex])

    def number_of_vertices(self) -> int:
        """Return ``|V|``."""
        return len(self._adjacency)

    def number_of_edges(self) -> int:
        """Return ``|A|``."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by ``vertices``.

        Unknown vertices are ignored so that callers can pass candidate
        sets without first intersecting with the vertex set.
        """
        keep = {v for v in vertices if v in self._adjacency}
        induced = Graph()
        for vertex in keep:
            induced.add_vertex(vertex)
        for vertex in keep:
            for neighbor in self._adjacency[vertex]:
                if neighbor in keep:
                    induced.add_edge(vertex, neighbor)
        return induced

    def without_vertices(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by the complement of ``vertices``.

        This is the paper's ``G - V'`` notation.
        """
        removed = set(vertices)
        return self.subgraph(v for v in self._adjacency if v not in removed)

    def without_vertex(self, vertex: Vertex) -> "Graph":
        """Return the subgraph induced by ``V - {vertex}`` (paper: ``G - v``)."""
        return self.without_vertices([vertex])

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adjacency)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.vertices() == other.vertices()
            and self.edge_set() == other.edge_set()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(|V|={self.number_of_vertices()}, "
            f"|A|={self.number_of_edges()})"
        )

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def sorted_vertices(self) -> List[Vertex]:
        """Return vertices sorted by ``repr`` for deterministic iteration."""
        return sorted(self._adjacency, key=repr)

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        """Return ``True`` when ``vertices`` are pairwise adjacent."""
        members = list(vertices)
        for index, u in enumerate(members):
            for v in members[index + 1:]:
                if not self.has_edge(u, v):
                    return False
        return True
