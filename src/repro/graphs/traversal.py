"""Graph traversals, connectivity and distances.

These are the low-level primitives used throughout the library:

* breadth-first search (orders, distances, BFS trees),
* depth-first search,
* connected components and connectivity tests,
* the "is this vertex set covered by one component" test that Definition 10
  (covers) and Algorithms 1 and 2 run in their inner loops.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.exceptions import GraphError
from repro.graphs.backend import is_indexed
from repro.graphs.graph import Graph, Vertex


def bfs_order(graph: Graph, source: Vertex) -> List[Vertex]:
    """Return vertices reachable from ``source`` in BFS order."""
    if source not in graph:
        raise GraphError(f"source vertex {source!r} is not in the graph")
    visited = {source}
    order = [source]
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in sorted(graph.neighbors(current), key=repr):
            if neighbor not in visited:
                visited.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    return order


def bfs_distances(graph: Graph, source: Vertex) -> Dict[Vertex, int]:
    """Return the shortest-path distance (number of edges) from ``source``.

    Unreachable vertices are absent from the result.

    On the :class:`~repro.graphs.indexed.IndexedGraph` backend the search
    runs on a dense distance array over CSR rows (the fast lane used by the
    batched engine); the returned mapping is identical either way.
    """
    if source not in graph:
        raise GraphError(f"source vertex {source!r} is not in the graph")
    if is_indexed(graph):
        levels = graph.bfs_levels(source)
        return {v: d for v, d in enumerate(levels) if d >= 0}
    distances = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    return distances


def bfs_tree(graph: Graph, source: Vertex) -> Dict[Vertex, Optional[Vertex]]:
    """Return a BFS predecessor map ``vertex -> parent`` (source maps to None)."""
    if source not in graph:
        raise GraphError(f"source vertex {source!r} is not in the graph")
    parents: Dict[Vertex, Optional[Vertex]] = {source: None}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in sorted(graph.neighbors(current), key=repr):
            if neighbor not in parents:
                parents[neighbor] = current
                queue.append(neighbor)
    return parents


def dfs_order(graph: Graph, source: Vertex) -> List[Vertex]:
    """Return vertices reachable from ``source`` in (iterative) DFS preorder."""
    if source not in graph:
        raise GraphError(f"source vertex {source!r} is not in the graph")
    visited: Set[Vertex] = set()
    order: List[Vertex] = []
    stack = [source]
    while stack:
        current = stack.pop()
        if current in visited:
            continue
        visited.add(current)
        order.append(current)
        for neighbor in sorted(graph.neighbors(current), key=repr, reverse=True):
            if neighbor not in visited:
                stack.append(neighbor)
    return order


def connected_components(graph: Graph) -> List[Set[Vertex]]:
    """Return the connected components as a list of vertex sets.

    The list is ordered deterministically (by the smallest ``repr`` of a
    member vertex) so that test output is stable.
    """
    remaining = graph.vertices()
    components: List[Set[Vertex]] = []
    for start in graph.sorted_vertices():
        if start not in remaining:
            continue
        component = set(bfs_order(graph, start))
        components.append(component)
        remaining -= component
    return components


def component_containing(graph: Graph, vertex: Vertex) -> Set[Vertex]:
    """Return the vertex set of the component containing ``vertex``."""
    if is_indexed(graph):
        if not graph.has_vertex(vertex):
            raise GraphError(f"source vertex {vertex!r} is not in the graph")
        return set(graph.component_of(vertex))
    return set(bfs_order(graph, vertex))


def is_connected(graph: Graph) -> bool:
    """Return ``True`` when the graph has at most one connected component."""
    if is_indexed(graph):
        return graph.n <= 1 or len(graph.component_of(0)) == graph.n
    vertices = graph.vertices()
    if len(vertices) <= 1:
        return True
    start = next(iter(vertices))
    return len(bfs_order(graph, start)) == len(vertices)


def vertices_in_same_component(graph: Graph, vertices: Iterable[Vertex]) -> bool:
    """Return ``True`` when all ``vertices`` lie in one connected component.

    This is the notion the paper calls "``P`` is connected in ``C``": the
    terminal set need not induce a connected subgraph, it only needs to be
    connectable inside the host graph.  Vertices missing from the graph make
    the answer ``False``.  On the indexed backend (the feasibility check
    of every solver) the test runs on a dense level array instead of the
    repr-sorting set walk.
    """
    targets = list(vertices)
    if not targets:
        return True
    if any(v not in graph for v in targets):
        return False
    if is_indexed(graph):
        levels = graph.bfs_levels(targets[0])
        return all(levels[v] >= 0 for v in targets)
    reachable = set(bfs_order(graph, targets[0]))
    return all(v in reachable for v in targets)


def covers(graph: Graph, kept_vertices: Iterable[Vertex], terminals: Iterable[Vertex]) -> bool:
    """Return ``True`` when the subgraph induced by ``kept_vertices`` is a cover of ``terminals``.

    Following Definition 10, the induced subgraph is a *cover* of the
    terminal set when it is connected and contains every terminal.  This
    helper is the inner-loop test of both Algorithm 1 and Algorithm 2
    ("is ``G_{i-1} - {v}`` still a cover of ``P``?").
    """
    kept = {v for v in kept_vertices if v in graph}
    terminal_list = list(terminals)
    if any(t not in kept for t in terminal_list):
        return False
    induced = graph.subgraph(kept)
    return is_connected(induced) and all(t in induced for t in terminal_list)


def distance(graph: Graph, source: Vertex, target: Vertex) -> Optional[int]:
    """Return the shortest-path distance between two vertices, or ``None``."""
    return bfs_distances(graph, source).get(target)


def eccentricity(graph: Graph, vertex: Vertex) -> int:
    """Return the maximum distance from ``vertex`` to any reachable vertex."""
    return max(bfs_distances(graph, vertex).values())


def diameter(graph: Graph) -> int:
    """Return the diameter of a connected graph (0 for a single vertex)."""
    if not is_connected(graph):
        raise GraphError("diameter is only defined for connected graphs")
    if graph.number_of_vertices() == 0:
        raise GraphError("diameter of the empty graph is undefined")
    return max(eccentricity(graph, v) for v in graph.vertices())
