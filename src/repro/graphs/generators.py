"""Graph generators.

Deterministic families (paths, cycles, stars, complete bipartite graphs)
plus the randomised families used by the test-suite and the benchmark
harnesses.  Generators for the *paper-specific* graph classes (random
alpha/beta/gamma-acyclic schema graphs, X3C reduction instances, ...) live
in :mod:`repro.datasets.generators` because they depend on the hypergraph
layer; this module only contains structure-free building blocks.

Two size regimes coexist here.  The classic generators build mutable
hashable-vertex :class:`~repro.graphs.graph.Graph` /
:class:`~repro.graphs.bipartite.BipartiteGraph` objects -- dict-of-sets
storage, comfortable up to ~10^4 vertices.  The ``large_*`` family
targets the 10^5 - 10^6-vertex schemas of the kernel benchmarks: it
emits :class:`~repro.graphs.indexed.IndexedGraph` objects over integer
ids directly, so nothing on the path ever touches per-vertex Python
objects or the O(n^2 / 16) bitset rows (which the indexed backend now
derives lazily).
"""

from __future__ import annotations

from array import array
from typing import List, Tuple

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph
from repro.graphs.indexed import IndexedGraph
from repro.utils.rng import RandomLike, ensure_rng


def path_graph(length: int) -> Graph:
    """Return a path with ``length`` edges on vertices ``0 .. length``."""
    if length < 0:
        raise ValueError("length must be non-negative")
    graph = Graph(vertices=range(length + 1))
    for i in range(length):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(n: int) -> Graph:
    """Return a cycle on ``n >= 3`` vertices ``0 .. n-1``."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    graph = Graph(vertices=range(n))
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    return graph


def even_cycle_bipartite(n: int) -> BipartiteGraph:
    """Return an even cycle on ``n`` vertices as a :class:`BipartiteGraph`.

    Even-indexed vertices form ``V1`` and odd-indexed vertices form ``V2``.
    """
    if n < 4 or n % 2 != 0:
        raise ValueError("an even bipartite cycle needs an even n >= 4")
    graph = BipartiteGraph(
        left=[i for i in range(n) if i % 2 == 0],
        right=[i for i in range(n) if i % 2 == 1],
    )
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    return graph


def star_graph(leaves: int) -> Graph:
    """Return a star with centre ``"c"`` and leaves ``0 .. leaves-1``."""
    graph = Graph(vertices=["c"])
    for i in range(leaves):
        graph.add_edge("c", i)
    return graph


def complete_graph(n: int) -> Graph:
    """Return the complete graph on vertices ``0 .. n-1``."""
    graph = Graph(vertices=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j)
    return graph


def complete_bipartite(n_left: int, n_right: int) -> BipartiteGraph:
    """Return ``K_{n_left, n_right}`` with vertices ``("l", i)`` / ``("r", j)``."""
    left = [("l", i) for i in range(n_left)]
    right = [("r", j) for j in range(n_right)]
    graph = BipartiteGraph(left=left, right=right)
    for u in left:
        for v in right:
            graph.add_edge(u, v)
    return graph


def random_graph(n: int, probability: float, rng: RandomLike = None) -> Graph:
    """Return an Erdos-Renyi ``G(n, p)`` graph on vertices ``0 .. n-1``."""
    generator = ensure_rng(rng)
    graph = Graph(vertices=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if generator.random() < probability:
                graph.add_edge(i, j)
    return graph


def random_tree(n: int, rng: RandomLike = None) -> Graph:
    """Return a uniformly random recursive tree on ``0 .. n-1``.

    Each vertex ``i > 0`` attaches to a uniformly chosen earlier vertex.
    """
    if n <= 0:
        raise ValueError("a tree needs at least one vertex")
    generator = ensure_rng(rng)
    graph = Graph(vertices=range(n))
    for i in range(1, n):
        graph.add_edge(i, generator.randrange(i))
    return graph


def random_bipartite(
    n_left: int,
    n_right: int,
    probability: float,
    rng: RandomLike = None,
    ensure_no_isolated: bool = False,
) -> BipartiteGraph:
    """Return a random bipartite graph with edge probability ``probability``.

    Parameters
    ----------
    ensure_no_isolated:
        When ``True`` every vertex receives at least one incident edge
        (added uniformly at random), which matches the schema setting where
        every attribute appears in at least one relation.
    """
    generator = ensure_rng(rng)
    left = [("l", i) for i in range(n_left)]
    right = [("r", j) for j in range(n_right)]
    graph = BipartiteGraph(left=left, right=right)
    for u in left:
        for v in right:
            if generator.random() < probability:
                graph.add_edge(u, v)
    if ensure_no_isolated and left and right:
        for u in left:
            if graph.degree(u) == 0:
                graph.add_edge(u, right[generator.randrange(len(right))])
        for v in right:
            if graph.degree(v) == 0:
                graph.add_edge(left[generator.randrange(len(left))], v)
    return graph


def random_bipartite_tree(
    n_left: int, n_right: int, rng: RandomLike = None
) -> BipartiteGraph:
    """Return a random tree that alternates strictly between the two sides.

    The tree is grown vertex by vertex; each new vertex attaches to a random
    existing vertex of the opposite side.  The result is connected, acyclic
    and therefore (4,1)-chordal; it is the base case of several generators.
    """
    if n_left < 1 or n_right < 1:
        raise ValueError("both sides need at least one vertex")
    generator = ensure_rng(rng)
    left = [("l", i) for i in range(n_left)]
    right = [("r", j) for j in range(n_right)]
    graph = BipartiteGraph(left=left, right=right)
    placed_left = [left[0]]
    placed_right: List[Tuple[str, int]] = []
    pending_left = left[1:]
    pending_right = list(right)
    # first right vertex must attach to the only placed left vertex
    first_right = pending_right.pop(0)
    graph.add_edge(left[0], first_right)
    placed_right.append(first_right)
    while pending_left or pending_right:
        choices = []
        if pending_left and placed_right:
            choices.append("left")
        if pending_right and placed_left:
            choices.append("right")
        side = generator.choice(choices)
        if side == "left":
            vertex = pending_left.pop(0)
            partner = generator.choice(placed_right)
            graph.add_edge(vertex, partner)
            placed_left.append(vertex)
        else:
            vertex = pending_right.pop(0)
            partner = generator.choice(placed_left)
            graph.add_edge(vertex, partner)
            placed_right.append(vertex)
    return graph


# ----------------------------------------------------------------------
# at-scale families (CSR-direct, integer ids)
# ----------------------------------------------------------------------
def large_bipartite_tree(n: int, rng: RandomLike = None) -> IndexedGraph:
    """Random alternating tree on ``n`` integer ids as an :class:`IndexedGraph`.

    Vertex ``i`` sits on side ``1 + (i & 1)`` and each vertex ``i >= 1``
    attaches to a uniformly chosen earlier vertex of the opposite side
    (one always exists: ``i - 1``).  The result is a connected bipartite
    tree -- (4,1)-chordal, so the chordal solver paths apply -- built in
    O(n) with no hashable-vertex objects; comfortable at 10^5 - 10^6
    vertices.
    """
    if n < 2:
        raise ValueError("an alternating tree needs at least 2 vertices")
    generator = ensure_rng(rng)
    edges: List[Tuple[int, int]] = []
    for i in range(1, n):
        # earlier ids of the opposite parity are i-1, i-3, ...: there are
        # (i + 1) // 2 of them, at positions (i - 1) - 2k
        parent = (i - 1) - 2 * generator.randrange((i + 1) // 2)
        edges.append((parent, i))
    sides = array("b", bytes(n))
    for i in range(n):
        sides[i] = 1 + (i & 1)
    return IndexedGraph(n, edges=edges, sides=sides)


def large_block_chain(
    blocks: int, left_size: int = 2, right_size: int = 2
) -> IndexedGraph:
    """Chain of complete bipartite blocks glued at cut vertices, CSR-direct.

    The at-scale sibling of :func:`repro.datasets.generators.random_62_chordal_graph`:
    each block is a ``K_{left_size, right_size}`` sharing exactly one
    (right-side) cut vertex with its predecessor.  Complete bipartite
    blocks are (6,2)-chordal and single-vertex gluing creates no new
    cycles, so the whole chain is (6,2)-chordal -- a *chordal*-class
    schema with ``blocks * (left_size + right_size) - blocks + 1``
    vertices, built in O(|A|).  Deterministic (no rng): the structure,
    not the randomness, is the point at this scale.
    """
    if blocks < 1 or left_size < 1 or right_size < 1:
        raise ValueError("blocks and block sides must be positive")
    edges: List[Tuple[int, int]] = []
    side_values: List[int] = []
    anchor = -1  # the shared right-side cut vertex of the previous block
    next_id = 0
    for block in range(blocks):
        left = list(range(next_id, next_id + left_size))
        next_id += left_size
        side_values.extend([1] * left_size)
        if block == 0:
            right = list(range(next_id, next_id + right_size))
            next_id += right_size
            side_values.extend([2] * right_size)
        else:
            right = [anchor] + list(range(next_id, next_id + right_size - 1))
            next_id += right_size - 1
            side_values.extend([2] * (right_size - 1))
        for u in left:
            for v in right:
                edges.append((u, v))
        anchor = right[-1]
    return IndexedGraph(next_id, edges=edges, sides=array("b", side_values))


def large_random_bipartite(
    n_left: int, n_right: int, edge_count: int, rng: RandomLike = None
) -> IndexedGraph:
    """Sparse random bipartite graph over integer ids, CSR-direct.

    Ids ``0 .. n_left - 1`` form side 1 and the rest side 2;
    ``edge_count`` pairs are sampled uniformly with replacement
    (duplicates collapse, so the realised edge count can be slightly
    lower).  O(n + edge_count) -- the at-scale *general*-class workload;
    unlike :func:`random_bipartite` there is no per-pair coin flip, so
    10^6-vertex graphs with ~10^6 edges cost millions of operations, not
    ``n_left * n_right``.
    """
    if n_left < 1 or n_right < 1:
        raise ValueError("both sides need at least one vertex")
    if edge_count < 0:
        raise ValueError("edge_count must be non-negative")
    generator = ensure_rng(rng)
    n = n_left + n_right
    edges = [
        (generator.randrange(n_left), n_left + generator.randrange(n_right))
        for _ in range(edge_count)
    ]
    sides = array("b", [1] * n_left + [2] * n_right)
    return IndexedGraph(n, edges=edges, sides=sides)


def large_terminal_ids(
    graph: IndexedGraph, count: int, rng: RandomLike = None
) -> List[int]:
    """Sample a feasible terminal id set from an at-scale :class:`IndexedGraph`.

    Terminals are drawn from the connected component of vertex 0 (one
    O(|V| + |A|) BFS), so the resulting Steiner instance is feasible on
    the connected ``large_*`` families and on the giant component of
    sparse random ones.
    """
    generator = ensure_rng(rng)
    pool = graph.component_of(0)
    return generator.sample(pool, min(count, len(pool)))


def grid_graph(rows: int, columns: int) -> Graph:
    """Return the ``rows x columns`` grid graph on vertices ``(r, c)``."""
    graph = Graph(vertices=[(r, c) for r in range(rows) for c in range(columns)])
    for r in range(rows):
        for c in range(columns):
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < columns:
                graph.add_edge((r, c), (r, c + 1))
    return graph
