"""The shared read-only graph protocol of the two backends.

Every algorithm ported to the dual-backend regime is written against
:class:`GraphReadProtocol` -- the intersection of the read APIs of the
hashable-vertex :class:`~repro.graphs.graph.Graph` and the integer-indexed
:class:`~repro.graphs.indexed.IndexedGraph`:

========================  =====================================================
method                    meaning
========================  =====================================================
``vertices()``            fresh vertex set
``sorted_vertices()``     deterministic scan order (repr-sorted / ascending id)
``neighbors(v)``          fresh neighbour set (``Adj(v)``)
``has_edge(u, v)``        adjacency test
``degree(v)``             ``|Adj(v)|``
``number_of_vertices()``  ``|V|``
``number_of_edges()``     ``|A|``
``edges()``               each edge reported once
``subgraph(W)``           induced subgraph preserving vertex identity
``is_clique(W)``          pairwise adjacency test
``v in g`` / ``len(g)``   membership / vertex count
========================  =====================================================

Functions that only consume this protocol (BFS, spanning trees, the
Steiner heuristics, the elimination procedures ...) accept either backend
transparently; the hot paths additionally dispatch on
:func:`is_indexed` to integer-array fast lanes.  Mutation
(``add_edge`` / ``remove_vertex``) is deliberately excluded:
:class:`IndexedGraph` is immutable, and code that needs to mutate first
materialises a :class:`Graph` via ``subgraph`` or ``to_graph``.

Below the graph protocol sits a second seam: the **kernel-backend
registry** of :mod:`repro.kernels.backend`, which picks *how* the BFS
kernels traverse an :class:`IndexedGraph` -- the zero-dependency
``array('i')`` lane or the vectorized numpy lane.  :func:`csr_arrays` is
the bridge between the two seams: it exposes the canonical CSR buffers of
an indexed graph in a buffer-protocol-agnostic form every kernel lane
(and the shm transport) can adopt without copying.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Protocol, Set, Tuple, runtime_checkable

from repro.graphs.indexed import GraphIndex, IndexedGraph, to_indexed


@runtime_checkable
class GraphReadProtocol(Protocol):
    """Structural type implemented by both graph backends (read-only)."""

    def vertices(self) -> Set: ...

    def sorted_vertices(self) -> List: ...

    def neighbors(self, vertex) -> Set: ...

    def has_edge(self, u, v) -> bool: ...

    def degree(self, vertex) -> int: ...

    def number_of_vertices(self) -> int: ...

    def number_of_edges(self) -> int: ...

    def edges(self) -> Iterator[Tuple]: ...

    def subgraph(self, vertices: Iterable): ...

    def is_clique(self, vertices: Iterable) -> bool: ...

    def __contains__(self, vertex) -> bool: ...

    def __len__(self) -> int: ...


def is_indexed(graph) -> bool:
    """Return ``True`` when ``graph`` is the integer-indexed fast backend."""
    return isinstance(graph, IndexedGraph)


def ensure_indexed(graph) -> Tuple[IndexedGraph, GraphIndex]:
    """Return an ``(IndexedGraph, GraphIndex)`` view of any backend.

    An :class:`IndexedGraph` is returned as-is with an identity index; a
    hashable-vertex graph is converted through :func:`to_indexed`.
    """
    if isinstance(graph, IndexedGraph):
        return graph, GraphIndex(range(graph.n))
    return to_indexed(graph)


def csr_arrays(graph: IndexedGraph) -> Tuple[int, object, object, Optional[object]]:
    """Return ``(n, indptr, indices, sides)`` -- the canonical CSR buffers.

    The returned objects are whatever buffer-protocol storage the graph
    currently holds: ``array('l')`` for freshly built graphs,
    ``array('q')`` for unpickled ones, ``memoryview`` casts for graphs
    attached from a shared-memory segment.  Consumers must treat them as
    read-only and interrogate ``memoryview(...).itemsize`` rather than
    assume a dtype; ``np.frombuffer`` adopts each of them zero-copy,
    which is how the numpy kernel lane runs on the exact bytes the shm
    transport ships.
    """
    return graph.n, graph.indptr, graph.indices, graph.sides
