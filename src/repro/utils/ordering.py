"""Helpers for manipulating vertex orderings.

Elimination orderings are central to the paper: the running-intersection
ordering behind Algorithm 1 (Lemma 1), the perfect elimination orderings
behind chordality testing, and the "good orderings" of Definition 11 are all
plain sequences of vertices.  The helpers here keep that bookkeeping in one
place.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def stable_unique(items: Iterable[T]) -> List[T]:
    """Return ``items`` with duplicates removed, keeping first occurrences.

    >>> stable_unique([3, 1, 3, 2, 1])
    [3, 1, 2]
    """
    seen = set()
    result: List[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return result


def argsort_by(items: Sequence[T], key: Callable[[T], object]) -> List[int]:
    """Return indices that sort ``items`` by ``key`` (stable).

    >>> argsort_by(["bb", "a", "ccc"], key=len)
    [1, 0, 2]
    """
    return sorted(range(len(items)), key=lambda index: key(items[index]))


def is_permutation_of(ordering: Sequence[T], universe: Iterable[T]) -> bool:
    """Check that ``ordering`` lists every element of ``universe`` exactly once.

    >>> is_permutation_of([2, 0, 1], range(3))
    True
    >>> is_permutation_of([2, 2, 1], range(3))
    False
    """
    ordering_list = list(ordering)
    universe_set = set(universe)
    if len(ordering_list) != len(universe_set):
        return False
    return set(ordering_list) == universe_set and len(set(ordering_list)) == len(
        ordering_list
    )


def positions(ordering: Sequence[T]) -> dict:
    """Return a mapping element -> index for a duplicate-free ordering.

    >>> positions(["a", "c", "b"])["c"]
    1
    """
    table = {}
    for index, item in enumerate(ordering):
        if item in table:
            raise ValueError(f"ordering contains duplicate element {item!r}")
        table[item] = index
    return table


def restrict_ordering(ordering: Sequence[T], allowed: Iterable[T]) -> List[T]:
    """Return the subsequence of ``ordering`` whose elements are in ``allowed``.

    >>> restrict_ordering(["a", "b", "c", "d"], {"d", "b"})
    ['b', 'd']
    """
    allowed_set = set(allowed)
    return [item for item in ordering if item in allowed_set]
