"""Random-number-generator helpers.

Every randomised generator in the library accepts either a seed, an existing
:class:`random.Random` instance, or ``None``.  :func:`ensure_rng` normalises
all three into a :class:`random.Random` so that experiments are reproducible
when a seed is supplied and convenient when it is not.
"""

from __future__ import annotations

import random
from typing import Union


RandomLike = Union[None, int, random.Random]


def ensure_rng(rng: RandomLike = None) -> random.Random:
    """Return a :class:`random.Random` built from ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (a fresh unseeded generator), an ``int`` seed, or an
        existing :class:`random.Random` instance (returned unchanged).

    Examples
    --------
    >>> ensure_rng(7).randint(0, 10) == ensure_rng(7).randint(0, 10)
    True
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(
        "rng must be None, an int seed or a random.Random instance, "
        f"got {type(rng).__name__}"
    )


def sample_subset(items, size, rng: RandomLike = None):
    """Return a uniformly sampled subset of ``items`` with ``size`` elements.

    The input order is not assumed to be meaningful; the result is returned
    as a list in the order the elements appear in ``items`` so that repeated
    calls with the same seed are deterministic.
    """
    generator = ensure_rng(rng)
    pool = list(items)
    if size > len(pool):
        raise ValueError(
            f"cannot sample {size} elements from a pool of {len(pool)}"
        )
    chosen = set(generator.sample(range(len(pool)), size))
    return [item for index, item in enumerate(pool) if index in chosen]
