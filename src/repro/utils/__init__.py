"""Small internal utilities shared across the :mod:`repro` subpackages."""

from repro.utils.ordering import (
    argsort_by,
    is_permutation_of,
    stable_unique,
)
from repro.utils.rng import ensure_rng

__all__ = [
    "argsort_by",
    "ensure_rng",
    "is_permutation_of",
    "stable_unique",
]
