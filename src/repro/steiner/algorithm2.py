"""Algorithm 2 (Theorem 5): exact Steiner trees on (6,2)-chordal bipartite graphs.

Lemma 5 shows that in a (6,2)-chordal bipartite graph *every* nonredundant
cover of a terminal set is minimum.  Consequently the following trivial
procedure is exact and runs in ``O(|V| * |A|)``:

1. restrict to the connected component containing the terminals;
2. scan the non-terminal vertices in any order and delete each one whose
   removal leaves a cover of the terminals (the result is a nonredundant,
   hence minimum, cover);
3. return any spanning tree of the surviving cover.

By Theorem 1(ii) the applicable graphs are exactly the incidence graphs of
gamma-acyclic database schemas.  On graphs outside the class the procedure
still returns a *nonredundant* cover, which is a natural heuristic; the
returned solution is then flagged as not guaranteed optimal.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.chordality.mn_chordal import is_62_chordal_bipartite
from repro.core.covers import greedy_elimination_cover
from repro.exceptions import NotApplicableError
from repro.graphs.backend import is_indexed
from repro.graphs.bipartite import BipartiteGraph, is_bipartite
from repro.graphs.graph import Graph, Vertex
from repro.graphs.spanning import spanning_tree
from repro.graphs.traversal import component_containing
from repro.steiner.problem import (
    SteinerInstance,
    SteinerSolution,
    prune_non_terminal_leaves,
)


def steiner_algorithm2(
    graph: Graph,
    terminals: Iterable[Vertex],
    ordering: Optional[Sequence[Vertex]] = None,
    check: bool = True,
    applicable: Optional[bool] = None,
) -> SteinerSolution:
    """Run Algorithm 2 and return a Steiner tree.

    Parameters
    ----------
    graph:
        The host graph.  The optimality guarantee requires it to be a
        (6,2)-chordal bipartite graph.
    terminals:
        The terminal set ``P``.
    ordering:
        Optional elimination order for Step 1.  By Corollary 5 every order
        yields a minimum cover on (6,2)-chordal graphs; the default is the
        deterministic sorted order.
    check:
        When ``True`` (default) a :class:`NotApplicableError` is raised if
        the graph is not (6,2)-chordal bipartite; when ``False`` the
        procedure still runs and returns a nonredundant cover, flagged as
        not guaranteed optimal.
    applicable:
        Optional precomputed answer to "is the graph (6,2)-chordal
        bipartite?".  Callers that classify the schema once and then issue
        many queries (:class:`~repro.core.connection.MinimalConnectionFinder`,
        the batch engine) pass it to skip the per-query re-classification,
        which otherwise dominates the running time on large schemas.
    """
    instance = SteinerInstance(graph, terminals)
    instance.require_feasible()
    terminal_set = set(instance.terminals)

    if applicable is None:
        applicable = is_bipartite(graph) and is_62_chordal_bipartite(
            graph if isinstance(graph, BipartiteGraph) else BipartiteGraph.from_graph(graph)
        )
    if check and not applicable:
        raise NotApplicableError(
            "Algorithm 2 requires a (6,2)-chordal bipartite graph"
        )

    cover_vertices = greedy_elimination_cover(
        graph, terminal_set, ordering=ordering, removal_batches=False
    )
    if is_indexed(graph):
        # the indexed elimination kernel already returns the terminals'
        # component of the surviving graph; re-deriving it would walk the
        # cover a second time for nothing
        cover = graph.subgraph(cover_vertices)
    else:
        component = component_containing(
            graph.subgraph(cover_vertices), next(iter(terminal_set))
        )
        cover = graph.subgraph(component)
    tree = spanning_tree(cover)
    tree = prune_non_terminal_leaves(tree, terminal_set)
    solution = SteinerSolution(
        tree=tree,
        instance=instance,
        method="algorithm2",
        optimal=applicable,
    )
    solution.metadata["cover"] = set(cover.vertices())
    return solution


def nonredundant_cover_tree(
    graph: Graph, terminals: Iterable[Vertex], ordering: Optional[Sequence[Vertex]] = None
) -> SteinerSolution:
    """Run the Algorithm 2 elimination as a heuristic on an arbitrary graph.

    This is exactly :func:`steiner_algorithm2` with ``check=False``; it is
    exposed separately so that benchmark code reads naturally when the
    procedure is used as a baseline outside its guarantee class.
    """
    return steiner_algorithm2(graph, terminals, ordering=ordering, check=False)
