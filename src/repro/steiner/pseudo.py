"""Exact pseudo-Steiner solver by exhaustive search (baseline / ground truth).

The pseudo-Steiner problem w.r.t. side ``V_i`` (Definition 9) minimises the
number of ``V_i``-vertices of a tree over the terminals; vertices of the
other side are free.  A subset ``S`` of ``V_i`` admits such a tree iff the
terminals lie in one connected component of the subgraph induced by
``S ∪ V_{3-i}`` (together with the terminals themselves), so exhaustive
search by increasing ``|S|`` yields the optimum.  Algorithm 1
(:mod:`repro.steiner.algorithm1`) is validated against this solver on every
randomly generated instance in the test-suite.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional

from repro.exceptions import DisconnectedTerminalsError, ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Vertex
from repro.graphs.spanning import spanning_tree
from repro.graphs.traversal import component_containing, vertices_in_same_component
from repro.steiner.problem import (
    SteinerInstance,
    SteinerSolution,
    prune_non_terminal_leaves,
)


def pseudo_steiner_bruteforce(
    graph: BipartiteGraph,
    terminals: Iterable[Vertex],
    side: int,
    max_extra: Optional[int] = None,
) -> SteinerSolution:
    """Exact pseudo-Steiner tree w.r.t. ``V_side`` by exhaustive search.

    Parameters
    ----------
    side:
        The side (1 or 2) whose vertex count is minimised.
    max_extra:
        Optional cap on the number of optional ``V_side`` vertices to add
        beyond the terminals (bounds worst-case time in tests).
    """
    if side not in (1, 2):
        raise ValueError(f"side must be 1 or 2, got {side!r}")
    if not isinstance(graph, BipartiteGraph):
        raise ValidationError("pseudo-Steiner problems require a bipartite graph")
    instance = SteinerInstance(graph, terminals)
    instance.require_feasible()
    terminal_set = set(instance.terminals)
    side_vertices = graph.side(side)
    other_vertices = graph.side(3 - side)
    mandatory_side = terminal_set & side_vertices
    optional_side = sorted(side_vertices - terminal_set, key=repr)
    bound = len(optional_side) if max_extra is None else min(max_extra, len(optional_side))

    for extra in range(bound + 1):
        for subset in combinations(optional_side, extra):
            kept = set(subset) | mandatory_side | other_vertices | terminal_set
            induced = graph.subgraph(kept)
            if not vertices_in_same_component(induced, terminal_set):
                continue
            component = component_containing(induced, next(iter(terminal_set)))
            tree = spanning_tree(induced.subgraph(component))
            tree = prune_non_terminal_leaves(tree, terminal_set)
            solution = SteinerSolution(
                tree=tree,
                instance=instance,
                method="pseudo-bruteforce",
                side=side,
                optimal=True,
            )
            solution.metadata["optimal_side_count"] = len(mandatory_side) + extra
            return solution
    raise DisconnectedTerminalsError(
        "no connecting side-subset found within the allowed size"
    )


def minimum_side_count(
    graph: BipartiteGraph, terminals: Iterable[Vertex], side: int
) -> int:
    """Return the optimal pseudo-Steiner objective (number of ``V_side`` vertices).

    Convenience wrapper around :func:`pseudo_steiner_bruteforce` that only
    reports the objective value.  Note that the returned count includes the
    terminals that already lie on ``V_side``.
    """
    solution = pseudo_steiner_bruteforce(graph, terminals, side)
    return solution.side_count(side)
