"""Algorithm 1 (Theorem 3): polynomial pseudo-Steiner trees.

On a ``V_i``-chordal, ``V_i``-conformal bipartite graph the pseudo-Steiner
problem with respect to ``V_i`` -- connect the terminals with a tree using
as few ``V_i``-vertices as possible -- is solvable in ``O(|V| * |A|)`` time
(Theorem 4).  The algorithm is:

1. restrict to the connected component containing the terminal set ``P``;
2. order the ``V_i``-vertices as in Lemma 1.  By Theorem 4 this ordering is
   obtained from the (restricted) maximum cardinality search on the
   associated alpha-acyclic hypergraph ``H_i(G)``: take the MCS edge
   ordering, which satisfies the running intersection property, and reverse
   it;
3. scan the ordering: drop ``v`` together with its private neighbours
   ``Adj*(v)`` whenever the remainder is still a cover of ``P``;
4. return any spanning tree of the surviving cover (a ``V_i``-minimum cover
   by Theorem 3).

The database reading: on an alpha-acyclic schema, answering a query that
mentions a set of attributes/relations through the *fewest relations*
possible is tractable, even though minimising attributes + relations
together is NP-hard (Theorem 2).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.chordality.side_chordal import is_side_chordal_and_conformal
from repro.exceptions import NotApplicableError, ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Vertex
from repro.graphs.spanning import spanning_tree
from repro.graphs.traversal import component_containing
from repro.hypergraphs.conversions import hypergraph_of_side
from repro.hypergraphs.tarjan_yannakakis import reverse_running_intersection_ordering
from repro.steiner.problem import (
    SteinerInstance,
    SteinerSolution,
    prune_non_terminal_leaves,
)


def lemma1_ordering(graph: BipartiteGraph, side: int) -> Optional[List[Vertex]]:
    """Return an ordering of the ``V_side`` vertices satisfying Lemma 1.

    The graph should be connected and ``V_side``-chordal /
    ``V_side``-conformal; in that case the reverse of a running-intersection
    ordering of the hyperedges of ``H_side(G)`` is returned.  ``None`` is
    returned when no running-intersection ordering exists (i.e. the
    hypergraph is not alpha-acyclic).

    Vertices of ``V_side`` with no neighbours (possible only in degenerate
    graphs) are appended at the end: they can always be eliminated first by
    the caller and never matter for connectivity.
    """
    if side not in (1, 2):
        raise ValueError(f"side must be 1 or 2, got {side!r}")
    hypergraph = hypergraph_of_side(graph, side=side)
    ordering = reverse_running_intersection_ordering(hypergraph)
    if ordering is None:
        return None
    isolated = sorted(
        (v for v in graph.side(side) if graph.degree(v) == 0), key=repr
    )
    return isolated + ordering


def pseudo_steiner_algorithm1(
    graph: BipartiteGraph,
    terminals: Iterable[Vertex],
    side: int = 2,
    check: bool = True,
    applicable: Optional[bool] = None,
) -> SteinerSolution:
    """Run Algorithm 1 and return a pseudo-Steiner tree w.r.t. ``V_side``.

    Parameters
    ----------
    graph:
        The bipartite host graph.
    terminals:
        The terminal set ``P`` (vertices of either side).
    side:
        The side whose vertex count is minimised (the paper states the
        algorithm for ``V_2``; both are supported by symmetry).
    check:
        When ``True`` (default) the structural precondition -- the
        component containing the terminals must be ``V_side``-chordal and
        ``V_side``-conformal, i.e. ``H_side`` alpha-acyclic -- is verified
        and a :class:`NotApplicableError` is raised if it fails.  When
        ``False`` the algorithm still runs (and still returns *some*
        nonredundant cover) but optimality is no longer guaranteed and the
        returned solution is flagged accordingly.
    applicable:
        Optional precomputed answer to the structural precondition.  A
        whole-graph "``V_side``-chordal and ``V_side``-conformal" verdict is
        sound here because alpha-acyclicity is preserved by restriction to
        connected components; callers holding a cached
        :class:`~repro.core.classification.ChordalityReport` pass it to
        skip the per-query recognition pass.

    Returns
    -------
    SteinerSolution
        With ``side`` set and ``optimal=True`` exactly when the
        precondition was verified.
    """
    if side not in (1, 2):
        raise ValueError(f"side must be 1 or 2, got {side!r}")
    if not isinstance(graph, BipartiteGraph):
        raise ValidationError("Algorithm 1 requires a bipartite graph")
    instance = SteinerInstance(graph, terminals)
    instance.require_feasible()
    terminal_set = set(instance.terminals)

    component_vertices = component_containing(graph, next(iter(terminal_set)))
    component = graph.subgraph(component_vertices)

    if applicable is None:
        precondition_holds = is_side_chordal_and_conformal(component, side, method="alpha")
    else:
        precondition_holds = applicable
    if check and not precondition_holds:
        raise NotApplicableError(
            f"the component containing the terminals is not V{side}-chordal "
            f"and V{side}-conformal; Algorithm 1 does not apply"
        )

    ordering = lemma1_ordering(component, side)
    if ordering is None:
        if check:
            raise NotApplicableError(
                "no running-intersection ordering exists; the associated "
                "hypergraph is not alpha-acyclic"
            )
        ordering = sorted(component.side(side), key=repr)

    cover_vertices = _eliminate(component, terminal_set, ordering)
    cover = component.subgraph(cover_vertices)
    tree = spanning_tree(cover)
    tree = prune_non_terminal_leaves(tree, terminal_set)
    solution = SteinerSolution(
        tree=tree,
        instance=instance,
        method="algorithm1",
        side=side,
        optimal=precondition_holds,
    )
    solution.metadata["cover"] = set(cover_vertices)
    solution.metadata["ordering"] = list(ordering)
    return solution


def algorithm1_cover(
    graph: BipartiteGraph,
    terminals: Iterable[Vertex],
    side: int = 2,
    check: bool = True,
) -> Set[Vertex]:
    """Return the ``V_side``-minimum cover computed by Algorithm 1 (Step 2 output)."""
    solution = pseudo_steiner_algorithm1(graph, terminals, side=side, check=check)
    return set(solution.metadata["cover"])


def _eliminate(
    component: BipartiteGraph, terminals: Set[Vertex], ordering: List[Vertex]
) -> Set[Vertex]:
    """Step 2 of Algorithm 1: scan the ordering, drop ``v`` and ``Adj*(v)`` if possible.

    A vertex is dropped when the terminals remain connected without it (and
    its private neighbours); the returned vertex set is the terminals'
    component of the surviving graph, which is a connected cover.
    """
    from repro.core.covers import connects_terminals, terminal_component

    current = component.copy()
    for vertex in ordering:
        if vertex not in current:
            continue
        removal = {vertex} | current.private_neighbors(vertex)
        if removal & terminals:
            continue
        remaining = current.vertices() - removal
        if not remaining:
            continue
        if connects_terminals(component, remaining, terminals):
            current = current.subgraph(remaining)
    return terminal_component(component, current.vertices(), terminals)
