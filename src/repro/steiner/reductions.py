"""NP-hardness reduction gadgets (Theorem 2, Corollary 3, Section 3 remarks).

Theorem 2 proves that the Steiner problem remains NP-complete on
``V_2``-chordal, ``V_2``-conformal bipartite graphs by reduction from
*Exact Cover by 3-Sets* (X3C): given a ground set ``X`` with ``|X| = 3q``
and a family ``C`` of 3-element subsets, decide whether some subfamily
covers every element exactly once.

The reduction builds the bipartite graph of Fig. 6:

* ``V_1`` holds one vertex per 3-set ``c_j``;
* ``V_2`` holds one vertex per element ``x_i`` plus a *universal* vertex
  ``u2`` adjacent to every ``V_1`` vertex;
* element vertices are adjacent to the 3-sets containing them;
* the terminal set is all of ``V_2``.

The instance has a Steiner tree with at most ``4q + 1`` vertices iff the
X3C instance is a yes-instance; and (Corollary 3) it has a tree using at
most ``q`` vertices of ``V_1`` iff the same holds.  A brute-force X3C
solver is included so the reduction can be validated end-to-end, and the
Section 3 reduction from the cardinality Steiner problem on chordal graphs
to the pseudo-Steiner problem on ``V_1``-chordal bipartite graphs (Fig. 9)
is provided as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.exceptions import ValidationError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph, Vertex
from repro.utils.rng import RandomLike, ensure_rng


# ----------------------------------------------------------------------
# X3C instances
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class X3CInstance:
    """An Exact-Cover-by-3-Sets instance.

    Attributes
    ----------
    elements:
        The ground set ``X``; its size must be a multiple of three.
    triples:
        The family ``C`` of 3-element subsets of ``X``.
    """

    elements: Tuple
    triples: Tuple[FrozenSet, ...]

    def __init__(self, elements: Iterable, triples: Iterable[Iterable]) -> None:
        element_tuple = tuple(sorted(set(elements), key=repr))
        triple_tuple = tuple(frozenset(t) for t in triples)
        object.__setattr__(self, "elements", element_tuple)
        object.__setattr__(self, "triples", triple_tuple)
        if len(element_tuple) % 3 != 0:
            raise ValidationError("|X| must be a multiple of 3")
        for triple in triple_tuple:
            if len(triple) != 3:
                raise ValidationError(f"{set(triple)!r} is not a 3-element subset")
            if not triple <= set(element_tuple):
                raise ValidationError(f"{set(triple)!r} is not a subset of X")

    @property
    def q(self) -> int:
        """Return ``q = |X| / 3``, the number of triples in an exact cover."""
        return len(self.elements) // 3

    def has_exact_cover(self) -> bool:
        """Brute-force decision (exponential; for validating the reduction)."""
        return self.find_exact_cover() is not None

    def find_exact_cover(self) -> Optional[List[FrozenSet]]:
        """Return an exact cover as a list of triples, or ``None``.

        Backtracking over the first uncovered element keeps the search fast
        on the instance sizes used in the benchmarks.
        """
        elements = list(self.elements)
        triples = list(self.triples)

        def _search(covered: Set, chosen: List[FrozenSet]) -> Optional[List[FrozenSet]]:
            if len(covered) == len(elements):
                return list(chosen)
            target = next(e for e in elements if e not in covered)
            for triple in triples:
                if target not in triple or triple & covered:
                    continue
                chosen.append(triple)
                result = _search(covered | triple, chosen)
                if result is not None:
                    return result
                chosen.pop()
            return None

        return _search(set(), [])


def random_x3c_instance(
    q: int,
    extra_triples: int = 0,
    satisfiable: bool = True,
    rng: RandomLike = None,
) -> X3CInstance:
    """Generate a random X3C instance with ``3q`` elements.

    Parameters
    ----------
    q:
        Number of triples in a planted exact cover (when ``satisfiable``).
    extra_triples:
        Number of additional random triples (noise).
    satisfiable:
        When ``True`` a partition of ``X`` into triples is planted so the
        instance is a yes-instance; when ``False`` one planted triple is
        removed and its elements only appear in "crossing" triples, which
        makes small instances overwhelmingly likely to be no-instances (the
        caller should verify with :meth:`X3CInstance.has_exact_cover` when
        certainty is needed).
    """
    generator = ensure_rng(rng)
    elements = [f"x{i}" for i in range(3 * q)]
    shuffled = list(elements)
    generator.shuffle(shuffled)
    planted = [frozenset(shuffled[3 * i: 3 * i + 3]) for i in range(q)]
    triples: List[FrozenSet] = list(planted)
    if not satisfiable and triples:
        removed = triples.pop(generator.randrange(len(triples)))
        others = [e for e in elements if e not in removed]
        for element in removed:
            partner = generator.sample(others, 2)
            triples.append(frozenset([element] + partner))
    for _ in range(extra_triples):
        triples.append(frozenset(generator.sample(elements, 3)))
    unique = sorted({t for t in triples}, key=lambda t: sorted(t))
    return X3CInstance(elements, unique)


# ----------------------------------------------------------------------
# Theorem 2: X3C -> Steiner on V2-chordal V2-conformal bipartite graphs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SteinerReduction:
    """The output of the Theorem 2 reduction.

    Attributes
    ----------
    graph:
        The bipartite graph of Fig. 6 (triple vertices on ``V_1``; element
        vertices plus the universal vertex on ``V_2``).
    terminals:
        The terminal set ``P = V_2``.
    budget:
        The Steiner budget ``4q + 1``: the X3C instance is a yes-instance
        iff a tree over the terminals with at most this many vertices exists.
    side_budget:
        The pseudo-Steiner budget ``q`` for Corollary 3 (number of ``V_1``
        vertices).
    instance:
        The originating :class:`X3CInstance`.
    """

    graph: BipartiteGraph
    terminals: FrozenSet[Vertex]
    budget: int
    side_budget: int
    instance: X3CInstance


UNIVERSAL_VERTEX = ("u2",)


def x3c_to_steiner(instance: X3CInstance) -> SteinerReduction:
    """Build the Theorem 2 / Fig. 6 bipartite graph from an X3C instance."""
    triple_vertices = [("c", i) for i in range(len(instance.triples))]
    element_vertices = [("x", element) for element in instance.elements]
    graph = BipartiteGraph(
        left=triple_vertices,
        right=element_vertices + [UNIVERSAL_VERTEX],
    )
    for index, triple in enumerate(instance.triples):
        graph.add_edge(UNIVERSAL_VERTEX, ("c", index))
        for element in triple:
            graph.add_edge(("x", element), ("c", index))
    terminals = frozenset(element_vertices + [UNIVERSAL_VERTEX])
    return SteinerReduction(
        graph=graph,
        terminals=terminals,
        budget=4 * instance.q + 1,
        side_budget=instance.q,
        instance=instance,
    )


def exact_cover_from_tree(
    reduction: SteinerReduction, tree_vertices: Iterable[Vertex]
) -> List[FrozenSet]:
    """Extract the chosen triples from a Steiner tree's vertex set."""
    chosen = []
    for vertex in tree_vertices:
        if isinstance(vertex, tuple) and len(vertex) == 2 and vertex[0] == "c":
            chosen.append(reduction.instance.triples[vertex[1]])
    return chosen


def steiner_decision_answers_x3c(
    reduction: SteinerReduction, steiner_vertex_count: int
) -> bool:
    """Interpret a Steiner optimum as the answer to the original X3C question."""
    return steiner_vertex_count <= reduction.budget


# ----------------------------------------------------------------------
# Section 3 remark: chordal Steiner -> pseudo-Steiner on V1-chordal graphs
# ----------------------------------------------------------------------
def chordal_steiner_to_pseudo_steiner(
    graph: Graph, terminals: Iterable[Vertex]
) -> Tuple[BipartiteGraph, FrozenSet[Vertex]]:
    """Subdivision reduction (Fig. 9): vertices on ``V_1``, one ``V_2`` vertex per edge.

    Given any graph ``G`` (in the paper, a chordal one, so that the source
    problem is the NP-hard cardinality Steiner problem on chordal graphs),
    build the bipartite graph ``G''`` whose ``V_1`` is ``V`` and whose
    ``V_2`` has a vertex per edge of ``G``, adjacent to that edge's two
    endpoints.  A tree over the terminals using at most ``k`` vertices of
    ``V_2`` exists iff ``G`` has a connected subgraph over the terminals
    with at most ``k`` edges, so a polynomial pseudo-Steiner algorithm
    w.r.t. ``V_2`` on this class would solve the chordal Steiner problem.
    """
    terminal_set = frozenset(terminals)
    for terminal in terminal_set:
        if terminal not in graph:
            raise ValidationError(f"terminal {terminal!r} is not a vertex of the graph")
    edge_vertices = []
    bipartite = BipartiteGraph(left=graph.vertices(), right=[])
    for index, (u, v) in enumerate(sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1])))):
        edge_vertex = ("a", index)
        bipartite.add_right(edge_vertex)
        bipartite.add_edge(u, edge_vertex)
        bipartite.add_edge(v, edge_vertex)
        edge_vertices.append(edge_vertex)
    return bipartite, terminal_set
