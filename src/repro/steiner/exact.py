"""Exact Steiner-tree solvers (exponential baselines).

Two independent exact methods are provided:

* :func:`steiner_tree_bruteforce` enumerates candidate Steiner-vertex
  subsets by increasing size -- transparently correct, usable up to roughly
  20 optional vertices, and the ground truth for everything else;
* :func:`steiner_tree_dreyfus_wagner` is the classical
  Dreyfus-Wagner dynamic program over terminal subsets (``O(3^k poly)``),
  which scales to larger graphs as long as the terminal set stays small.

Both minimise the number of tree vertices, which for trees is equivalent to
minimising the number of edges with unit edge weights.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import DisconnectedTerminalsError
from repro.graphs.graph import Graph, Vertex
from repro.graphs.spanning import spanning_tree
from repro.graphs.traversal import bfs_distances, vertices_in_same_component
from repro.steiner.problem import (
    SteinerInstance,
    SteinerSolution,
    prune_non_terminal_leaves,
)


def steiner_tree_bruteforce(
    graph: Graph, terminals: Iterable[Vertex], max_extra: Optional[int] = None
) -> SteinerSolution:
    """Exact Steiner tree by enumerating Steiner-vertex subsets.

    Candidate subsets of non-terminal vertices are tried in order of
    increasing size; the first size at which the terminals become connected
    yields an optimal tree (any spanning tree of the connected cover).

    Parameters
    ----------
    max_extra:
        Optional upper bound on the number of Steiner vertices to consider
        (used to bound worst-case time in property tests); when the bound is
        hit without finding a solution a
        :class:`DisconnectedTerminalsError` is raised.
    """
    instance = SteinerInstance(graph, terminals)
    instance.require_feasible()
    terminal_set = set(instance.terminals)
    optional = sorted(graph.vertices() - terminal_set, key=repr)
    bound = len(optional) if max_extra is None else min(max_extra, len(optional))
    for extra in range(bound + 1):
        for subset in combinations(optional, extra):
            kept = terminal_set | set(subset)
            induced = graph.subgraph(kept)
            if not vertices_in_same_component(induced, terminal_set):
                continue
            component = _component_of_terminals(induced, terminal_set)
            tree = spanning_tree(induced.subgraph(component))
            tree = prune_non_terminal_leaves(tree, terminal_set)
            return SteinerSolution(
                tree=tree,
                instance=instance,
                method="bruteforce",
                optimal=True,
            )
    raise DisconnectedTerminalsError(
        "no connecting subset found within the allowed number of Steiner vertices"
    )


def _component_of_terminals(graph: Graph, terminals) -> set:
    from repro.graphs.traversal import component_containing

    first = next(iter(terminals))
    return component_containing(graph, first)


def steiner_tree_dreyfus_wagner(
    graph: Graph, terminals: Iterable[Vertex]
) -> SteinerSolution:
    """Exact Steiner tree via the Dreyfus-Wagner dynamic program.

    The DP computes ``cost[S][v]`` = minimum number of edges of a tree
    spanning the terminal subset ``S`` plus the vertex ``v``; trees are
    recovered through parent pointers.  Unit edge weights make the number
    of edges equal to the number of vertices minus one, so the result also
    minimises Definition 8's vertex count.
    """
    instance = SteinerInstance(graph, terminals)
    instance.require_feasible()
    terminal_list: List[Vertex] = instance.terminal_list()
    vertices = graph.sorted_vertices()

    if len(terminal_list) == 1:
        tree = Graph(vertices=[terminal_list[0]])
        return SteinerSolution(tree=tree, instance=instance, method="dreyfus-wagner", optimal=True)

    # all-pairs shortest-path distances and intermediate vertices (BFS per vertex)
    distances: Dict[Vertex, Dict[Vertex, int]] = {
        v: bfs_distances(graph, v) for v in vertices
    }
    paths: Dict[Tuple[Vertex, Vertex], List[Vertex]] = {}

    from repro.graphs.paths import shortest_path

    infinity = float("inf")
    first_terminals = terminal_list[:-1]
    root = terminal_list[-1]
    index_of = {t: 1 << i for i, t in enumerate(first_terminals)}
    full_mask = (1 << len(first_terminals)) - 1

    # cost[mask][v]: minimum edges of a tree spanning {terminals in mask} ∪ {v}
    cost: List[Dict[Vertex, float]] = [dict() for _ in range(full_mask + 1)]
    choice: List[Dict[Vertex, Tuple]] = [dict() for _ in range(full_mask + 1)]

    for i, terminal in enumerate(first_terminals):
        mask = 1 << i
        for v in vertices:
            d = distances[terminal].get(v, infinity)
            cost[mask][v] = d
            choice[mask][v] = ("path", terminal, v)

    for mask in range(1, full_mask + 1):
        if mask & (mask - 1) == 0:
            continue  # singletons initialised above
        # combine sub-masks
        for v in vertices:
            best = infinity
            best_choice = None
            submask = (mask - 1) & mask
            while submask:
                other = mask ^ submask
                if 0 < submask < mask:
                    a = cost[submask].get(v, infinity)
                    b = cost[other].get(v, infinity)
                    if a + b < best:
                        best = a + b
                        best_choice = ("merge", submask, other, v)
                submask = (submask - 1) & mask
            cost[mask][v] = best
            choice[mask][v] = best_choice
        # propagate through shortest paths (unit weights: simple relaxation
        # via repeated BFS-like rounds would be costly; instead combine with
        # the precomputed distances)
        for v in vertices:
            best = cost[mask][v]
            best_choice = choice[mask][v]
            for u in vertices:
                through = cost[mask].get(u, infinity) + distances[u].get(v, infinity)
                if through < best:
                    best = through
                    best_choice = ("extend", u, v, mask)
            cost[mask][v] = best
            choice[mask][v] = best_choice

    # recover the tree edges
    edges: set = set()

    def _shortest_path_edges(u: Vertex, v: Vertex) -> None:
        if u == v:
            return
        key = (u, v)
        if key not in paths:
            paths[key] = shortest_path(graph, u, v)
        walk = paths[key]
        for a, b in zip(walk, walk[1:]):
            edges.add(frozenset((a, b)))

    def _rebuild(mask: int, v: Vertex) -> None:
        if mask == 0:
            return
        record = choice[mask].get(v)
        if record is None:
            return
        kind = record[0]
        if kind == "path":
            _terminal, vertex = record[1], record[2]
            _shortest_path_edges(_terminal, vertex)
        elif kind == "extend":
            u, vertex, inner_mask = record[1], record[2], record[3]
            _shortest_path_edges(u, vertex)
            _rebuild(inner_mask, u)
        elif kind == "merge":
            submask, other, vertex = record[1], record[2], record[3]
            _rebuild(submask, vertex)
            _rebuild(other, vertex)

    _rebuild(full_mask, root)
    cover = Graph(vertices=[root] + terminal_list)
    for edge in edges:
        u, v = tuple(edge)
        cover.add_edge(u, v)
    for terminal in terminal_list:
        cover.add_vertex(terminal)
    # The union of the recovered paths is connected and spans the terminals;
    # a spanning tree of it achieves the DP cost (with unit weights any
    # cycle would contradict minimality, but pruning keeps us safe).
    from repro.graphs.traversal import component_containing

    component = component_containing(cover, root)
    tree = spanning_tree(cover.subgraph(component))
    tree = prune_non_terminal_leaves(tree, terminal_list)
    solution = SteinerSolution(
        tree=tree, instance=instance, method="dreyfus-wagner", optimal=True
    )
    solution.metadata["dp_cost_edges"] = cost[full_mask][root]
    return solution
