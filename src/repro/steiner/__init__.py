"""Steiner and pseudo-Steiner solvers, baselines and reduction gadgets."""

from repro.steiner.algorithm1 import (
    algorithm1_cover,
    lemma1_ordering,
    pseudo_steiner_algorithm1,
)
from repro.steiner.algorithm2 import nonredundant_cover_tree, steiner_algorithm2
from repro.steiner.exact import steiner_tree_bruteforce, steiner_tree_dreyfus_wagner
from repro.steiner.heuristics import kou_markowsky_berman, shortest_path_heuristic
from repro.steiner.problem import (
    SteinerInstance,
    SteinerSolution,
    prune_non_terminal_leaves,
)
from repro.steiner.pseudo import minimum_side_count, pseudo_steiner_bruteforce
from repro.steiner.reductions import (
    SteinerReduction,
    UNIVERSAL_VERTEX,
    X3CInstance,
    chordal_steiner_to_pseudo_steiner,
    exact_cover_from_tree,
    random_x3c_instance,
    steiner_decision_answers_x3c,
    x3c_to_steiner,
)

__all__ = [
    "SteinerInstance",
    "SteinerReduction",
    "SteinerSolution",
    "UNIVERSAL_VERTEX",
    "X3CInstance",
    "algorithm1_cover",
    "chordal_steiner_to_pseudo_steiner",
    "exact_cover_from_tree",
    "kou_markowsky_berman",
    "lemma1_ordering",
    "minimum_side_count",
    "nonredundant_cover_tree",
    "prune_non_terminal_leaves",
    "pseudo_steiner_algorithm1",
    "pseudo_steiner_bruteforce",
    "random_x3c_instance",
    "shortest_path_heuristic",
    "steiner_algorithm2",
    "steiner_decision_answers_x3c",
    "steiner_tree_bruteforce",
    "steiner_tree_dreyfus_wagner",
    "x3c_to_steiner",
]
