"""Classical Steiner-tree heuristics used as baselines.

The paper's polynomial algorithms are exact on restricted graph classes; to
put their behaviour in context the benchmark harnesses compare them against
the two standard polynomial *approximation* heuristics for general graphs
(with unit edge weights, so minimising edges = minimising vertices):

* the **shortest-path heuristic** of Takahashi and Matsuyama: grow the tree
  from one terminal, repeatedly attaching the closest unconnected terminal
  along a shortest path;
* the **distance-network heuristic** of Kou, Markowsky and Berman (KMB):
  build the metric closure over the terminals, take its minimum spanning
  tree, expand the edges back into shortest paths, and prune.

Both are 2-approximations for the edge count; neither is exact in general,
which is exactly the gap the paper's Algorithm 2 closes on (6,2)-chordal
graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.graphs.backend import is_indexed
from repro.graphs.graph import Graph, Vertex
from repro.graphs.paths import shortest_path
from repro.graphs.spanning import spanning_tree
from repro.graphs.traversal import bfs_distances, component_containing
from repro.steiner.problem import (
    SteinerInstance,
    SteinerSolution,
    prune_non_terminal_leaves,
)


def _terminal_distance_rows(graph: Graph, terminal_list) -> Dict[Vertex, Dict[Vertex, int]]:
    """Return ``{terminal: {vertex: distance}}``, batched on the fast backend.

    On an :class:`~repro.graphs.indexed.IndexedGraph` the rows come from
    one grouped kernel call sharing a scratch buffer
    (:func:`repro.kernels.bfs.grouped_bfs_levels`); the mappings are
    value-identical to per-terminal :func:`bfs_distances` calls either
    way.
    """
    if is_indexed(graph):
        from repro.kernels.bfs import grouped_bfs_levels, levels_to_dict

        rows = grouped_bfs_levels(graph, terminal_list)
        vertex_ids = range(graph.n)
        return {
            terminal: levels_to_dict(row, vertex_ids)
            for terminal, row in zip(terminal_list, rows)
        }
    return {t: bfs_distances(graph, t) for t in terminal_list}


def shortest_path_heuristic(graph: Graph, terminals: Iterable[Vertex]) -> SteinerSolution:
    """Takahashi-Matsuyama shortest-path heuristic (unit weights).

    Accepts either graph backend: the terminal distance rows are computed
    once up front (through the grouped BFS kernel when ``graph`` is an
    :class:`~repro.graphs.indexed.IndexedGraph`; terminals are then ids)
    instead of once per attachment round -- the rows only depend on the
    host graph, so the produced tree is unchanged.
    """
    instance = SteinerInstance(graph, terminals)
    instance.require_feasible()
    terminal_list = instance.terminal_list()
    tree_vertices = {terminal_list[0]}
    tree = Graph(vertices=[terminal_list[0]])
    remaining = [t for t in terminal_list[1:]]
    rows = _terminal_distance_rows(graph, remaining) if remaining else {}
    while remaining:
        # distances from the current tree to every vertex: one cached BFS
        # row per remaining terminal, pick the terminal closest to the tree.
        best_terminal = None
        best_path: Optional[List[Vertex]] = None
        for terminal in remaining:
            if terminal in tree_vertices:
                path: Optional[List[Vertex]] = [terminal]
            else:
                distances = rows[terminal]
                reachable = [v for v in tree_vertices if v in distances]
                target = min(reachable, key=lambda v: (distances[v], repr(v)))
                path = shortest_path(graph, terminal, target)
            if best_path is None or len(path) < len(best_path):
                best_path = path
                best_terminal = terminal
        remaining.remove(best_terminal)
        for u, v in zip(best_path, best_path[1:]):
            tree.add_edge(u, v)
        tree_vertices |= set(best_path)
        tree.add_vertex(best_terminal)
    # the union of the added paths may contain cycles; keep a spanning tree
    component = component_containing(tree, terminal_list[0])
    cleaned = spanning_tree(tree.subgraph(component))
    cleaned = prune_non_terminal_leaves(cleaned, terminal_list)
    return SteinerSolution(
        tree=cleaned, instance=instance, method="shortest-path-heuristic", optimal=False
    )


def kou_markowsky_berman(
    graph: Graph,
    terminals: Iterable[Vertex],
    distances: Optional[Dict[Vertex, Dict[Vertex, int]]] = None,
) -> SteinerSolution:
    """Kou-Markowsky-Berman distance-network heuristic (unit weights).

    Accepts either graph backend.  ``distances`` optionally supplies
    precomputed BFS rows ``terminal -> {vertex: distance}`` (at least for
    every terminal); the batch engine passes its schema-level cache here so
    the metric closure is not rebuilt for every query.
    """
    instance = SteinerInstance(graph, terminals)
    instance.require_feasible()
    terminal_list = instance.terminal_list()
    if len(terminal_list) == 1:
        return SteinerSolution(
            tree=Graph(vertices=terminal_list),
            instance=instance,
            method="kmb",
            optimal=False,
        )
    # 1. metric closure over the terminals (grouped kernel on the
    #    indexed backend; the engine passes its oracle-backed rows here)
    if distances is None:
        distances = _terminal_distance_rows(graph, terminal_list)
    # 2. minimum spanning tree of the closure (Prim)
    in_tree = {terminal_list[0]}
    closure_edges: List[Tuple[Vertex, Vertex]] = []
    while len(in_tree) < len(terminal_list):
        best: Optional[Tuple[int, Vertex, Vertex]] = None
        for u in in_tree:
            for v in terminal_list:
                if v in in_tree:
                    continue
                d = distances[u].get(v)
                if d is None:
                    continue
                candidate = (d, repr(u), repr(v))
                if best is None or candidate < (best[0], repr(best[1]), repr(best[2])):
                    best = (d, u, v)
        closure_edges.append((best[1], best[2]))
        in_tree.add(best[2])
    # 3. expand closure edges into shortest paths in the original graph
    expanded = Graph(vertices=terminal_list)
    for u, v in closure_edges:
        path = shortest_path(graph, u, v)
        for a, b in zip(path, path[1:]):
            expanded.add_edge(a, b)
    # 4. spanning tree of the expansion, then prune non-terminal leaves
    component = component_containing(expanded, terminal_list[0])
    tree = spanning_tree(expanded.subgraph(component))
    tree = prune_non_terminal_leaves(tree, terminal_list)
    return SteinerSolution(tree=tree, instance=instance, method="kmb", optimal=False)
